//! Criterion benches for the reproduction's ablation studies — the
//! design choices DESIGN.md calls out: eq. 6 ECN1 accounting, the
//! eq. 19 hop approximation, and the §5.2 exponential-service
//! assumption. Each bench prints its regenerated comparison table once
//! and then measures the analysis cost of the ablation grid.

use criterion::{criterion_group, criterion_main, Criterion};
use hmcs_bench::experiments::{
    run_ablation_accounting, run_ablation_hops, run_ablation_service, RunOptions,
};
use std::hint::black_box;

fn fast_opts() -> RunOptions {
    RunOptions { messages: 3_000, warmup: 600, ..Default::default() }
}

fn accounting(c: &mut Criterion) {
    let rows = run_ablation_accounting(&fast_opts()).expect("ablation runs");
    println!("\n=== ablation-accounting: eq. 6 ECN1 occupancy ===");
    println!("clusters  literal(ms)  single(ms)  sim(ms)  lit.err  sgl.err");
    for r in &rows {
        println!(
            "{:8}  {:11.3}  {:10.3}  {:7.3}  {:6.1}%  {:6.1}%",
            r.clusters,
            r.literal_ms,
            r.single_ms,
            r.sim_ms,
            r.literal_error() * 100.0,
            r.single_error() * 100.0
        );
    }
    c.bench_function("ablation/accounting_analysis_grid", |b| {
        let opts = RunOptions { with_simulation: false, ..Default::default() };
        b.iter(|| {
            // Analysis-only halves of the ablation (both accountings).
            use hmcs_core::config::{QueueAccounting, SystemConfig};
            use hmcs_core::model::AnalyticalModel;
            use hmcs_core::scenario::{Scenario, PAPER_CLUSTER_COUNTS};
            use hmcs_topology::transmission::Architecture;
            for &cl in &PAPER_CLUSTER_COUNTS {
                let sys =
                    SystemConfig::paper_preset(Scenario::Case1, cl, Architecture::NonBlocking)
                        .unwrap()
                        .with_lambda(opts.lambda_per_us);
                for acc in [QueueAccounting::PaperLiteral, QueueAccounting::SingleQueue] {
                    black_box(AnalyticalModel::evaluate(&sys.with_accounting(acc)).unwrap());
                }
            }
        })
    });
}

fn hops(c: &mut Criterion) {
    let rows = run_ablation_hops(&fast_opts()).expect("ablation runs");
    println!("\n=== ablation-hops: eq. 19 (k+1)/3 vs exact mean ===");
    println!("clusters  paper.an  exact.an  paper.sim  exact.sim  (ms)");
    for r in &rows {
        println!(
            "{:8}  {:8.3}  {:8.3}  {:9.3}  {:9.3}",
            r.clusters, r.paper_analysis_ms, r.exact_analysis_ms, r.paper_sim_ms, r.exact_sim_ms
        );
    }
    c.bench_function("ablation/hops_exact_mean", |b| {
        use hmcs_topology::linear_array::LinearArray;
        use hmcs_topology::switch::SwitchFabric;
        let la = LinearArray::new(4096, SwitchFabric::paper_default()).unwrap();
        b.iter(|| black_box(la.exact_mean_switch_traversals()))
    });
}

fn service(c: &mut Criterion) {
    let rows = run_ablation_service(&fast_opts()).expect("ablation runs");
    println!("\n=== ablation-service: §5.2 exponential assumption ===");
    println!("model                 SCV    analysis(ms)  sim(ms)");
    for r in &rows {
        println!("{:<20}  {:4.2}  {:12.3}  {:7.3}", r.model, r.scv, r.analysis_ms, r.sim_ms);
    }
    c.bench_function("ablation/service_grid_analysis", |b| {
        use hmcs_core::config::{ServiceTimeModel, SystemConfig};
        use hmcs_core::model::AnalyticalModel;
        use hmcs_core::scenario::Scenario;
        use hmcs_topology::transmission::Architecture;
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
        b.iter(|| {
            for m in [
                ServiceTimeModel::Deterministic,
                ServiceTimeModel::Erlang(4),
                ServiceTimeModel::Exponential,
                ServiceTimeModel::HyperExponential(4.0),
            ] {
                black_box(AnalyticalModel::evaluate(&base.with_service_model(m)).unwrap());
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = accounting, hops, service
}
criterion_main!(benches);
