//! Micro-benchmarks of the analytical model's kernels: a single
//! evaluation, the fixed-point solver across load levels, and the
//! Cluster-of-Clusters generalisation. These quantify the paper's core
//! pitch — "an accurate analytical model can provide quick performance
//! estimates" — in wall-clock terms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmcs_core::cluster_of_clusters::{self, ClusterSpec, CocConfig};
use hmcs_core::config::{QueueAccounting, ServiceTimeModel, SystemConfig};
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::Scenario;
use hmcs_topology::switch::SwitchFabric;
use hmcs_topology::technology::NetworkTechnology;
use hmcs_topology::transmission::Architecture;
use std::hint::black_box;

fn single_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/evaluate");
    for clusters in [1usize, 16, 256] {
        let cfg = SystemConfig::paper_preset(Scenario::Case1, clusters, Architecture::NonBlocking)
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(clusters), &cfg, |b, cfg| {
            b.iter(|| black_box(AnalyticalModel::evaluate(black_box(cfg)).unwrap()))
        });
    }
    group.finish();
}

fn solver_under_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/solver_load");
    for (label, lambda) in [("light", 2.5e-7), ("figure", 2.5e-4), ("overload", 2.5e-2)] {
        let cfg = SystemConfig::paper_preset(Scenario::Case1, 32, Architecture::Blocking)
            .unwrap()
            .with_lambda(lambda);
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| black_box(hmcs_core::solver::solve(black_box(cfg)).unwrap()))
        });
    }
    group.finish();
}

fn coc_evaluation(c: &mut Criterion) {
    let cfg = CocConfig {
        clusters: vec![
            ClusterSpec {
                nodes: 128,
                icn1: NetworkTechnology::MYRINET,
                ecn1: NetworkTechnology::GIGABIT_ETHERNET,
            },
            ClusterSpec {
                nodes: 96,
                icn1: NetworkTechnology::GIGABIT_ETHERNET,
                ecn1: NetworkTechnology::GIGABIT_ETHERNET,
            },
            ClusterSpec {
                nodes: 32,
                icn1: NetworkTechnology::FAST_ETHERNET,
                ecn1: NetworkTechnology::FAST_ETHERNET,
            },
        ],
        icn2: NetworkTechnology::GIGABIT_ETHERNET,
        switch: SwitchFabric::paper_default(),
        architecture: Architecture::NonBlocking,
        message_bytes: 1024,
        lambda_per_us: 2.5e-4,
        accounting: QueueAccounting::SingleQueue,
        service_model: ServiceTimeModel::Exponential,
    };
    c.bench_function("analysis/cluster_of_clusters", |b| {
        b.iter(|| black_box(cluster_of_clusters::evaluate(black_box(&cfg)).unwrap()))
    });
}

criterion_group!(benches, single_evaluation, solver_under_load, coc_evaluation);
criterion_main!(benches);
