//! Pins the batch engine's parallel speedup on the full
//! figure-reproduction grid: all four figures' analysis columns
//! (2 scenarios × 2 architectures × 2 message sizes × 9 cluster
//! counts = 72 evaluations) as one batch, at several worker counts.
//!
//! On a ≥4-core machine the 4-worker row should run ≥2× faster than
//! the 1-worker row; on smaller machines the rows degrade gracefully
//! to the sequential time (the pool never spawns more workers than
//! items, and one worker means no threads at all).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hmcs_core::batch::{self, BatchOptions};
use hmcs_core::config::SystemConfig;
use hmcs_core::metrics;
use hmcs_core::scenario::{Scenario, PAPER_CLUSTER_COUNTS, PAPER_MESSAGE_SIZES};
use hmcs_topology::transmission::Architecture;

fn figure_grid() -> Vec<SystemConfig> {
    let mut configs = Vec::new();
    for scenario in [Scenario::Case1, Scenario::Case2] {
        for arch in [Architecture::NonBlocking, Architecture::Blocking] {
            for &bytes in &PAPER_MESSAGE_SIZES[..2] {
                for &c in &PAPER_CLUSTER_COUNTS {
                    configs.push(
                        SystemConfig::paper_preset(scenario, c, arch)
                            .unwrap()
                            .with_message_bytes(bytes),
                    );
                }
            }
        }
    }
    configs
}

fn bench_figure_grid(c: &mut Criterion) {
    let configs = figure_grid();
    let mut group = c.benchmark_group("figure_grid");
    group.throughput(Throughput::Elements(configs.len() as u64));
    let max_workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    for workers in [1usize, 2, 4, 8] {
        if workers > 1 && workers > 2 * max_workers {
            // Oversubscribing far past the core count only measures
            // scheduler noise; skip those rows on small machines.
            continue;
        }
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &workers| {
            b.iter(|| {
                let results = batch::evaluate_many(&configs, BatchOptions::with_workers(workers));
                assert!(results.iter().all(Result::is_ok));
                results
            })
        });
    }
    group.finish();
}

/// The observability layer's hot-path cost, measured where it matters:
/// the same 72-point grid, sequentially, with metric recording on vs
/// off. The budget is ≤2% — relaxed atomic adds per *evaluation* (not
/// per solver iteration) should be invisible next to a ~µs solve.
fn bench_instrumentation_overhead(c: &mut Criterion) {
    let configs = figure_grid();
    let mut group = c.benchmark_group("instrumentation");
    group.throughput(Throughput::Elements(configs.len() as u64));
    for (label, enabled) in [("metrics_on", true), ("metrics_off", false)] {
        group.bench_function(label, |b| {
            metrics::set_enabled(enabled);
            b.iter(|| {
                let results = batch::evaluate_many(&configs, BatchOptions::sequential());
                assert!(results.iter().all(Result::is_ok));
                results
            });
            metrics::set_enabled(true);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure_grid, bench_instrumentation_overhead);
criterion_main!(benches);
