//! Criterion bench regenerating the §6 **blocking/non-blocking ratio
//! claim** ("the average message latency of blocking network is larger,
//! something between 1.4 to 3.1 times").

use criterion::{criterion_group, criterion_main, Criterion};
use hmcs_bench::experiments::{run_claims, RunOptions};
use std::hint::black_box;

fn claims(c: &mut Criterion) {
    let opts = RunOptions { with_simulation: false, ..Default::default() };
    let rows = run_claims(&opts).expect("claims run");
    println!("\n=== §6 claim: blocking/non-blocking latency ratio ===");
    let (mut min, mut max) = (f64::INFINITY, 0.0f64);
    for row in &rows {
        println!(
            "{:<14} C={:>3}  nb={:>9.3} ms  bl={:>9.3} ms  ratio={:>6.2}x",
            row.scenario.label(),
            row.clusters,
            row.nonblocking_ms,
            row.blocking_ms,
            row.ratio()
        );
        min = min.min(row.ratio());
        max = max.max(row.ratio());
    }
    println!("measured ratio band: {min:.2}x – {max:.2}x (paper: 1.4x – 3.1x)");

    c.bench_function("claims/ratio_grid", |b| b.iter(|| black_box(run_claims(&opts).unwrap())));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = claims
}
criterion_main!(benches);
