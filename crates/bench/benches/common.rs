//! Shared helpers for the per-figure Criterion benches.

use criterion::Criterion;
use hmcs_bench::experiments::{run_figure, FigureSpec, RunOptions};
use std::hint::black_box;

/// Regenerates `spec` once (printing its rows so the bench log doubles
/// as the figure's data), then benchmarks the analysis series and one
/// simulated point.
pub fn bench_figure(c: &mut Criterion, spec: FigureSpec) {
    let opts = RunOptions { messages: 4_000, warmup: 1_000, ..Default::default() };
    let data = run_figure(spec, &opts).expect("figure runs");
    println!("\n=== {} — {} ===", spec.id, spec.caption);
    println!("clusters  analysis512  sim512  analysis1024  sim1024   (ms)");
    for r in &data.rows {
        println!(
            "{:8}  {:11.3}  {:6.3}  {:12.3}  {:7.3}",
            r.clusters,
            r.analysis_512_ms,
            r.sim_512_ms.unwrap_or(f64::NAN),
            r.analysis_1024_ms,
            r.sim_1024_ms.unwrap_or(f64::NAN),
        );
    }

    // The analysis series: the model's selling point is quick estimates
    // compared to simulation.
    let analysis_only = RunOptions { with_simulation: false, ..Default::default() };
    c.bench_function(&format!("{}/analysis_series", spec.id), |b| {
        b.iter(|| black_box(run_figure(black_box(spec), &analysis_only).unwrap()))
    });

    // One simulated point (C = 16, M = 1024, 2,000 messages).
    c.bench_function(&format!("{}/simulation_point_c16", spec.id), |b| {
        b.iter(|| {
            let sys =
                hmcs_core::config::SystemConfig::paper_preset(spec.scenario, 16, spec.architecture)
                    .unwrap();
            let cfg = hmcs_sim::config::SimConfig::new(sys)
                .with_messages(2_000)
                .with_warmup(500)
                .with_seed(7);
            black_box(hmcs_sim::flow::FlowSimulator::run(&cfg).unwrap())
        })
    });
}
