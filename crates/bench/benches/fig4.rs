//! Criterion bench regenerating **Figure 4**: average message latency
//! vs. number of clusters, non-blocking networks, Case-1 system.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use hmcs_bench::experiments::FIG4;

fn fig4(c: &mut Criterion) {
    common::bench_figure(c, FIG4);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig4
}
criterion_main!(benches);
