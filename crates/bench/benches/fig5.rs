//! Criterion bench regenerating **Figure 5**: average message latency
//! vs. number of clusters, non-blocking networks, Case-2 system.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use hmcs_bench::experiments::FIG5;

fn fig5(c: &mut Criterion) {
    common::bench_figure(c, FIG5);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig5
}
criterion_main!(benches);
