//! Criterion bench regenerating **Figure 6**: average message latency
//! vs. number of clusters, blocking networks, Case-1 system.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use hmcs_bench::experiments::FIG6;

fn fig6(c: &mut Criterion) {
    common::bench_figure(c, FIG6);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig6
}
criterion_main!(benches);
