//! Criterion bench regenerating **Figure 7**: average message latency
//! vs. number of clusters, blocking networks, Case-2 system.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use hmcs_bench::experiments::FIG7;

fn fig7(c: &mut Criterion) {
    common::bench_figure(c, FIG7);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig7
}
criterion_main!(benches);
