//! Pins the batched SoA kernel's speedup over the scalar per-point
//! path on a figure-scale λ grid: the same 96 log-spaced offered rates
//! evaluated (a) one [`batch::evaluate_one`] call per point — the
//! pre-kernel production path, each point paying its own
//! `ServiceTimes` computation and per-evaluation setup — and (b) as
//! one [`sweep::lambda_sweep`] through the lockstep kernel, which
//! hoists the topology work and the per-lane coefficients once.
//!
//! The two paths are asserted bit-identical before timing starts, so
//! the ratio is a pure like-for-like cost comparison; `benchgate
//! kernel` turns the two means into the committed `BENCH_KERNEL.json`
//! speedup gate (≥5× on a quiet host).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hmcs_core::config::SystemConfig;
use hmcs_core::scenario::Scenario;
use hmcs_core::{batch, sweep};
use hmcs_topology::transmission::Architecture;
use std::hint::black_box;

/// 96 log-spaced per-processor rates spanning light load through the
/// saturation knee into retention-throttled overload — the λ range the
/// figure drivers and `/v1/sweep` actually walk.
fn lambda_grid() -> Vec<f64> {
    let (lo, hi) = (1e-7f64, 1e-2f64);
    let n = 96;
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            lo * (hi / lo).powf(t)
        })
        .collect()
}

fn base_config() -> SystemConfig {
    SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap()
}

fn bench_kernel_grid(c: &mut Criterion) {
    let base = base_config();
    let grid = lambda_grid();

    // Prove the two paths agree to the bit before timing them: a
    // speedup over a *different* answer would be meaningless.
    let batched = sweep::lambda_sweep(&base, &grid).unwrap();
    for (point, &lambda) in batched.iter().zip(&grid) {
        let (scalar, _) = batch::evaluate_one(&base.with_lambda(lambda), None, None).unwrap();
        assert_eq!(
            point.report.latency.mean_message_latency_us.to_bits(),
            scalar.latency.mean_message_latency_us.to_bits(),
            "kernel and scalar paths diverged at lambda={lambda:e}"
        );
    }

    let mut group = c.benchmark_group("kernel_grid");
    group.throughput(Throughput::Elements(grid.len() as u64));
    group.bench_function("scalar_per_point", |b| {
        b.iter(|| {
            for &lambda in &grid {
                let cfg = base.with_lambda(lambda);
                black_box(batch::evaluate_one(black_box(&cfg), None, None).unwrap());
            }
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| black_box(sweep::lambda_sweep(black_box(&base), black_box(&grid)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_kernel_grid);
criterion_main!(benches);
