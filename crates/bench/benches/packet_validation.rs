//! Criterion bench for the packet-level validation experiment: all
//! three fidelity levels (analysis / flow sim / packet sim) side by
//! side, plus the packet simulator's event-processing cost.

use criterion::{criterion_group, criterion_main, Criterion};
use hmcs_bench::experiments::{run_packet_validation, RunOptions};
use hmcs_core::config::SystemConfig;
use hmcs_core::scenario::Scenario;
use hmcs_sim::config::SimConfig;
use hmcs_sim::packet::PacketSimulator;
use hmcs_topology::transmission::Architecture;
use std::hint::black_box;

fn packet_validation(c: &mut Criterion) {
    let opts = RunOptions { messages: 3_000, warmup: 600, ..Default::default() };
    let rows = run_packet_validation(&opts).expect("experiment runs");
    println!("\n=== packet-validation: analysis vs flow vs packet (ms) ===");
    println!("clusters  analysis    flow    packet");
    for r in &rows {
        println!("{:8}  {:8.3}  {:6.3}  {:8.3}", r.clusters, r.analysis_ms, r.flow_ms, r.packet_ms);
    }

    let sys = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
    let cfg = SimConfig::new(sys).with_messages(2_000).with_warmup(400).with_seed(3);
    c.bench_function("packet/simulate_2k_messages_c16", |b| {
        b.iter(|| black_box(PacketSimulator::run(black_box(&cfg)).unwrap()))
    });

    let bl = SystemConfig::paper_preset(Scenario::Case1, 64, Architecture::Blocking).unwrap();
    let bl_cfg = SimConfig::new(bl).with_messages(1_000).with_warmup(200).with_seed(3);
    c.bench_function("packet/simulate_1k_messages_blocking_c64", |b| {
        b.iter(|| black_box(PacketSimulator::run(black_box(&bl_cfg)).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = packet_validation
}
criterion_main!(benches);
