//! Benchmarks of the two simulators' event throughput — the cost the
//! analytical model exists to avoid ("simulation ... is highly
//! time-consuming and expensive", §2). Also pins the analysis-to-
//! simulation speed advantage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hmcs_core::config::SystemConfig;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::Scenario;
use hmcs_sim::config::SimConfig;
use hmcs_sim::flow::FlowSimulator;
use hmcs_sim::packet::PacketSimulator;
use hmcs_topology::transmission::Architecture;
use std::hint::black_box;

fn flow_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/flow");
    for clusters in [4usize, 64] {
        let sys = SystemConfig::paper_preset(Scenario::Case1, clusters, Architecture::NonBlocking)
            .unwrap();
        let cfg = SimConfig::new(sys).with_messages(5_000).with_warmup(500).with_seed(1);
        group.throughput(Throughput::Elements(cfg.messages));
        group.bench_with_input(BenchmarkId::from_parameter(clusters), &cfg, |b, cfg| {
            b.iter(|| black_box(FlowSimulator::run(black_box(cfg)).unwrap()))
        });
    }
    group.finish();
}

fn packet_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/packet");
    for arch in [Architecture::NonBlocking, Architecture::Blocking] {
        let sys = SystemConfig::paper_preset(Scenario::Case1, 16, arch).unwrap();
        let cfg = SimConfig::new(sys).with_messages(3_000).with_warmup(300).with_seed(1);
        group.throughput(Throughput::Elements(cfg.messages));
        group.bench_with_input(BenchmarkId::from_parameter(format!("{arch:?}")), &cfg, |b, cfg| {
            b.iter(|| black_box(PacketSimulator::run(black_box(cfg)).unwrap()))
        });
    }
    group.finish();
}

fn analysis_vs_simulation_speed(c: &mut Criterion) {
    // The paper's motivation, quantified: one analysis evaluation vs one
    // 10,000-message simulation of the same system.
    let sys = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
    let mut group = c.benchmark_group("speed_advantage");
    group.bench_function("analysis", |b| {
        b.iter(|| black_box(AnalyticalModel::evaluate(black_box(&sys)).unwrap()))
    });
    let cfg = SimConfig::new(sys).with_messages(10_000).with_warmup(2_000).with_seed(1);
    group.sample_size(10);
    group.bench_function("simulation_10k", |b| {
        b.iter(|| black_box(FlowSimulator::run(black_box(&cfg)).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = flow_simulator, packet_simulator, analysis_vs_simulation_speed
}
criterion_main!(benches);
