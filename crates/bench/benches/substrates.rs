//! Micro-benchmarks of the substrate crates: queueing kernels, the
//! topology constructors (incl. the max-flow bisection verifier) and
//! the DES event queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmcs_des::event::EventQueue;
use hmcs_des::rng::RngStream;
use hmcs_des::time::SimTime;
use hmcs_queueing::closed::{mva, MvaStation};
use hmcs_queueing::jackson::{JacksonNetwork, Station};
use hmcs_topology::fat_tree::FatTree;
use hmcs_topology::switch::SwitchFabric;
use std::hint::black_box;

fn queueing_kernels(c: &mut Criterion) {
    c.bench_function("queueing/jackson_solve_16_stations", |b| {
        let stations: Vec<Station> =
            (0..16).map(|i| Station::single(10.0, 0.1 + 0.01 * i as f64)).collect();
        let mut routing = vec![vec![0.0; 16]; 16];
        for (i, row) in routing.iter_mut().enumerate() {
            row[(i + 1) % 16] = 0.5;
        }
        let net = JacksonNetwork::new(stations, routing).unwrap();
        b.iter(|| black_box(net.solve().unwrap()))
    });

    let mut group = c.benchmark_group("queueing/mva");
    for population in [16u32, 256] {
        let stations = [
            MvaStation::Delay { demand: 4000.0 },
            MvaStation::Queueing { demand: 120.0 },
            MvaStation::Queueing { demand: 160.0 },
            MvaStation::Queueing { demand: 180.0 },
        ];
        group.bench_with_input(BenchmarkId::from_parameter(population), &population, |b, &n| {
            b.iter(|| black_box(mva(&stations, n).unwrap()))
        });
    }
    group.finish();
}

fn topology_kernels(c: &mut Criterion) {
    let sw = SwitchFabric::paper_default();
    c.bench_function("topology/fat_tree_mean_traversals_4096", |b| {
        let ft = FatTree::new(4096, sw).unwrap();
        b.iter(|| black_box(ft.mean_switch_traversals()))
    });
    c.bench_function("topology/fat_tree_bisection_maxflow_256", |b| {
        let ft = FatTree::new(256, sw).unwrap();
        let g = ft.build_graph();
        b.iter(|| black_box(g.natural_bisection_width()))
    });
}

fn des_kernels(c: &mut Criterion) {
    c.bench_function("des/event_queue_push_pop_10k", |b| {
        let mut rng = RngStream::new(42, 0);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u32 {
                q.push(SimTime::from_us(rng.uniform() * 1e6), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc += v as u64;
            }
            black_box(acc)
        })
    });
    c.bench_function("des/exponential_sampling_100k", |b| {
        let mut rng = RngStream::new(7, 1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.exponential(0.25);
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = queueing_kernels, topology_kernels, des_kernels
}
criterion_main!(benches);
