//! Criterion bench regenerating **Tables 1 and 2** and benchmarking the
//! preset construction they exercise.

use criterion::{criterion_group, criterion_main, Criterion};
use hmcs_bench::experiments::{table1, table2};
use hmcs_core::config::SystemConfig;
use hmcs_core::scenario::Scenario;
use hmcs_topology::transmission::Architecture;
use std::hint::black_box;

fn tables(c: &mut Criterion) {
    // Emit the regenerated tables once.
    println!("\n=== Table 1 — Two Scenarios of Communication Networks ===");
    for row in table1() {
        println!("{:<14} ICN1={:<18} ECN1/ICN2={}", row.case, row.icn1, row.ecn1_icn2);
    }
    println!("\n=== Table 2 — Model Parameters ===");
    for row in table2() {
        println!("{:<34} {:>8} {}", row.item, row.quantity, row.unit);
    }

    c.bench_function("table1/regenerate", |b| b.iter(|| black_box(table1())));
    c.bench_function("table2/regenerate", |b| b.iter(|| black_box(table2())));
    c.bench_function("table1/preset_construction", |b| {
        b.iter(|| {
            for scenario in [Scenario::Case1, Scenario::Case2] {
                for c in [1usize, 16, 256] {
                    black_box(
                        SystemConfig::paper_preset(scenario, c, Architecture::NonBlocking).unwrap(),
                    );
                }
            }
        })
    });
}

criterion_group!(benches, tables);
criterion_main!(benches);
