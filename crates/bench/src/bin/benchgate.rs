//! Assembles a machine-readable benchmark report and gates CI on it.
//!
//! Input is the JSON-lines file the vendored criterion harness appends
//! to when `HMCS_BENCH_JSON` is set (one `{"id", "min_s", "mean_s",
//! "max_s"}` object per line). The tool:
//!
//! 1. parses every row,
//! 2. computes the observability overhead from the `batch_sweep`
//!    bench's `instrumentation/metrics_on` vs
//!    `instrumentation/metrics_off` rows and **fails** (exit 1) when it
//!    exceeds the budget (`--max-overhead-pct`, default 10),
//! 3. optionally folds in the per-figure `wall_clock_us` recorded by
//!    `reproduce` manifests (`--manifests DIR`),
//! 4. writes everything as one JSON document (`--out`, default
//!    `BENCH_PR4.json`).
//!
//! The report is written before the gate verdict so a failing run still
//! uploads a complete artefact.
//!
//! A second mode, `benchgate serve SUMMARY.json`, gates the
//! `hmcs-loadgen/1` document produced by the load generator instead:
//! it checks achieved throughput against `--min-rps` (and optionally
//! P99 against `--max-p99-us`), requires zero error responses, and
//! writes a `hmcs-serve-bench/1` report embedding the validated
//! summary verbatim — the committed `BENCH_SERVE.json` artefact.
//!
//! `benchgate kernel` gates the batched-kernel speedup instead: input
//! is either fresh `kernel_grid` criterion rows or a previously
//! committed `hmcs-kernel-bench/1` report (so CI re-judges the
//! committed `BENCH_KERNEL.json` without re-measuring), the verdict is
//! `scalar_per_point mean / batched mean >= --min-speedup`.

use hmcs_bench::manifest::{parse_json, JsonValue};
use hmcs_bench::report::write_atomic;
use std::process::ExitCode;

/// Default overhead budget (%). The bench itself documents a ≤2%
/// target on quiet machines; shared CI runners need headroom for
/// scheduler noise, so the gate only catches real regressions.
const DEFAULT_MAX_OVERHEAD_PCT: f64 = 10.0;

/// One parsed benchmark row.
#[derive(Debug, Clone, PartialEq)]
struct BenchRow {
    id: String,
    min_s: f64,
    mean_s: f64,
    max_s: f64,
}

/// The instrumentation-overhead verdict.
#[derive(Debug, Clone, PartialEq)]
struct GateVerdict {
    metrics_on_mean_s: f64,
    metrics_off_mean_s: f64,
    overhead_pct: f64,
    max_overhead_pct: f64,
    pass: bool,
}

fn parse_rows(body: &str) -> Result<Vec<BenchRow>, String> {
    let mut rows = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("row {}: {e}", i + 1))?;
        let field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(JsonValue::as_num)
                .ok_or_else(|| format!("row {}: missing numeric \"{k}\"", i + 1))
        };
        rows.push(BenchRow {
            id: v
                .get("id")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("row {}: missing \"id\"", i + 1))?
                .to_string(),
            min_s: field("min_s")?,
            mean_s: field("mean_s")?,
            max_s: field("max_s")?,
        });
    }
    Ok(rows)
}

/// Judges the instrumentation rows. The on/off pair measures the same
/// 72-point grid, so their ratio isolates the metrics layer's cost.
fn judge(rows: &[BenchRow], max_overhead_pct: f64) -> Result<GateVerdict, String> {
    let mean_of = |id: &str| -> Result<f64, String> {
        rows.iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_s)
            .ok_or_else(|| format!("no \"{id}\" row — did the batch_sweep bench run?"))
    };
    let on = mean_of("instrumentation/metrics_on")?;
    let off = mean_of("instrumentation/metrics_off")?;
    if off <= 0.0 {
        return Err("metrics_off mean is not positive".to_string());
    }
    let overhead_pct = (on / off - 1.0) * 100.0;
    Ok(GateVerdict {
        metrics_on_mean_s: on,
        metrics_off_mean_s: off,
        overhead_pct,
        max_overhead_pct,
        pass: overhead_pct <= max_overhead_pct,
    })
}

/// Pulls `(artefact, figure wall_clock_us)` out of every
/// `manifest_*.json` in `dir` that carries a figure section.
fn figure_wall_clocks(dir: &std::path::Path) -> Vec<(String, f64)> {
    let mut clocks = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return clocks;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(artefact) = name.strip_prefix("manifest_").and_then(|n| n.strip_suffix(".json"))
        else {
            continue;
        };
        let Ok(body) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let Ok(doc) = parse_json(&body) else {
            continue;
        };
        if let Some(us) =
            doc.get("figure").and_then(|f| f.get("wall_clock_us")).and_then(JsonValue::as_num)
        {
            clocks.push((artefact.to_string(), us));
        }
    }
    clocks.sort_by(|a, b| a.0.cmp(&b.0));
    clocks
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn report_json(
    rows: &[BenchRow],
    verdict: &GateVerdict,
    clocks: &[(String, f64)],
    meta: &[(String, String)],
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"hmcs-bench-gate/1\",");
    let meta_items: Vec<String> =
        meta.iter().map(|(k, v)| format!("{}: {}", json_escape(k), json_escape(v))).collect();
    let _ = writeln!(out, "  \"meta\": {{{}}},", meta_items.join(", "));
    let _ = writeln!(out, "  \"gate\": {{");
    let _ = writeln!(out, "    \"metrics_on_mean_s\": {},", verdict.metrics_on_mean_s);
    let _ = writeln!(out, "    \"metrics_off_mean_s\": {},", verdict.metrics_off_mean_s);
    let _ = writeln!(out, "    \"overhead_pct\": {},", verdict.overhead_pct);
    let _ = writeln!(out, "    \"max_overhead_pct\": {},", verdict.max_overhead_pct);
    let _ = writeln!(out, "    \"pass\": {}", verdict.pass);
    let _ = writeln!(out, "  }},");
    let clock_items: Vec<String> =
        clocks.iter().map(|(k, v)| format!("{}: {v}", json_escape(k))).collect();
    let _ = writeln!(out, "  \"figure_wall_clock_us\": {{{}}},", clock_items.join(", "));
    let _ = writeln!(out, "  \"benches\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"id\": {}, \"min_s\": {}, \"mean_s\": {}, \"max_s\": {}}}{comma}",
            json_escape(&r.id),
            r.min_s,
            r.mean_s,
            r.max_s
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// The serving-throughput verdict extracted from a loadgen summary.
#[derive(Debug, Clone, PartialEq)]
struct ServeVerdict {
    achieved_rps: f64,
    min_rps: f64,
    p99_us: f64,
    max_p99_us: Option<f64>,
    errors: u64,
    pass: bool,
}

/// Validates an `hmcs-loadgen/1` document against the thresholds.
/// Throughput below `min_rps`, any error response, or (when bounded) a
/// P99 above `max_p99_us` fails the gate.
fn judge_serve(
    doc: &JsonValue,
    min_rps: f64,
    max_p99_us: Option<f64>,
) -> Result<ServeVerdict, String> {
    if doc.get("schema").and_then(JsonValue::as_str) != Some("hmcs-loadgen/1") {
        return Err("not an hmcs-loadgen/1 document".to_string());
    }
    let measured = doc.get("measured").ok_or("missing \"measured\" section")?;
    let achieved_rps = measured
        .get("achieved_rps")
        .and_then(JsonValue::as_num)
        .ok_or("missing numeric \"measured.achieved_rps\"")?;
    let p99_us = measured
        .get("latency_us")
        .and_then(|l| l.get("p99"))
        .and_then(JsonValue::as_num)
        .ok_or("missing numeric \"measured.latency_us.p99\"")?;
    let errors = doc
        .get("requests")
        .and_then(|r| r.get("errors"))
        .and_then(JsonValue::as_u64)
        .ok_or("missing integer \"requests.errors\"")?;
    let pass =
        achieved_rps >= min_rps && errors == 0 && max_p99_us.is_none_or(|budget| p99_us <= budget);
    Ok(ServeVerdict { achieved_rps, min_rps, p99_us, max_p99_us, errors, pass })
}

/// Renders the committed `hmcs-serve-bench/1` artefact: the gate
/// verdict plus the loadgen summary embedded verbatim (it is already
/// validated JSON, so embedding keeps every measured number).
fn serve_report_json(
    verdict: &ServeVerdict,
    summary_raw: &str,
    meta: &[(String, String)],
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"hmcs-serve-bench/1\",");
    let meta_items: Vec<String> =
        meta.iter().map(|(k, v)| format!("{}: {}", json_escape(k), json_escape(v))).collect();
    let _ = writeln!(out, "  \"meta\": {{{}}},", meta_items.join(", "));
    let _ = writeln!(out, "  \"gate\": {{");
    let _ = writeln!(out, "    \"min_rps\": {},", verdict.min_rps);
    let _ = writeln!(out, "    \"achieved_rps\": {},", verdict.achieved_rps);
    let _ = writeln!(out, "    \"p99_us\": {},", verdict.p99_us);
    let _ = writeln!(
        out,
        "    \"max_p99_us\": {},",
        verdict.max_p99_us.map_or("null".to_string(), |v| v.to_string())
    );
    let _ = writeln!(out, "    \"errors\": {},", verdict.errors);
    let _ = writeln!(out, "    \"pass\": {}", verdict.pass);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"loadgen\": {}", summary_raw.trim());
    let _ = writeln!(out, "}}");
    out
}

fn serve_main(args: Vec<String>) -> ExitCode {
    let mut summary_path: Option<String> = None;
    let mut out_path = "BENCH_SERVE.json".to_string();
    let mut min_rps: Option<f64> = None;
    let mut max_p99_us: Option<f64> = None;
    let mut meta: Vec<(String, String)> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().unwrap_or_else(|| usage()),
            "--min-rps" => {
                min_rps = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--max-p99-us" => {
                max_p99_us =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--meta" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                meta.push((k.to_string(), v.to_string()));
            }
            _ if summary_path.is_none() && !arg.starts_with('-') => summary_path = Some(arg),
            _ => usage(),
        }
    }
    let (Some(summary_path), Some(min_rps)) = (summary_path, min_rps) else { usage() };

    let raw = match std::fs::read_to_string(&summary_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {summary_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match parse_json(&raw) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {summary_path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let verdict = match judge_serve(&doc, min_rps, max_p99_us) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = serve_report_json(&verdict, &raw, &meta);
    if let Err(e) = write_atomic(std::path::Path::new(&out_path), report.as_bytes()) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "benchgate serve: {:.0} req/s (floor {:.0}), p99 {:.0} µs{}, {} error(s) — {}",
        verdict.achieved_rps,
        verdict.min_rps,
        verdict.p99_us,
        verdict.max_p99_us.map_or(String::new(), |budget| format!(" (budget {budget:.0} µs)")),
        verdict.errors,
        if verdict.pass { "PASS" } else { "FAIL" }
    );
    println!("report written to {out_path}");
    if verdict.pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The optimizer-throughput verdict extracted from an
/// `hmcs-optimize-bench/1` summary (written by `reproduce optimize
/// --opt-bench`).
#[derive(Debug, Clone, PartialEq)]
struct OptimizeVerdict {
    evals_per_s: f64,
    min_eps: f64,
    evaluated: u64,
    speedup: Option<f64>,
    min_speedup: Option<f64>,
    pass: bool,
}

/// Validates an `hmcs-optimize-bench/1` document: the measured
/// evaluations/second must meet the floor, the run must have evaluated
/// at least one point, and — when `--min-speedup` is given — the
/// summary's pruned-vs-exhaustive `speedup` must meet its floor too
/// (along with the recorded frontier bit-identity check).
fn judge_optimize(
    doc: &JsonValue,
    min_eps: f64,
    min_speedup: Option<f64>,
) -> Result<OptimizeVerdict, String> {
    if doc.get("schema").and_then(JsonValue::as_str) != Some("hmcs-optimize-bench/1") {
        return Err("not an hmcs-optimize-bench/1 document".to_string());
    }
    let evals_per_s = doc
        .get("evals_per_s")
        .and_then(JsonValue::as_num)
        .ok_or("missing numeric \"evals_per_s\"")?;
    let evaluated =
        doc.get("evaluated").and_then(JsonValue::as_u64).ok_or("missing integer \"evaluated\"")?;
    let speedup = doc.get("speedup").and_then(JsonValue::as_num);
    let mut pass = evals_per_s >= min_eps && evaluated > 0;
    if let Some(floor) = min_speedup {
        let measured = speedup.ok_or("missing numeric \"speedup\" (--min-speedup given)")?;
        let identical = doc.get("frontier_identical").and_then(|v| match v {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        });
        if identical != Some(true) {
            return Err("summary does not record \"frontier_identical\": true".to_string());
        }
        pass = pass && measured >= floor;
    }
    Ok(OptimizeVerdict { evals_per_s, min_eps, evaluated, speedup, min_speedup, pass })
}

/// Renders the committed `hmcs-optimize-gate/1` artefact with the
/// validated summary embedded verbatim.
fn optimize_report_json(
    verdict: &OptimizeVerdict,
    summary_raw: &str,
    meta: &[(String, String)],
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"hmcs-optimize-gate/1\",");
    let meta_items: Vec<String> =
        meta.iter().map(|(k, v)| format!("{}: {}", json_escape(k), json_escape(v))).collect();
    let _ = writeln!(out, "  \"meta\": {{{}}},", meta_items.join(", "));
    let _ = writeln!(out, "  \"gate\": {{");
    let _ = writeln!(out, "    \"min_evals_per_s\": {},", verdict.min_eps);
    let _ = writeln!(out, "    \"evals_per_s\": {},", verdict.evals_per_s);
    let _ = writeln!(out, "    \"evaluated\": {},", verdict.evaluated);
    if let Some(speedup) = verdict.speedup {
        let _ = writeln!(out, "    \"speedup\": {speedup},");
    }
    if let Some(min_speedup) = verdict.min_speedup {
        let _ = writeln!(out, "    \"min_speedup\": {min_speedup},");
    }
    let _ = writeln!(out, "    \"pass\": {}", verdict.pass);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"optimize\": {}", summary_raw.trim());
    let _ = writeln!(out, "}}");
    out
}

fn optimize_main(args: Vec<String>) -> ExitCode {
    let mut summary_path: Option<String> = None;
    let mut out_path = "BENCH_OPTIMIZE.json".to_string();
    let mut min_eps: Option<f64> = None;
    let mut min_speedup: Option<f64> = None;
    let mut meta: Vec<(String, String)> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().unwrap_or_else(|| usage()),
            "--min-eps" => {
                min_eps = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--min-speedup" => {
                min_speedup =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--meta" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                meta.push((k.to_string(), v.to_string()));
            }
            _ if summary_path.is_none() && !arg.starts_with('-') => summary_path = Some(arg),
            _ => usage(),
        }
    }
    let (Some(summary_path), Some(min_eps)) = (summary_path, min_eps) else { usage() };

    let raw = match std::fs::read_to_string(&summary_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {summary_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match parse_json(&raw) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {summary_path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let verdict = match judge_optimize(&doc, min_eps, min_speedup) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = optimize_report_json(&verdict, &raw, &meta);
    if let Err(e) = write_atomic(std::path::Path::new(&out_path), report.as_bytes()) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    let speedup_note = match (verdict.speedup, verdict.min_speedup) {
        (Some(s), Some(floor)) => format!(", {s:.2}x pruning speedup (floor {floor:.2}x)"),
        (Some(s), None) => format!(", {s:.2}x pruning speedup"),
        _ => String::new(),
    };
    println!(
        "benchgate optimize: {:.0} evals/s (floor {:.0}), {} evaluation(s){} — {}",
        verdict.evals_per_s,
        verdict.min_eps,
        verdict.evaluated,
        speedup_note,
        if verdict.pass { "PASS" } else { "FAIL" }
    );
    println!("report written to {out_path}");
    if verdict.pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The topology-pipeline verdict extracted from an
/// `hmcs-topology-bench/1` summary (written by `reproduce topology
/// --topo-bench`).
#[derive(Debug, Clone, PartialEq)]
struct TopologyVerdict {
    cases: u64,
    max_nodes: u64,
    min_nodes: u64,
    roundtrip_failures: u64,
    agreement_failures: u64,
    pass: bool,
}

/// Validates an `hmcs-topology-bench/1` document: the run must cover
/// at least one case, recover every planted partition (zero round-trip
/// failures), agree with the analytical model in every case, and its
/// largest matrix must reach the `--min-nodes` scale floor.
fn judge_topology(doc: &JsonValue, min_nodes: u64) -> Result<TopologyVerdict, String> {
    if doc.get("schema").and_then(JsonValue::as_str) != Some("hmcs-topology-bench/1") {
        return Err("not an hmcs-topology-bench/1 document".to_string());
    }
    let int = |k: &str| -> Result<u64, String> {
        doc.get(k).and_then(JsonValue::as_u64).ok_or_else(|| format!("missing integer {k:?}"))
    };
    let cases = int("cases")?;
    let max_nodes = int("max_nodes")?;
    let roundtrip_failures = int("roundtrip_failures")?;
    let agreement_failures = int("agreement_failures")?;
    let pass =
        cases > 0 && roundtrip_failures == 0 && agreement_failures == 0 && max_nodes >= min_nodes;
    Ok(TopologyVerdict {
        cases,
        max_nodes,
        min_nodes,
        roundtrip_failures,
        agreement_failures,
        pass,
    })
}

/// Renders the committed `hmcs-topology-gate/1` artefact with the
/// validated summary embedded verbatim.
fn topology_report_json(
    verdict: &TopologyVerdict,
    summary_raw: &str,
    meta: &[(String, String)],
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"hmcs-topology-gate/1\",");
    let meta_items: Vec<String> =
        meta.iter().map(|(k, v)| format!("{}: {}", json_escape(k), json_escape(v))).collect();
    let _ = writeln!(out, "  \"meta\": {{{}}},", meta_items.join(", "));
    let _ = writeln!(out, "  \"gate\": {{");
    let _ = writeln!(out, "    \"cases\": {},", verdict.cases);
    let _ = writeln!(out, "    \"max_nodes\": {},", verdict.max_nodes);
    let _ = writeln!(out, "    \"min_nodes\": {},", verdict.min_nodes);
    let _ = writeln!(out, "    \"roundtrip_failures\": {},", verdict.roundtrip_failures);
    let _ = writeln!(out, "    \"agreement_failures\": {},", verdict.agreement_failures);
    let _ = writeln!(out, "    \"pass\": {}", verdict.pass);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"topology\": {}", summary_raw.trim());
    let _ = writeln!(out, "}}");
    out
}

fn topology_main(args: Vec<String>) -> ExitCode {
    let mut summary_path: Option<String> = None;
    let mut out_path = "BENCH_TOPOLOGY.json".to_string();
    let mut min_nodes: Option<u64> = None;
    let mut meta: Vec<(String, String)> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().unwrap_or_else(|| usage()),
            "--min-nodes" => {
                min_nodes = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--meta" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                meta.push((k.to_string(), v.to_string()));
            }
            _ if summary_path.is_none() && !arg.starts_with('-') => summary_path = Some(arg),
            _ => usage(),
        }
    }
    let (Some(summary_path), Some(min_nodes)) = (summary_path, min_nodes) else { usage() };

    let raw = match std::fs::read_to_string(&summary_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {summary_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match parse_json(&raw) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {summary_path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let verdict = match judge_topology(&doc, min_nodes) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = topology_report_json(&verdict, &raw, &meta);
    if let Err(e) = write_atomic(std::path::Path::new(&out_path), report.as_bytes()) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "benchgate topology: {} case(s), largest {} nodes (floor {}), {} round-trip / {} \
         agreement failure(s) — {}",
        verdict.cases,
        verdict.max_nodes,
        verdict.min_nodes,
        verdict.roundtrip_failures,
        verdict.agreement_failures,
        if verdict.pass { "PASS" } else { "FAIL" }
    );
    println!("report written to {out_path}");
    if verdict.pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The kernel-speedup verdict: the batched SoA kernel's mean time on
/// the `kernel_grid` bench versus the scalar per-point path's.
#[derive(Debug, Clone, PartialEq)]
struct KernelVerdict {
    scalar_mean_s: f64,
    batched_mean_s: f64,
    speedup: f64,
    min_speedup: f64,
    pass: bool,
}

/// Judges a pair of `kernel_grid` means against the speedup floor.
fn judge_kernel(
    scalar_mean_s: f64,
    batched_mean_s: f64,
    min_speedup: f64,
) -> Result<KernelVerdict, String> {
    if !(batched_mean_s > 0.0 && scalar_mean_s > 0.0) {
        return Err("kernel_grid means must be positive".to_string());
    }
    let speedup = scalar_mean_s / batched_mean_s;
    Ok(KernelVerdict {
        scalar_mean_s,
        batched_mean_s,
        speedup,
        min_speedup,
        pass: speedup >= min_speedup,
    })
}

/// Extracts the scalar/batched mean pair from either input shape:
/// fresh criterion JSONL rows (`kernel_grid/scalar_per_point` +
/// `kernel_grid/batched`), or a previously committed
/// `hmcs-kernel-bench/1` report — so CI can re-judge the committed
/// `BENCH_KERNEL.json` at the quiet-host floor without re-measuring.
fn kernel_means(raw: &str) -> Result<(f64, f64), String> {
    if let Ok(doc) = parse_json(raw) {
        if doc.get("schema").and_then(JsonValue::as_str) == Some("hmcs-kernel-bench/1") {
            let num = |k: &str| -> Result<f64, String> {
                doc.get("gate")
                    .and_then(|g| g.get(k))
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| format!("missing numeric \"gate.{k}\""))
            };
            return Ok((num("scalar_mean_s")?, num("batched_mean_s")?));
        }
    }
    let rows = parse_rows(raw)?;
    let mean_of = |id: &str| -> Result<f64, String> {
        rows.iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_s)
            .ok_or_else(|| format!("no \"{id}\" row — did the kernel_grid bench run?"))
    };
    Ok((mean_of("kernel_grid/scalar_per_point")?, mean_of("kernel_grid/batched")?))
}

/// Renders the committed `hmcs-kernel-bench/1` artefact. The gate
/// section carries the raw means, so the report is itself a valid
/// input for a later re-judge at a different floor.
fn kernel_report_json(verdict: &KernelVerdict, meta: &[(String, String)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"hmcs-kernel-bench/1\",");
    let meta_items: Vec<String> =
        meta.iter().map(|(k, v)| format!("{}: {}", json_escape(k), json_escape(v))).collect();
    let _ = writeln!(out, "  \"meta\": {{{}}},", meta_items.join(", "));
    let _ = writeln!(out, "  \"gate\": {{");
    let _ = writeln!(out, "    \"scalar_mean_s\": {},", verdict.scalar_mean_s);
    let _ = writeln!(out, "    \"batched_mean_s\": {},", verdict.batched_mean_s);
    let _ = writeln!(out, "    \"speedup\": {},", verdict.speedup);
    let _ = writeln!(out, "    \"min_speedup\": {},", verdict.min_speedup);
    let _ = writeln!(out, "    \"pass\": {}", verdict.pass);
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

fn kernel_main(args: Vec<String>) -> ExitCode {
    let mut input_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut min_speedup: Option<f64> = None;
    let mut meta: Vec<(String, String)> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = Some(it.next().unwrap_or_else(|| usage())),
            "--min-speedup" => {
                min_speedup =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--meta" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                meta.push((k.to_string(), v.to_string()));
            }
            _ if input_path.is_none() && !arg.starts_with('-') => input_path = Some(arg),
            _ => usage(),
        }
    }
    let (Some(input_path), Some(min_speedup)) = (input_path, min_speedup) else { usage() };

    let raw = match std::fs::read_to_string(&input_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {input_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let (scalar_mean_s, batched_mean_s) = match kernel_means(&raw) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let verdict = match judge_kernel(scalar_mean_s, batched_mean_s, min_speedup) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(out_path) = &out_path {
        let report = kernel_report_json(&verdict, &meta);
        if let Err(e) = write_atomic(std::path::Path::new(out_path), report.as_bytes()) {
            eprintln!("error: cannot write {out_path}: {e}");
            return ExitCode::from(2);
        }
        println!("report written to {out_path}");
    }
    println!(
        "benchgate kernel: {:.2}x speedup (floor {:.2}x) — scalar {:.3e} s vs batched {:.3e} s — {}",
        verdict.speedup,
        verdict.min_speedup,
        verdict.scalar_mean_s,
        verdict.batched_mean_s,
        if verdict.pass { "PASS" } else { "FAIL" }
    );
    if verdict.pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: benchgate ROWS.jsonl [--manifests DIR] [--out PATH] \
         [--max-overhead-pct X] [--meta key=value]...\n\
         \x20      benchgate serve SUMMARY.json --min-rps X [--max-p99-us Y] \
         [--out PATH] [--meta key=value]...\n\
         \x20      benchgate optimize SUMMARY.json --min-eps X [--min-speedup Y] \
         [--out PATH] [--meta key=value]...\n\
         \x20      benchgate kernel ROWS.jsonl|REPORT.json --min-speedup X \
         [--out PATH] [--meta key=value]...\n\
         \x20      benchgate topology SUMMARY.json --min-nodes N \
         [--out PATH] [--meta key=value]..."
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        args.remove(0);
        return serve_main(args);
    }
    if args.first().map(String::as_str) == Some("optimize") {
        args.remove(0);
        return optimize_main(args);
    }
    if args.first().map(String::as_str) == Some("kernel") {
        args.remove(0);
        return kernel_main(args);
    }
    if args.first().map(String::as_str) == Some("topology") {
        args.remove(0);
        return topology_main(args);
    }
    let mut rows_path: Option<String> = None;
    let mut manifests: Option<String> = None;
    let mut out_path = "BENCH_PR4.json".to_string();
    let mut max_overhead_pct = DEFAULT_MAX_OVERHEAD_PCT;
    let mut meta: Vec<(String, String)> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--manifests" => manifests = Some(it.next().unwrap_or_else(|| usage())),
            "--out" => out_path = it.next().unwrap_or_else(|| usage()),
            "--max-overhead-pct" => {
                max_overhead_pct =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--meta" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                meta.push((k.to_string(), v.to_string()));
            }
            _ if rows_path.is_none() && !arg.starts_with('-') => rows_path = Some(arg),
            _ => usage(),
        }
    }
    let Some(rows_path) = rows_path else { usage() };

    let body = match std::fs::read_to_string(&rows_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {rows_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let rows = match parse_rows(&body) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let verdict = match judge(&rows, max_overhead_pct) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let clocks = manifests
        .as_deref()
        .map(|d| figure_wall_clocks(std::path::Path::new(d)))
        .unwrap_or_default();

    let report = report_json(&rows, &verdict, &clocks, &meta);
    if let Err(e) = write_atomic(std::path::Path::new(&out_path), report.as_bytes()) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "benchgate: {} row(s), instrumentation overhead {:.2}% (budget {:.2}%) — {}",
        rows.len(),
        verdict.overhead_pct,
        verdict.max_overhead_pct,
        if verdict.pass { "PASS" } else { "FAIL" }
    );
    println!("report written to {out_path}");
    if verdict.pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<BenchRow> {
        parse_rows(concat!(
            "{\"id\": \"instrumentation/metrics_on\", \"min_s\": 0.010, \"mean_s\": 0.0104, \"max_s\": 0.011}\n",
            "{\"id\": \"instrumentation/metrics_off\", \"min_s\": 0.010, \"mean_s\": 0.0100, \"max_s\": 0.011}\n",
            "{\"id\": \"figure_grid/workers/1\", \"min_s\": 0.02, \"mean_s\": 0.021, \"max_s\": 0.022}\n",
        ))
        .unwrap()
    }

    #[test]
    fn rows_parse_with_ids_and_times() {
        let rows = rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].id, "figure_grid/workers/1");
        assert_eq!(rows[0].mean_s, 0.0104);
    }

    #[test]
    fn gate_passes_inside_budget_and_fails_outside() {
        let rows = rows();
        // 4% overhead: passes a 10% budget, fails a 2% budget.
        let ok = judge(&rows, 10.0).unwrap();
        assert!(ok.pass);
        assert!((ok.overhead_pct - 4.0).abs() < 1e-9);
        let bad = judge(&rows, 2.0).unwrap();
        assert!(!bad.pass);
    }

    #[test]
    fn gate_requires_both_instrumentation_rows() {
        let only_on = parse_rows(
            "{\"id\": \"instrumentation/metrics_on\", \"min_s\": 1, \"mean_s\": 1, \"max_s\": 1}",
        )
        .unwrap();
        assert!(judge(&only_on, 10.0).is_err());
    }

    #[test]
    fn report_is_valid_json_carrying_the_verdict() {
        let rows = rows();
        let verdict = judge(&rows, 10.0).unwrap();
        let clocks = vec![("fig4".to_string(), 28583.8)];
        let meta = vec![("budget".to_string(), "ci".to_string())];
        let doc = parse_json(&report_json(&rows, &verdict, &clocks, &meta)).unwrap();
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some("hmcs-bench-gate/1"));
        assert_eq!(
            doc.get("meta").and_then(|m| m.get("budget")).and_then(JsonValue::as_str),
            Some("ci")
        );
        assert_eq!(doc.get("gate").and_then(|g| g.get("pass")), Some(&JsonValue::Bool(true)));
        assert_eq!(
            doc.get("figure_wall_clock_us").and_then(|c| c.get("fig4")).and_then(JsonValue::as_num),
            Some(28583.8)
        );
        match doc.get("benches") {
            Some(JsonValue::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("benches should be an array, got {other:?}"),
        }
    }

    fn loadgen_summary(rps: f64, p99: u64, errors: u64) -> String {
        format!(
            concat!(
                r#"{{"schema":"hmcs-loadgen/1","mode":"closed","addr":"127.0.0.1:1","#,
                r#""connections":2,"pipeline":16,"target_rps":null,"duration_s":3,"warmup_s":1,"#,
                r#""mix":{{"sweep_permille":0,"clusters":16,"message_bytes":[1024]}},"#,
                r#""requests":{{"sent":10,"completed":10,"errors":{errors},"dropped":0,"reconnects":0}},"#,
                r#""measured":{{"requests":10,"achieved_rps":{rps},"#,
                r#""latency_us":{{"p50":50,"p90":80,"p99":{p99},"p999":{p99},"mean":60,"max":{p99}}}}}}}"#,
            ),
            rps = rps,
            p99 = p99,
            errors = errors,
        )
    }

    #[test]
    fn serve_gate_enforces_throughput_errors_and_tail() {
        let doc = parse_json(&loadgen_summary(120000.0, 400, 0)).unwrap();
        let ok = judge_serve(&doc, 100000.0, None).unwrap();
        assert!(ok.pass);
        assert_eq!(ok.achieved_rps, 120000.0);

        let slow = judge_serve(&doc, 150000.0, None).unwrap();
        assert!(!slow.pass, "throughput below the floor must fail");

        let tail = judge_serve(&doc, 100000.0, Some(100.0)).unwrap();
        assert!(!tail.pass, "p99 above the budget must fail");

        let errored = parse_json(&loadgen_summary(120000.0, 400, 3)).unwrap();
        assert!(!judge_serve(&errored, 100000.0, None).unwrap().pass, "errors must fail");

        let wrong_schema = parse_json(r#"{"schema":"nope/1"}"#).unwrap();
        assert!(judge_serve(&wrong_schema, 1.0, None).is_err());
    }

    fn optimize_summary(eps: f64, evaluated: u64) -> String {
        format!(
            "{{\"schema\":\"hmcs-optimize-bench/1\",\"space_size\":1120,\"iterations\":5,\
             \"evaluated\":{evaluated},\"wall_s\":0.5,\"evals_per_s\":{eps},\"workers\":2}}"
        )
    }

    fn pruned_summary(eps: f64, speedup: f64, identical: bool) -> String {
        format!(
            "{{\"schema\":\"hmcs-optimize-bench/1\",\"space_size\":21280,\"iterations\":5,\
             \"evaluated\":9000,\"wall_s\":0.5,\"evals_per_s\":{eps},\"workers\":2,\
             \"speedup\":{speedup},\"frontier_identical\":{identical}}}"
        )
    }

    #[test]
    fn optimize_gate_enforces_throughput_floor() {
        let doc = parse_json(&optimize_summary(400000.0, 5600)).unwrap();
        let ok = judge_optimize(&doc, 100000.0, None).unwrap();
        assert!(ok.pass);
        assert_eq!(ok.evaluated, 5600);

        let slow = judge_optimize(&doc, 500000.0, None).unwrap();
        assert!(!slow.pass, "throughput below the floor must fail");

        let empty = parse_json(&optimize_summary(400000.0, 0)).unwrap();
        assert!(!judge_optimize(&empty, 1.0, None).unwrap().pass, "zero evaluations must fail");

        let wrong_schema = parse_json(r#"{"schema":"hmcs-loadgen/1"}"#).unwrap();
        assert!(judge_optimize(&wrong_schema, 1.0, None).is_err());
    }

    #[test]
    fn optimize_gate_enforces_pruning_speedup_and_bit_identity() {
        let doc = parse_json(&pruned_summary(400000.0, 4.2, true)).unwrap();
        let ok = judge_optimize(&doc, 100000.0, Some(3.0)).unwrap();
        assert!(ok.pass);
        assert_eq!(ok.speedup, Some(4.2));

        let slow = judge_optimize(&doc, 100000.0, Some(5.0)).unwrap();
        assert!(!slow.pass, "speedup below the floor must fail");

        let drifted = parse_json(&pruned_summary(400000.0, 4.2, false)).unwrap();
        assert!(
            judge_optimize(&drifted, 100000.0, Some(3.0)).is_err(),
            "a summary without frontier bit-identity must be rejected outright"
        );

        let legacy = parse_json(&optimize_summary(400000.0, 5600)).unwrap();
        assert!(
            judge_optimize(&legacy, 100000.0, Some(3.0)).is_err(),
            "--min-speedup against a summary with no speedup field must be rejected"
        );
        assert!(
            judge_optimize(&legacy, 100000.0, None).unwrap().pass,
            "without --min-speedup the legacy summary still judges on evals/s alone"
        );
    }

    #[test]
    fn optimize_report_embeds_the_summary_verbatim() {
        let raw = pruned_summary(400000.0, 4.2, true);
        let verdict = judge_optimize(&parse_json(&raw).unwrap(), 100000.0, Some(3.0)).unwrap();
        let report = optimize_report_json(&verdict, &raw, &[("host".into(), "ci".into())]);
        let doc = parse_json(&report).expect("report is valid JSON");
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some("hmcs-optimize-gate/1"));
        assert_eq!(doc.get("gate").and_then(|g| g.get("pass")), Some(&JsonValue::Bool(true)));
        assert_eq!(
            doc.get("optimize").and_then(|o| o.get("schema")).and_then(JsonValue::as_str),
            Some("hmcs-optimize-bench/1"),
            "the optimize summary rides along inside the report"
        );
        assert_eq!(
            doc.get("gate").and_then(|g| g.get("min_evals_per_s")).and_then(JsonValue::as_num),
            Some(100000.0)
        );
        assert_eq!(
            doc.get("gate").and_then(|g| g.get("speedup")).and_then(JsonValue::as_num),
            Some(4.2)
        );
        assert_eq!(
            doc.get("gate").and_then(|g| g.get("min_speedup")).and_then(JsonValue::as_num),
            Some(3.0)
        );
    }

    #[test]
    fn kernel_gate_reads_rows_and_its_own_report() {
        let rows = concat!(
            "{\"id\": \"kernel_grid/scalar_per_point\", \"min_s\": 0.009, \"mean_s\": 0.010, \"max_s\": 0.011}\n",
            "{\"id\": \"kernel_grid/batched\", \"min_s\": 0.0009, \"mean_s\": 0.001, \"max_s\": 0.0011}\n",
        );
        let (scalar, batched) = kernel_means(rows).unwrap();
        let ok = judge_kernel(scalar, batched, 5.0).unwrap();
        assert!(ok.pass);
        assert!((ok.speedup - 10.0).abs() < 1e-9);
        let slow = judge_kernel(scalar, batched, 20.0).unwrap();
        assert!(!slow.pass, "speedup below the floor must fail");

        // The emitted report round-trips as an input: same means, so a
        // re-judge at a different floor works off the committed file.
        let report = kernel_report_json(&ok, &[("host".into(), "ci".into())]);
        let doc = parse_json(&report).expect("report is valid JSON");
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some("hmcs-kernel-bench/1"));
        assert_eq!(doc.get("gate").and_then(|g| g.get("pass")), Some(&JsonValue::Bool(true)));
        let (rs, rb) = kernel_means(&report).unwrap();
        assert_eq!(rs, scalar);
        assert_eq!(rb, batched);

        assert!(
            kernel_means("{\"id\": \"other\", \"min_s\": 1, \"mean_s\": 1, \"max_s\": 1}").is_err()
        );
        assert!(judge_kernel(0.0, 1.0, 5.0).is_err());
    }

    #[test]
    fn serve_report_embeds_the_summary_verbatim() {
        let raw = loadgen_summary(120000.0, 400, 0);
        let verdict = judge_serve(&parse_json(&raw).unwrap(), 100000.0, Some(1000.0)).unwrap();
        let report = serve_report_json(&verdict, &raw, &[("host".into(), "ci".into())]);
        let doc = parse_json(&report).expect("report is valid JSON");
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some("hmcs-serve-bench/1"));
        assert_eq!(doc.get("gate").and_then(|g| g.get("pass")), Some(&JsonValue::Bool(true)));
        assert_eq!(
            doc.get("gate").and_then(|g| g.get("max_p99_us")).and_then(JsonValue::as_num),
            Some(1000.0)
        );
        assert_eq!(
            doc.get("loadgen").and_then(|l| l.get("schema")).and_then(JsonValue::as_str),
            Some("hmcs-loadgen/1"),
            "the loadgen document rides along inside the report"
        );
        assert_eq!(
            doc.get("meta").and_then(|m| m.get("host")).and_then(JsonValue::as_str),
            Some("ci")
        );
    }

    fn topology_summary(
        max_nodes: u64,
        roundtrip_failures: u64,
        agreement_failures: u64,
    ) -> String {
        format!(
            "{{\"schema\":\"hmcs-topology-bench/1\",\"cases\":2,\"total_nodes\":10256,\
             \"max_nodes\":{max_nodes},\"shards\":24,\"messages\":200000,\
             \"roundtrip_failures\":{roundtrip_failures},\
             \"agreement_failures\":{agreement_failures},\"identify_wall_s\":0.02,\
             \"identify_nodes_per_s\":500000.0,\"sim_wall_s\":1.2,\"workers\":4}}\n"
        )
    }

    #[test]
    fn topology_gate_enforces_scale_and_failure_counts() {
        let ok =
            judge_topology(&parse_json(&topology_summary(10000, 0, 0)).unwrap(), 10000).unwrap();
        assert!(ok.pass);
        let small =
            judge_topology(&parse_json(&topology_summary(9999, 0, 0)).unwrap(), 10000).unwrap();
        assert!(!small.pass, "largest case under the node floor must fail");
        let missed =
            judge_topology(&parse_json(&topology_summary(10000, 1, 0)).unwrap(), 10000).unwrap();
        assert!(!missed.pass, "a round-trip failure must fail the gate");
        let drifted =
            judge_topology(&parse_json(&topology_summary(10000, 0, 1)).unwrap(), 10000).unwrap();
        assert!(!drifted.pass, "an agreement failure must fail the gate");
        let wrong_schema = parse_json("{\"schema\": \"other/1\"}").unwrap();
        assert!(judge_topology(&wrong_schema, 1).is_err());
    }

    #[test]
    fn topology_report_embeds_the_summary_verbatim() {
        let raw = topology_summary(10000, 0, 0);
        let verdict = judge_topology(&parse_json(&raw).unwrap(), 10000).unwrap();
        let report = topology_report_json(&verdict, &raw, &[("host".into(), "ci".into())]);
        let doc = parse_json(&report).expect("report is valid JSON");
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some("hmcs-topology-gate/1"));
        assert_eq!(doc.get("gate").and_then(|g| g.get("pass")), Some(&JsonValue::Bool(true)));
        assert_eq!(
            doc.get("topology").and_then(|t| t.get("schema")).and_then(JsonValue::as_str),
            Some("hmcs-topology-bench/1"),
            "the topology summary rides along inside the report"
        );
    }
}
