//! Assembles a machine-readable benchmark report and gates CI on it.
//!
//! Input is the JSON-lines file the vendored criterion harness appends
//! to when `HMCS_BENCH_JSON` is set (one `{"id", "min_s", "mean_s",
//! "max_s"}` object per line). The tool:
//!
//! 1. parses every row,
//! 2. computes the observability overhead from the `batch_sweep`
//!    bench's `instrumentation/metrics_on` vs
//!    `instrumentation/metrics_off` rows and **fails** (exit 1) when it
//!    exceeds the budget (`--max-overhead-pct`, default 10),
//! 3. optionally folds in the per-figure `wall_clock_us` recorded by
//!    `reproduce` manifests (`--manifests DIR`),
//! 4. writes everything as one JSON document (`--out`, default
//!    `BENCH_PR4.json`).
//!
//! The report is written before the gate verdict so a failing run still
//! uploads a complete artefact.

use hmcs_bench::manifest::{parse_json, JsonValue};
use std::process::ExitCode;

/// Default overhead budget (%). The bench itself documents a ≤2%
/// target on quiet machines; shared CI runners need headroom for
/// scheduler noise, so the gate only catches real regressions.
const DEFAULT_MAX_OVERHEAD_PCT: f64 = 10.0;

/// One parsed benchmark row.
#[derive(Debug, Clone, PartialEq)]
struct BenchRow {
    id: String,
    min_s: f64,
    mean_s: f64,
    max_s: f64,
}

/// The instrumentation-overhead verdict.
#[derive(Debug, Clone, PartialEq)]
struct GateVerdict {
    metrics_on_mean_s: f64,
    metrics_off_mean_s: f64,
    overhead_pct: f64,
    max_overhead_pct: f64,
    pass: bool,
}

fn parse_rows(body: &str) -> Result<Vec<BenchRow>, String> {
    let mut rows = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("row {}: {e}", i + 1))?;
        let field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(JsonValue::as_num)
                .ok_or_else(|| format!("row {}: missing numeric \"{k}\"", i + 1))
        };
        rows.push(BenchRow {
            id: v
                .get("id")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("row {}: missing \"id\"", i + 1))?
                .to_string(),
            min_s: field("min_s")?,
            mean_s: field("mean_s")?,
            max_s: field("max_s")?,
        });
    }
    Ok(rows)
}

/// Judges the instrumentation rows. The on/off pair measures the same
/// 72-point grid, so their ratio isolates the metrics layer's cost.
fn judge(rows: &[BenchRow], max_overhead_pct: f64) -> Result<GateVerdict, String> {
    let mean_of = |id: &str| -> Result<f64, String> {
        rows.iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_s)
            .ok_or_else(|| format!("no \"{id}\" row — did the batch_sweep bench run?"))
    };
    let on = mean_of("instrumentation/metrics_on")?;
    let off = mean_of("instrumentation/metrics_off")?;
    if off <= 0.0 {
        return Err("metrics_off mean is not positive".to_string());
    }
    let overhead_pct = (on / off - 1.0) * 100.0;
    Ok(GateVerdict {
        metrics_on_mean_s: on,
        metrics_off_mean_s: off,
        overhead_pct,
        max_overhead_pct,
        pass: overhead_pct <= max_overhead_pct,
    })
}

/// Pulls `(artefact, figure wall_clock_us)` out of every
/// `manifest_*.json` in `dir` that carries a figure section.
fn figure_wall_clocks(dir: &std::path::Path) -> Vec<(String, f64)> {
    let mut clocks = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return clocks;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(artefact) = name.strip_prefix("manifest_").and_then(|n| n.strip_suffix(".json"))
        else {
            continue;
        };
        let Ok(body) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let Ok(doc) = parse_json(&body) else {
            continue;
        };
        if let Some(us) =
            doc.get("figure").and_then(|f| f.get("wall_clock_us")).and_then(JsonValue::as_num)
        {
            clocks.push((artefact.to_string(), us));
        }
    }
    clocks.sort_by(|a, b| a.0.cmp(&b.0));
    clocks
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn report_json(
    rows: &[BenchRow],
    verdict: &GateVerdict,
    clocks: &[(String, f64)],
    meta: &[(String, String)],
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"hmcs-bench-gate/1\",");
    let meta_items: Vec<String> =
        meta.iter().map(|(k, v)| format!("{}: {}", json_escape(k), json_escape(v))).collect();
    let _ = writeln!(out, "  \"meta\": {{{}}},", meta_items.join(", "));
    let _ = writeln!(out, "  \"gate\": {{");
    let _ = writeln!(out, "    \"metrics_on_mean_s\": {},", verdict.metrics_on_mean_s);
    let _ = writeln!(out, "    \"metrics_off_mean_s\": {},", verdict.metrics_off_mean_s);
    let _ = writeln!(out, "    \"overhead_pct\": {},", verdict.overhead_pct);
    let _ = writeln!(out, "    \"max_overhead_pct\": {},", verdict.max_overhead_pct);
    let _ = writeln!(out, "    \"pass\": {}", verdict.pass);
    let _ = writeln!(out, "  }},");
    let clock_items: Vec<String> =
        clocks.iter().map(|(k, v)| format!("{}: {v}", json_escape(k))).collect();
    let _ = writeln!(out, "  \"figure_wall_clock_us\": {{{}}},", clock_items.join(", "));
    let _ = writeln!(out, "  \"benches\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"id\": {}, \"min_s\": {}, \"mean_s\": {}, \"max_s\": {}}}{comma}",
            json_escape(&r.id),
            r.min_s,
            r.mean_s,
            r.max_s
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn usage() -> ! {
    eprintln!(
        "usage: benchgate ROWS.jsonl [--manifests DIR] [--out PATH] \
         [--max-overhead-pct X] [--meta key=value]..."
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rows_path: Option<String> = None;
    let mut manifests: Option<String> = None;
    let mut out_path = "BENCH_PR4.json".to_string();
    let mut max_overhead_pct = DEFAULT_MAX_OVERHEAD_PCT;
    let mut meta: Vec<(String, String)> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--manifests" => manifests = Some(it.next().unwrap_or_else(|| usage())),
            "--out" => out_path = it.next().unwrap_or_else(|| usage()),
            "--max-overhead-pct" => {
                max_overhead_pct =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--meta" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                meta.push((k.to_string(), v.to_string()));
            }
            _ if rows_path.is_none() && !arg.starts_with('-') => rows_path = Some(arg),
            _ => usage(),
        }
    }
    let Some(rows_path) = rows_path else { usage() };

    let body = match std::fs::read_to_string(&rows_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {rows_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let rows = match parse_rows(&body) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let verdict = match judge(&rows, max_overhead_pct) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let clocks = manifests
        .as_deref()
        .map(|d| figure_wall_clocks(std::path::Path::new(d)))
        .unwrap_or_default();

    let report = report_json(&rows, &verdict, &clocks, &meta);
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "benchgate: {} row(s), instrumentation overhead {:.2}% (budget {:.2}%) — {}",
        rows.len(),
        verdict.overhead_pct,
        verdict.max_overhead_pct,
        if verdict.pass { "PASS" } else { "FAIL" }
    );
    println!("report written to {out_path}");
    if verdict.pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<BenchRow> {
        parse_rows(concat!(
            "{\"id\": \"instrumentation/metrics_on\", \"min_s\": 0.010, \"mean_s\": 0.0104, \"max_s\": 0.011}\n",
            "{\"id\": \"instrumentation/metrics_off\", \"min_s\": 0.010, \"mean_s\": 0.0100, \"max_s\": 0.011}\n",
            "{\"id\": \"figure_grid/workers/1\", \"min_s\": 0.02, \"mean_s\": 0.021, \"max_s\": 0.022}\n",
        ))
        .unwrap()
    }

    #[test]
    fn rows_parse_with_ids_and_times() {
        let rows = rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].id, "figure_grid/workers/1");
        assert_eq!(rows[0].mean_s, 0.0104);
    }

    #[test]
    fn gate_passes_inside_budget_and_fails_outside() {
        let rows = rows();
        // 4% overhead: passes a 10% budget, fails a 2% budget.
        let ok = judge(&rows, 10.0).unwrap();
        assert!(ok.pass);
        assert!((ok.overhead_pct - 4.0).abs() < 1e-9);
        let bad = judge(&rows, 2.0).unwrap();
        assert!(!bad.pass);
    }

    #[test]
    fn gate_requires_both_instrumentation_rows() {
        let only_on = parse_rows(
            "{\"id\": \"instrumentation/metrics_on\", \"min_s\": 1, \"mean_s\": 1, \"max_s\": 1}",
        )
        .unwrap();
        assert!(judge(&only_on, 10.0).is_err());
    }

    #[test]
    fn report_is_valid_json_carrying_the_verdict() {
        let rows = rows();
        let verdict = judge(&rows, 10.0).unwrap();
        let clocks = vec![("fig4".to_string(), 28583.8)];
        let meta = vec![("budget".to_string(), "ci".to_string())];
        let doc = parse_json(&report_json(&rows, &verdict, &clocks, &meta)).unwrap();
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some("hmcs-bench-gate/1"));
        assert_eq!(
            doc.get("meta").and_then(|m| m.get("budget")).and_then(JsonValue::as_str),
            Some("ci")
        );
        assert_eq!(doc.get("gate").and_then(|g| g.get("pass")), Some(&JsonValue::Bool(true)));
        assert_eq!(
            doc.get("figure_wall_clock_us").and_then(|c| c.get("fig4")).and_then(JsonValue::as_num),
            Some(28583.8)
        );
        match doc.get("benches") {
            Some(JsonValue::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("benches should be an array, got {other:?}"),
        }
    }
}
