//! `hmcs` — evaluate one multi-cluster system from the command line.
//!
//! ```text
//! hmcs --clusters 8 --nodes 32 --bytes 1024 --lambda-ms 0.25 \
//!      --scenario case1 --arch nonblocking --simulate
//! ```
//!
//! Prints the analytical report and, with `--simulate`, the flow-level
//! simulation alongside it.

use hmcs_bench::differential;
use hmcs_core::config::SystemConfig;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::qna;
use hmcs_core::scenario::Scenario;
use hmcs_sim::config::SimConfig;
use hmcs_sim::flow::FlowSimulator;
use hmcs_sim::replication::SimBudget;
use hmcs_topology::transmission::Architecture;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    clusters: usize,
    nodes: usize,
    bytes: u64,
    lambda_per_ms: f64,
    scenario: Scenario,
    arch: Architecture,
    simulate: bool,
    messages: u64,
    seed: u64,
    qna: bool,
    verify: bool,
    metrics: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            clusters: 16,
            nodes: 16,
            bytes: 1024,
            lambda_per_ms: 0.25,
            scenario: Scenario::Case1,
            arch: Architecture::NonBlocking,
            simulate: false,
            messages: 10_000,
            seed: 2005,
            qna: false,
            verify: false,
            metrics: std::env::var("HMCS_METRICS")
                .map(|v| matches!(v.trim(), "1" | "true" | "yes" | "on"))
                .unwrap_or(false),
        }
    }
}

const HELP: &str = "hmcs — analytical model for heterogeneous multi-cluster systems\n\
Options:\n\
  --clusters N      number of clusters [16]\n\
  --nodes N         processors per cluster [16]\n\
  --bytes N         message size in bytes [1024]\n\
  --lambda-ms X     per-processor rate in msg/ms [0.25]\n\
  --scenario S      case1 | case2 [case1]\n\
  --arch A          nonblocking | blocking [nonblocking]\n\
  --simulate        also run the flow-level simulator\n\
  --messages N      simulated messages [10000]\n\
  --seed N          simulation seed [2005]\n\
  --qna             also print the QNA-refined latency\n\
  --verify          differential check: replicated simulation vs QNA latency,\n\
                    non-zero exit on disagreement (HMCS_SIM_BUDGET=ci shrinks it)\n\
  --metrics         print solver/pool/DES metrics at the end (HMCS_METRICS=1)";

fn parse() -> Result<Args, String> {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--clusters" => a.clusters = val("--clusters")?.parse().map_err(|e| format!("{e}"))?,
            "--nodes" => a.nodes = val("--nodes")?.parse().map_err(|e| format!("{e}"))?,
            "--bytes" => a.bytes = val("--bytes")?.parse().map_err(|e| format!("{e}"))?,
            "--lambda-ms" => {
                a.lambda_per_ms = val("--lambda-ms")?.parse().map_err(|e| format!("{e}"))?
            }
            "--scenario" => {
                a.scenario = match val("--scenario")?.as_str() {
                    "case1" => Scenario::Case1,
                    "case2" => Scenario::Case2,
                    other => return Err(format!("unknown scenario {other}")),
                }
            }
            "--arch" => {
                a.arch = match val("--arch")?.as_str() {
                    "nonblocking" => Architecture::NonBlocking,
                    "blocking" => Architecture::Blocking,
                    other => return Err(format!("unknown architecture {other}")),
                }
            }
            "--simulate" => a.simulate = true,
            "--qna" => a.qna = true,
            "--verify" => a.verify = true,
            "--metrics" => a.metrics = true,
            "--messages" => a.messages = val("--messages")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => a.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(a)
}

fn run(a: &Args) -> Result<bool, String> {
    let cfg =
        SystemConfig::new(a.clusters, a.nodes, a.bytes, a.lambda_per_ms / 1e3, a.scenario, a.arch)
            .map_err(|e| e.to_string())?;
    let report = AnalyticalModel::evaluate(&cfg).map_err(|e| e.to_string())?;

    println!(
        "system   : {} x {} nodes, {} ({}), M = {} B, lambda = {} msg/ms",
        a.clusters,
        a.nodes,
        a.scenario.label(),
        a.arch.name(),
        a.bytes,
        a.lambda_per_ms
    );
    let st = report.service_times;
    println!(
        "service  : ICN1 {:.2} µs | ECN1 {:.2} µs | ICN2 {:.2} µs",
        st.icn1_us, st.ecn1_us, st.icn2_us
    );
    let eq = report.equilibrium;
    println!(
        "equilib. : lambda_eff {:.4e}/µs ({:.1}% retained), waiting {:.1}/{}",
        eq.lambda_eff,
        eq.retained_fraction * 100.0,
        eq.total_waiting,
        cfg.total_nodes()
    );
    println!(
        "util     : ICN1 {:.3} | ECN1 {:.3} | ICN2 {:.3}",
        eq.icn1.utilization, eq.ecn1.utilization, eq.icn2.utilization
    );
    println!(
        "latency  : {:.3} ms mean (P_ext {:.3}; internal {:.3} ms, external {:.3} ms)",
        report.latency.mean_message_latency_ms(),
        report.latency.external_probability,
        report.latency.internal_latency_us / 1e3,
        report.latency.external_latency_us / 1e3
    );
    if a.qna {
        let q = qna::evaluate(&cfg).map_err(|e| e.to_string())?;
        println!(
            "qna      : {:.3} ms mean (arrival SCVs: ECN1 {:.3}, ICN2 {:.3})",
            q.latency.mean_message_latency_us / 1e3,
            q.scv.ecn1_ca2,
            q.scv.icn2_ca2
        );
    }
    if a.simulate {
        let sim_cfg = SimConfig::new(cfg)
            .with_messages(a.messages)
            .with_warmup(a.messages / 5)
            .with_seed(a.seed);
        let sim = FlowSimulator::run(&sim_cfg).map_err(|e| e.to_string())?;
        let err = (report.latency.mean_message_latency_us - sim.mean_latency_us).abs()
            / sim.mean_latency_us;
        println!(
            "simulated: {:.3} ms mean ± {:.3} (95% CI) over {} messages — model off by {:.1}%",
            sim.mean_latency_ms(),
            sim.latency_ci95_us() / 1e3,
            sim.messages,
            err * 100.0
        );
        if let Some(q) = sim.quantiles {
            println!(
                "tails    : p50 {:.3} ms | p95 {:.3} ms | p99 {:.3} ms",
                q.p50_us / 1e3,
                q.p95_us / 1e3,
                q.p99_us / 1e3
            );
        }
    }
    let mut agrees = true;
    if a.verify {
        // Generous band: the caller may have placed λ anywhere up to
        // the stability boundary, where model error is largest.
        let budget = SimBudget::from_env();
        let outcome = differential::verify_config(&cfg, 0.15, budget).map_err(|e| e.to_string())?;
        println!(
            "verify   : analysis {:.3} ms vs sim {:.3} ms ± {:.3} (allowed gap {:.3}) — {}",
            outcome.analysis_ms,
            outcome.sim_ms,
            outcome.ci95_ms,
            outcome.allowed_ms,
            if outcome.agrees { "AGREE" } else { "DISAGREE" }
        );
        agrees = outcome.agrees;
    }
    if a.metrics {
        println!("{}", hmcs_core::metrics::global().snapshot().render());
    }
    Ok(agrees)
}

fn main() -> ExitCode {
    match parse() {
        Ok(args) => match run(&args) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            ExitCode::FAILURE
        }
    }
}
