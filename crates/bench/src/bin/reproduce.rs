//! `reproduce` — regenerates every table and figure of the paper,
//! and checks generated artefacts against the committed goldens.
//!
//! ```text
//! reproduce <artefact>... [options]      regenerate artefacts
//! reproduce check DIR [--golden GDIR]    diff DIR against goldens and
//!                                        evaluate the claims registry
//! reproduce fuzz [--cases N] [--seed N]  differential model-vs-sim fuzz
//!
//! Artefacts:
//!   table1 table2 fig4 fig5 fig6 fig7 figs claims optimize sensitivity
//!   ablation-accounting ablation-hops ablation-service packet coc bounds all
//!
//! Options:
//!   --messages N      measured messages per simulation run   [10000]
//!   --warmup N        warm-up messages discarded             [2000]
//!   --seed N          master RNG seed                        [2005]
//!   --lambda-literal  use Table 2's literal 0.25 msg/s
//!                     (default: 0.25 msg/ms, the figure-scale reading)
//!   --no-sim          analysis only (skip simulation columns)
//!   --csv DIR         also write CSV files into DIR, each with a
//!                     sibling manifest_<artefact>.json recording run
//!                     provenance (seed, λ-unit mode, solver histograms)
//!   --metrics         print the process-global metrics snapshot at the
//!                     end (also: HMCS_METRICS=1)
//!
//! `HMCS_SIM_BUDGET=ci` shrinks the default simulation budget (messages,
//! warm-up, fuzz replications) to the reduced CI preset; explicit
//! `--messages`/`--warmup` flags still win.
//! ```

use hmcs_bench::experiments::{
    self, FigureData, FigureSpec, RunOptions, ALL_FIGURES, FIG4, FIG5, FIG6, FIG7,
};
use hmcs_bench::manifest;
use hmcs_bench::report::{
    eval_stats_line, ms, opt_ms, ratio, render_table, write_atomic, write_csv,
};
use hmcs_bench::topology::{self, TopologyOptions};
use hmcs_bench::{claims, differential, golden, identfuzz};
use hmcs_core::batch::BatchOptions;
use hmcs_core::json::json_num;
use hmcs_core::optimize::{self, Constraints, DesignSpace, OptimizeSpec, Workload};
use hmcs_core::scenario::{Scenario, PAPER_CLUSTER_COUNTS, PAPER_LAMBDA_LITERAL_PER_US};
use hmcs_core::sensitivity;
use hmcs_core::SystemConfig;
use hmcs_sim::replication::SimBudget;
use hmcs_topology::transmission::Architecture;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Cli {
    artefacts: Vec<String>,
    opts: RunOptions,
    budget: SimBudget,
    csv_dir: Option<PathBuf>,
    print_metrics: bool,
    slo_ms: Option<f64>,
    budget_usd: Option<f64>,
    opt_bench: Option<PathBuf>,
    topo_bench: Option<PathBuf>,
}

enum Command {
    /// Regenerate artefacts (the original mode).
    Emit(Cli),
    /// Diff a candidate directory against the goldens + claims registry.
    Check { candidate: PathBuf, golden: PathBuf },
    /// Differential model-vs-simulation fuzzing.
    Fuzz(differential::FuzzOptions),
    /// Seeded round-trip fuzzing of the cluster-identification pass.
    IdentFuzz(identfuzz::IdentFuzzOptions),
}

fn metrics_env_requested() -> bool {
    std::env::var("HMCS_METRICS")
        .map(|v| matches!(v.trim(), "1" | "true" | "yes" | "on"))
        .unwrap_or(false)
}

fn parse_args() -> Result<Command, String> {
    let mut artefacts = Vec::new();
    let mut opts = RunOptions::default();
    // The env-selected budget seeds the defaults; explicit flags win.
    let budget = SimBudget::from_env();
    let (messages, warmup) = budget.single_run();
    opts.messages = messages;
    opts.warmup = warmup;
    let mut csv_dir = None;
    let mut golden_dir: Option<PathBuf> = None;
    let mut fuzz_cases: Option<u32> = None;
    let mut slo_ms: Option<f64> = None;
    let mut budget_usd: Option<f64> = None;
    let mut opt_bench: Option<PathBuf> = None;
    let mut topo_bench: Option<PathBuf> = None;
    let mut print_metrics = metrics_env_requested();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--messages" => {
                opts.messages = args
                    .next()
                    .ok_or("--messages needs a value")?
                    .parse()
                    .map_err(|e| format!("--messages: {e}"))?;
            }
            "--warmup" => {
                opts.warmup = args
                    .next()
                    .ok_or("--warmup needs a value")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--lambda-literal" => opts.lambda_per_us = PAPER_LAMBDA_LITERAL_PER_US,
            "--no-sim" => opts.with_simulation = false,
            "--csv" => {
                csv_dir = Some(PathBuf::from(args.next().ok_or("--csv needs a directory")?));
            }
            "--golden" => {
                golden_dir = Some(PathBuf::from(args.next().ok_or("--golden needs a directory")?));
            }
            "--cases" => {
                fuzz_cases = Some(
                    args.next()
                        .ok_or("--cases needs a value")?
                        .parse()
                        .map_err(|e| format!("--cases: {e}"))?,
                );
            }
            "--slo-ms" => {
                slo_ms = Some(
                    args.next()
                        .ok_or("--slo-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("--slo-ms: {e}"))?,
                );
            }
            "--budget-usd" => {
                budget_usd = Some(
                    args.next()
                        .ok_or("--budget-usd needs a value")?
                        .parse()
                        .map_err(|e| format!("--budget-usd: {e}"))?,
                );
            }
            "--opt-bench" => {
                opt_bench = Some(PathBuf::from(args.next().ok_or("--opt-bench needs a path")?));
            }
            "--topo-bench" => {
                topo_bench = Some(PathBuf::from(args.next().ok_or("--topo-bench needs a path")?));
            }
            "--metrics" => print_metrics = true,
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            other => artefacts.push(other.to_string()),
        }
    }
    match artefacts.first().map(String::as_str) {
        Some("check") => {
            let candidate = match artefacts.as_slice() {
                [_, dir] => PathBuf::from(dir),
                _ => return Err("usage: reproduce check DIR [--golden GDIR]".to_string()),
            };
            let golden = golden_dir.unwrap_or_else(|| PathBuf::from("results"));
            return Ok(Command::Check { candidate, golden });
        }
        Some("fuzz") => {
            if artefacts.len() > 1 {
                return Err("usage: reproduce fuzz [--cases N] [--seed N]".to_string());
            }
            let defaults = differential::FuzzOptions::default();
            return Ok(Command::Fuzz(differential::FuzzOptions {
                cases: fuzz_cases.unwrap_or(defaults.cases),
                seed: opts.seed,
                budget,
            }));
        }
        Some("identfuzz") => {
            if artefacts.len() > 1 {
                return Err("usage: reproduce identfuzz [--cases N] [--seed N]".to_string());
            }
            let defaults = identfuzz::IdentFuzzOptions::default();
            return Ok(Command::IdentFuzz(identfuzz::IdentFuzzOptions {
                cases: fuzz_cases.unwrap_or(defaults.cases),
                seed: opts.seed,
            }));
        }
        _ => {}
    }
    if golden_dir.is_some() {
        return Err("--golden only applies to `reproduce check`".to_string());
    }
    if fuzz_cases.is_some() {
        return Err("--cases only applies to `reproduce fuzz`/`identfuzz`".to_string());
    }
    if artefacts.is_empty() {
        return Err("no artefact given; try --help".to_string());
    }
    Ok(Command::Emit(Cli {
        artefacts,
        opts,
        budget,
        csv_dir,
        print_metrics,
        slo_ms,
        budget_usd,
        opt_bench,
        topo_bench,
    }))
}

const HELP: &str = "reproduce — regenerate the ICPPW'05 paper's tables and figures\n\
  artefacts: table1 table2 fig4 fig5 fig6 fig7 figs claims optimize sensitivity\n\
             ablation-accounting ablation-hops ablation-service packet coc bounds\n\
             topology all\n\
  checking:  check DIR [--golden GDIR]   diff DIR against the goldens (default results/)\n\
             fuzz [--cases N] [--seed N] differential model-vs-sim fuzzing\n\
             identfuzz [--cases N] [--seed N] latency-matrix identify round-trip fuzzing\n\
  options:   --messages N --warmup N --seed N --lambda-literal --no-sim --csv DIR\n\
             --metrics (or HMCS_METRICS=1); HMCS_SIM_BUDGET=ci shrinks sim budgets\n\
  optimize:  --slo-ms X (default 30) --budget-usd Y (default 60000)\n\
             --opt-bench PATH (write an hmcs-optimize-bench/1 throughput summary)\n\
  topology:  --topo-bench PATH (write an hmcs-topology-bench/1 pipeline summary)";

/// Writes `manifest_<artefact>.json` beside the CSVs (no-op without
/// `--csv`): run provenance, options, λ-unit mode and the metrics
/// snapshot, plus solver histograms for figure artefacts.
fn emit_manifest(cli: &Cli, artefact: &str, figure: Option<&FigureData>) -> Result<(), String> {
    if let Some(dir) = &cli.csv_dir {
        let workers = BatchOptions::default().resolved_workers();
        manifest::write_manifest(dir, artefact, &cli.opts, workers, figure)
            .map_err(|e| format!("manifest_{artefact}.json: {e}"))?;
    }
    Ok(())
}

fn figure_rows(data: &FigureData) -> Vec<Vec<String>> {
    data.rows
        .iter()
        .map(|r| {
            vec![
                r.clusters.to_string(),
                ms(r.analysis_512_ms),
                opt_ms(r.sim_512_ms),
                ms(r.analysis_1024_ms),
                opt_ms(r.sim_1024_ms),
                r.worst_relative_error()
                    .map(|e| format!("{:.1}%", e * 100.0))
                    .unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect()
}

fn emit_figure(spec: FigureSpec, cli: &Cli) -> Result<(), String> {
    let data = experiments::run_figure(spec, &cli.opts).map_err(|e| e.to_string())?;
    let headers = [
        "clusters",
        "analysis M=512 (ms)",
        "sim M=512 (ms)",
        "analysis M=1024 (ms)",
        "sim M=1024 (ms)",
        "worst err",
    ];
    let rows = figure_rows(&data);
    println!("{}", render_table(&format!("{} — {}", spec.id, spec.caption), &headers, &rows));
    println!("{}\n", eval_stats_line(&data.analysis_stats));
    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join(format!("{}.csv", spec.id)), &headers, &rows)
            .map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, spec.id, Some(&data))?;
    Ok(())
}

fn emit_tables(cli: &Cli) -> Result<(), String> {
    let t1 = experiments::table1();
    let rows: Vec<Vec<String>> = t1
        .iter()
        .map(|r| vec![r.case.to_string(), r.icn1.to_string(), r.ecn1_icn2.to_string()])
        .collect();
    let headers = ["Cases", "ICN1", "ECN1 and ICN2"];
    println!(
        "{}",
        render_table("Table 1 — Two Scenarios of Communication Networks", &headers, &rows)
    );
    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join("table1.csv"), &headers, &rows).map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, "table1", None)?;
    Ok(())
}

fn emit_table2(cli: &Cli) -> Result<(), String> {
    let t2 = experiments::table2();
    let rows: Vec<Vec<String>> = t2
        .iter()
        .map(|r| vec![r.item.to_string(), r.quantity.clone(), r.unit.to_string()])
        .collect();
    let headers = ["Items", "Quantity", "Unit"];
    println!("{}", render_table("Table 2 — Model Parameters", &headers, &rows));
    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join("table2.csv"), &headers, &rows).map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, "table2", None)?;
    Ok(())
}

fn emit_claims(cli: &Cli) -> Result<(), String> {
    let rows_data = experiments::run_claims(&cli.opts).map_err(|e| e.to_string())?;
    let headers = ["scenario", "clusters", "non-blocking (ms)", "blocking (ms)", "ratio"];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.scenario.label().to_string(),
                r.clusters.to_string(),
                ms(r.nonblocking_ms),
                ms(r.blocking_ms),
                ratio(r.ratio()),
            ]
        })
        .collect();
    let min = rows_data.iter().map(|r| r.ratio()).fold(f64::INFINITY, f64::min);
    let max = rows_data.iter().map(|r| r.ratio()).fold(0.0f64, f64::max);
    println!(
        "{}",
        render_table(
            &format!(
                "Claim (§6): blocking/non-blocking latency ratio — measured {min:.2}x to \
                 {max:.2}x (paper: 1.4x to 3.1x)"
            ),
            &headers,
            &rows
        )
    );
    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join("claims.csv"), &headers, &rows).map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, "claims", None)?;
    Ok(())
}

fn emit_accounting(cli: &Cli) -> Result<(), String> {
    let data = experiments::run_ablation_accounting(&cli.opts).map_err(|e| e.to_string())?;
    let headers =
        ["clusters", "literal (ms)", "single (ms)", "sim (ms)", "literal err", "single err"];
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.clusters.to_string(),
                ms(r.literal_ms),
                ms(r.single_ms),
                ms(r.sim_ms),
                format!("{:.1}%", r.literal_error() * 100.0),
                format!("{:.1}%", r.single_error() * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Ablation: eq. 6 ECN1 accounting (paper-literal 2*L_E1 vs single queue)",
            &headers,
            &rows
        )
    );
    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join("ablation_accounting.csv"), &headers, &rows)
            .map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, "ablation-accounting", None)?;
    Ok(())
}

fn emit_hops(cli: &Cli) -> Result<(), String> {
    let data = experiments::run_ablation_hops(&cli.opts).map_err(|e| e.to_string())?;
    let headers = [
        "clusters",
        "analysis (k+1)/3 (ms)",
        "analysis exact (ms)",
        "sim (k+1)/3 (ms)",
        "sim exact (ms)",
    ];
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.clusters.to_string(),
                ms(r.paper_analysis_ms),
                ms(r.exact_analysis_ms),
                ms(r.paper_sim_ms),
                ms(r.exact_sim_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Ablation: blocking hop model (eq. 19 average vs exact mean)",
            &headers,
            &rows
        )
    );
    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join("ablation_hops.csv"), &headers, &rows).map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, "ablation-hops", None)?;
    Ok(())
}

fn emit_service(cli: &Cli) -> Result<(), String> {
    let data = experiments::run_ablation_service(&cli.opts).map_err(|e| e.to_string())?;
    let headers = ["service model", "SCV", "analysis (ms)", "sim (ms)"];
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![r.model.to_string(), format!("{:.2}", r.scv), ms(r.analysis_ms), ms(r.sim_ms)]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Ablation: network service-time distribution (C=16, Case 1, non-blocking)",
            &headers,
            &rows
        )
    );
    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join("ablation_service.csv"), &headers, &rows).map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, "ablation-service", None)?;
    Ok(())
}

fn emit_packet(cli: &Cli) -> Result<(), String> {
    let data = experiments::run_packet_validation(&cli.opts).map_err(|e| e.to_string())?;
    let headers = ["clusters", "analysis (ms)", "flow sim (ms)", "packet sim (ms)"];
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| vec![r.clusters.to_string(), ms(r.analysis_ms), ms(r.flow_ms), ms(r.packet_ms)])
        .collect();
    println!(
        "{}",
        render_table("Packet-level validation (Case 1, non-blocking, M=1024)", &headers, &rows)
    );
    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join("packet_validation.csv"), &headers, &rows)
            .map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, "packet", None)?;
    Ok(())
}

fn emit_coc(cli: &Cli) -> Result<(), String> {
    let data = experiments::run_coc_validation(&cli.opts).map_err(|e| e.to_string())?;
    let headers =
        ["system", "analysis (ms)", "sim (ms)", "err", "lambda_eff analysis", "lambda_eff sim"];
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.system.to_string(),
                ms(r.analysis_ms),
                ms(r.sim_ms),
                format!("{:.1}%", r.latency_error() * 100.0),
                format!("{:.3e}", r.analysis_lambda_eff),
                format!("{:.3e}", r.sim_lambda_eff),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Cluster-of-Clusters validation (the paper's §7 future work, implemented)",
            &headers,
            &rows
        )
    );
    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join("coc_validation.csv"), &headers, &rows).map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, "coc", None)?;
    Ok(())
}

fn emit_bounds(cli: &Cli) -> Result<(), String> {
    let data = experiments::run_bounds(&cli.opts).map_err(|e| e.to_string())?;
    let headers =
        ["clusters", "d_total (µs)", "d_max (µs)", "N*", "bound λ_eff", "model λ_eff", "sim λ_eff"];
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.clusters.to_string(),
                format!("{:.1}", r.d_total_us),
                format!("{:.1}", r.d_max_us),
                format!("{:.1}", r.saturation_population),
                format!("{:.3e}", r.bound_lambda_eff),
                format!("{:.3e}", r.model_lambda_eff),
                format!("{:.3e}", r.sim_lambda_eff),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Operational bounds (asymptotic bound analysis) vs model vs simulation",
            &headers,
            &rows
        )
    );
    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join("bounds.csv"), &headers, &rows).map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, "bounds", None)?;
    Ok(())
}

/// The sensitivity artefact: central finite-difference derivatives of
/// the mean latency over the paper's cluster sweep (Case 1, M = 1024,
/// both architectures), plus the Newton-polished largest λ meeting the
/// optimize SLO. All probes run through the batched kernel; floats use
/// the shortest-round-trip rendering so the CSV is byte-stable.
fn emit_sensitivity(cli: &Cli) -> Result<(), String> {
    let slo_us = cli.slo_ms.unwrap_or(DEFAULT_OPTIMIZE_SLO_MS) * 1000.0;
    let headers = [
        "key",
        "clusters",
        "nodes_per_cluster",
        "architecture",
        "latency_us",
        "dlatency_dlambda",
        "dlatency_dbyte",
        "dlatency_dnode",
        "saturation_lambda",
        "lambda_headroom",
        "max_lambda_slo",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for arch in [Architecture::NonBlocking, Architecture::Blocking] {
        for &clusters in &PAPER_CLUSTER_COUNTS {
            let config = SystemConfig::paper_preset(Scenario::Case1, clusters, arch)
                .map_err(|e| e.to_string())?
                .with_lambda(cli.opts.lambda_per_us);
            let s = sensitivity::evaluate(&config).map_err(|e| e.to_string())?;
            let at_slo =
                sensitivity::lambda_for_latency(&config, slo_us).map_err(|e| e.to_string())?;
            rows.push(vec![
                format!("{}/C{}", optimize::arch_code(arch), clusters),
                clusters.to_string(),
                config.nodes_per_cluster.to_string(),
                optimize::arch_code(arch).to_string(),
                json_num(s.latency_us),
                json_num(s.dlatency_dlambda),
                json_num(s.dlatency_dbyte),
                json_num(s.dlatency_dnode),
                json_num(s.saturation_lambda),
                json_num(s.lambda_headroom),
                at_slo.map_or("-".to_string(), json_num),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &format!(
                "sensitivity — dT_W/d(lambda, M, N) over the cluster sweep \
                 (Case 1, M=1024, lambda={}, SLO={:.0}ms)",
                json_num(cli.opts.lambda_per_us),
                slo_us / 1000.0
            ),
            &headers,
            &rows
        )
    );
    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join("sensitivity.csv"), &headers, &rows).map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, "sensitivity", None)?;
    Ok(())
}

/// Default mean-latency SLO for the optimize artefact (ms).
const DEFAULT_OPTIMIZE_SLO_MS: f64 = 30.0;
/// Default cost ceiling for the budget-capped optimize variant (USD).
const DEFAULT_OPTIMIZE_BUDGET_USD: f64 = 60_000.0;

/// The three committed optimize variants: the SLO-only frontier, the
/// budget-capped frontier, and a strict-saturation frontier at λ/10
/// (at the paper's λ every preset design sits above the open-queue
/// boundary — the finite-population model self-throttles there — so
/// the strict variant runs at a tenth of the offered rate, where the
/// saturation constraint discriminates between fabrics instead of
/// pruning everything).
fn optimize_variants(cli: &Cli) -> [(&'static str, OptimizeSpec); 3] {
    let slo_us = cli.slo_ms.unwrap_or(DEFAULT_OPTIMIZE_SLO_MS) * 1000.0;
    let budget = cli.budget_usd.unwrap_or(DEFAULT_OPTIMIZE_BUDGET_USD);
    let mut workload = Workload::paper_default();
    workload.lambda_per_us = cli.opts.lambda_per_us;
    let space = DesignSpace::paper_default(workload.total_nodes);
    let spec = |workload: Workload, constraints: Constraints| OptimizeSpec {
        workload,
        constraints,
        space: space.clone(),
    };
    let mut strict_workload = workload;
    strict_workload.lambda_per_us = workload.lambda_per_us / 10.0;
    [
        (
            "optimize_frontier",
            spec(workload, Constraints { slo_latency_us: Some(slo_us), ..Default::default() }),
        ),
        (
            "optimize_budget",
            spec(
                workload,
                Constraints {
                    slo_latency_us: Some(slo_us),
                    budget_usd: Some(budget),
                    ..Default::default()
                },
            ),
        ),
        (
            "optimize_strict",
            spec(
                strict_workload,
                Constraints {
                    slo_latency_us: Some(slo_us),
                    require_unsaturated: true,
                    ..Default::default()
                },
            ),
        ),
    ]
}

fn emit_optimize(cli: &Cli) -> Result<(), String> {
    let variants = optimize_variants(cli);
    let mut diag_rows: Vec<Vec<String>> = Vec::new();
    for (name, spec) in &variants {
        let outcome =
            optimize::optimize(spec, BatchOptions::default()).map_err(|e| e.to_string())?;
        let rows: Vec<Vec<String>> = outcome.frontier.iter().map(optimize::frontier_row).collect();
        let constraint_note = format!(
            "λ={} SLO={} budget={} unsaturated={}",
            json_num(spec.workload.lambda_per_us),
            spec.constraints
                .slo_latency_us
                .map_or("-".to_string(), |v| format!("{:.0}ms", v / 1000.0)),
            spec.constraints.budget_usd.map_or("-".to_string(), |v| format!("${v:.0}")),
            spec.constraints.require_unsaturated,
        );
        println!(
            "{}",
            render_table(
                &format!("{name} — Pareto frontier ({constraint_note})"),
                &optimize::FRONTIER_COLUMNS,
                &rows
            )
        );
        let d = outcome.diagnostics;
        println!(
            "  space {} | invalid {} | saturated {} | over budget {} | failed {} | \
             evaluated {} | above SLO {} | feasible {} | dominated {} | frontier {}\n",
            outcome.space_size,
            d.invalid,
            d.saturated,
            d.over_budget,
            d.failed,
            outcome.evaluated,
            d.above_slo,
            outcome.feasible,
            d.dominated,
            outcome.frontier.len(),
        );
        if let Some(dir) = &cli.csv_dir {
            write_csv(&dir.join(format!("{name}.csv")), &optimize::FRONTIER_COLUMNS, &rows)
                .map_err(|e| e.to_string())?;
        }
        let cheapest = outcome.cheapest_feasible();
        diag_rows.push(vec![
            name.to_string(),
            json_num(spec.workload.lambda_per_us),
            outcome.space_size.to_string(),
            d.invalid.to_string(),
            d.saturated.to_string(),
            d.over_budget.to_string(),
            d.failed.to_string(),
            outcome.evaluated.to_string(),
            d.above_slo.to_string(),
            outcome.feasible.to_string(),
            d.dominated.to_string(),
            d.pruned.to_string(),
            outcome.frontier.len().to_string(),
            cheapest.map_or("-".to_string(), |p| p.design.key()),
            cheapest.map_or("-".to_string(), |p| json_num(p.cost_usd)),
        ]);
    }
    let diag_headers = [
        "variant",
        "lambda_per_us",
        "space",
        "invalid",
        "saturated",
        "over_budget",
        "failed",
        "evaluated",
        "above_slo",
        "feasible",
        "dominated",
        "pruned",
        "frontier",
        "cheapest_design",
        "cheapest_cost_usd",
    ];
    println!(
        "{}",
        render_table("optimize — binding-constraint diagnostics", &diag_headers, &diag_rows)
    );
    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join("optimize_diagnostics.csv"), &diag_headers, &diag_rows)
            .map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, "optimize", None)?;
    if let Some(path) = &cli.opt_bench {
        write_optimize_bench(path, &variants[0].1)?;
    }
    Ok(())
}

/// Repeats a timed optimizer leg until both minima are met, returning
/// the last outcome, the iteration count and the elapsed wall time.
fn timed_optimize_leg<F>(
    mut run: F,
    min_iters: u64,
    min_wall_s: f64,
) -> Result<(optimize::OptimizeOutcome, u64, f64), String>
where
    F: FnMut() -> Result<optimize::OptimizeOutcome, String>,
{
    let start = std::time::Instant::now();
    let mut iterations = 0u64;
    loop {
        let outcome = run()?;
        iterations += 1;
        if iterations >= min_iters && start.elapsed().as_secs_f64() >= min_wall_s {
            return Ok((outcome, iterations, start.elapsed().as_secs_f64()));
        }
    }
}

/// Times the gradient-pruned optimizer against the exhaustive one on
/// the *expanded* design space (dense port axis, ~20–50k points for
/// the paper's 256 nodes) and writes an `hmcs-optimize-bench/1`
/// summary for `benchgate optimize --min-eps [--min-speedup]`.
///
/// The headline `evals_per_s` counts design points *decided* per
/// second — every buildable point the run classifies (evaluated,
/// failed, saturated, over budget, or certificate-pruned) — so both
/// legs are measured against the same denominator and `speedup` is
/// exactly the exhaustive-vs-pruned mean wall-time ratio.
/// `frontier_identical` records a per-field `f64::to_bits` comparison
/// of the two frontiers; benchgate refuses a speedup gate without it.
fn write_optimize_bench(path: &Path, spec: &OptimizeSpec) -> Result<(), String> {
    let options = BatchOptions::default();
    let workers = options.resolved_workers();
    let mut spec = spec.clone();
    spec.space = DesignSpace::expanded(spec.workload.total_nodes);
    let (min_iters, min_wall_s) = match SimBudget::from_env() {
        SimBudget::Ci => (2u64, 0.2f64),
        _ => (3, 0.4),
    };

    let (exhaustive, ex_iters, ex_wall_s) = timed_optimize_leg(
        || optimize::optimize(&spec, options).map_err(|e| e.to_string()),
        min_iters,
        min_wall_s,
    )?;
    let (pruned, iterations, wall_s) = timed_optimize_leg(
        || optimize::optimize_pruned(&spec, options).map_err(|e| e.to_string()),
        min_iters,
        min_wall_s,
    )?;

    let frontier_identical = exhaustive.frontier.len() == pruned.frontier.len()
        && exhaustive.frontier.iter().zip(&pruned.frontier).all(|(a, b)| {
            a.design.key() == b.design.key()
                && a.cost_usd.to_bits() == b.cost_usd.to_bits()
                && a.latency_us.to_bits() == b.latency_us.to_bits()
        });
    let decided = (pruned.space_size - pruned.diagnostics.invalid) as u64;
    let evaluated = pruned.evaluated as u64 * iterations;
    let evals_per_s = (decided * iterations) as f64 / wall_s;
    let exhaustive_evals_per_s = (decided * ex_iters) as f64 / ex_wall_s;
    let speedup = (ex_wall_s / ex_iters as f64) / (wall_s / iterations as f64);
    let body = format!(
        "{{\"schema\":\"hmcs-optimize-bench/1\",\"space_size\":{},\"iterations\":{},\
         \"evaluated\":{},\"pruned_points\":{},\"wall_s\":{},\"evals_per_s\":{},\
         \"exhaustive_iterations\":{},\"exhaustive_wall_s\":{},\"exhaustive_evals_per_s\":{},\
         \"speedup\":{},\"frontier_identical\":{},\"frontier_len\":{},\"workers\":{}}}\n",
        spec.space.len(),
        iterations,
        evaluated,
        pruned.diagnostics.pruned,
        json_num(wall_s),
        json_num(evals_per_s),
        ex_iters,
        json_num(ex_wall_s),
        json_num(exhaustive_evals_per_s),
        json_num(speedup),
        frontier_identical,
        pruned.frontier.len(),
        workers,
    );
    write_atomic(path, body.as_bytes()).map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "optimize bench: {} points decided/iter on the expanded space, pruned {:.0} evals/s \
         vs exhaustive {:.0} ({speedup:.2}x, frontiers identical: {frontier_identical}, \
         {} worker(s)) -> {}",
        decided,
        evals_per_s,
        exhaustive_evals_per_s,
        workers,
        path.display()
    );
    if !frontier_identical {
        return Err("pruned frontier diverged from the exhaustive frontier".to_string());
    }
    Ok(())
}

/// The latency-matrix topology artefact: generate → identify → fit →
/// analytic-vs-sharded-simulation agreement, including the 10k-node
/// scale case. Writes three CSVs: `topology_matrix.csv` (deterministic
/// identification columns), `topology_partition.csv` (the identified
/// partition fingerprint, one row per cluster) and
/// `topology_agreement.csv` (the differential validation).
fn emit_topology(cli: &Cli) -> Result<(), String> {
    let options = TopologyOptions { seed: cli.opts.seed, budget: cli.budget };
    let results = topology::run_topology(&options).map_err(|e| e.to_string())?;

    let matrix_headers = [
        "case",
        "nodes",
        "planted",
        "identified",
        "roundtrip",
        "threshold_us",
        "intra_median_us",
        "inter_median_us",
        "residual",
    ];
    let opt_num = |v: Option<f64>| v.map_or("-".to_string(), json_num);
    let matrix_rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.case.name.to_string(),
                r.nodes.to_string(),
                r.planted_clusters.to_string(),
                r.identified_clusters.to_string(),
                u8::from(r.roundtrip).to_string(),
                opt_num(r.threshold_us),
                json_num(r.intra_median_us),
                opt_num(r.inter_median_us),
                json_num(r.residual_score),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "topology — latency-matrix cluster identification round-trip",
            &matrix_headers,
            &matrix_rows
        )
    );

    let partition_headers = ["key", "case", "cluster", "size", "lead"];
    let partition_rows: Vec<Vec<String>> = results
        .iter()
        .flat_map(|r| {
            r.cluster_sizes.iter().zip(&r.cluster_leads).enumerate().map(|(c, (size, lead))| {
                vec![
                    format!("{}/{c}", r.case.name),
                    r.case.name.to_string(),
                    c.to_string(),
                    size.to_string(),
                    lead.to_string(),
                ]
            })
        })
        .collect();
    println!(
        "{}",
        render_table("topology — identified partitions", &partition_headers, &partition_rows)
    );

    let agreement_headers = [
        "case",
        "nodes",
        "shards",
        "analysis (ms)",
        "sim (ms)",
        "ci95 (ms)",
        "agrees",
        "boundary_out_frac",
        "boundary_in_per_msg",
    ];
    let agreement_rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.case.name.to_string(),
                r.nodes.to_string(),
                r.shards.to_string(),
                json_num(r.analysis_ms),
                json_num(r.sim_ms),
                json_num(r.ci95_ms),
                u8::from(r.agrees).to_string(),
                json_num(r.boundary_out_frac()),
                json_num(r.boundary_in_per_msg()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "topology — analytic vs sharded-simulation agreement",
            &agreement_headers,
            &agreement_rows
        )
    );
    for r in &results {
        println!(
            "  {}: identify {:.2}s, sharded sim {:.2}s ({} messages across {} shards)",
            r.case.name, r.identify_wall_s, r.sim_wall_s, r.messages, r.shards
        );
    }
    println!();

    if let Some(dir) = &cli.csv_dir {
        write_csv(&dir.join("topology_matrix.csv"), &matrix_headers, &matrix_rows)
            .map_err(|e| e.to_string())?;
        write_csv(&dir.join("topology_partition.csv"), &partition_headers, &partition_rows)
            .map_err(|e| e.to_string())?;
        write_csv(&dir.join("topology_agreement.csv"), &agreement_headers, &agreement_rows)
            .map_err(|e| e.to_string())?;
    }
    emit_manifest(cli, "topology", None)?;
    if let Some(path) = &cli.topo_bench {
        write_topology_bench(path, &results)?;
    }
    Ok(())
}

/// Writes an `hmcs-topology-bench/1` summary for
/// `benchgate topology`: pipeline scale, round-trip and agreement
/// outcomes, and identification throughput.
fn write_topology_bench(
    path: &Path,
    results: &[hmcs_bench::topology::TopologyCaseResult],
) -> Result<(), String> {
    let total_nodes: usize = results.iter().map(|r| r.nodes).sum();
    let max_nodes = results.iter().map(|r| r.nodes).max().unwrap_or(0);
    let shards: usize = results.iter().map(|r| r.shards).sum();
    let messages: u64 = results.iter().map(|r| r.messages).sum();
    let roundtrip_failures = results.iter().filter(|r| !r.roundtrip).count();
    let agreement_failures = results.iter().filter(|r| !r.agrees).count();
    let identify_wall_s: f64 = results.iter().map(|r| r.identify_wall_s).sum();
    let sim_wall_s: f64 = results.iter().map(|r| r.sim_wall_s).sum();
    let workers = BatchOptions::default().resolved_workers();
    let body = format!(
        "{{\"schema\":\"hmcs-topology-bench/1\",\"cases\":{},\"total_nodes\":{},\
         \"max_nodes\":{},\"shards\":{},\"messages\":{},\"roundtrip_failures\":{},\
         \"agreement_failures\":{},\"identify_wall_s\":{},\"identify_nodes_per_s\":{},\
         \"sim_wall_s\":{},\"workers\":{}}}\n",
        results.len(),
        total_nodes,
        max_nodes,
        shards,
        messages,
        roundtrip_failures,
        agreement_failures,
        json_num(identify_wall_s),
        json_num(total_nodes as f64 / identify_wall_s.max(1e-9)),
        json_num(sim_wall_s),
        workers,
    );
    write_atomic(path, body.as_bytes()).map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "topology bench: {} nodes over {} case(s), {} round-trip / {} agreement failure(s), \
         identify {:.2}s + sharded sim {:.2}s -> {}",
        total_nodes,
        results.len(),
        roundtrip_failures,
        agreement_failures,
        identify_wall_s,
        sim_wall_s,
        path.display()
    );
    Ok(())
}

/// Creates the `--csv` directory up front and proves it is writable,
/// so a bad path fails with one clean message instead of a mid-run
/// error after minutes of simulation.
fn prepare_csv_dir(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("--csv {}: cannot create directory: {e}", dir.display()))?;
    let probe = dir.join(".hmcs-write-probe");
    std::fs::write(&probe, b"probe")
        .map_err(|e| format!("--csv {}: directory not writable: {e}", dir.display()))?;
    std::fs::remove_file(&probe).ok();
    Ok(())
}

/// `reproduce check`: golden diff + claims registry; non-zero exit on
/// any drift or broken claim.
fn run_check(candidate: &Path, golden_dir: &Path) -> Result<bool, String> {
    let diff_report = golden::check_dir(golden_dir, candidate)?;
    print!("{}", diff_report.render(10));
    let claim_results = claims::evaluate_dir(candidate)?;
    print!("{}", claims::render(&claim_results));
    let report_path = candidate.join("claims_report.csv");
    claims::write_report(&report_path, &claim_results)
        .map_err(|e| format!("{}: {e}", report_path.display()))?;
    println!("claims report written to {}", report_path.display());
    let claims_ok = claim_results.iter().all(|r| r.passed);
    Ok(diff_report.passed() && claims_ok)
}

fn run_fuzz(options: differential::FuzzOptions) -> Result<bool, String> {
    let report = differential::run_fuzz(options).map_err(|e| e.to_string())?;
    print!("{}", differential::render(&report));
    Ok(report.disagreements.is_empty())
}

fn run_identfuzz(options: identfuzz::IdentFuzzOptions) -> Result<bool, String> {
    let report = identfuzz::run_identfuzz(options).map_err(|e| e.to_string())?;
    print!("{}", identfuzz::render(&report));
    Ok(report.failures.is_empty())
}

fn run(cli: &Cli) -> Result<(), String> {
    if let Some(dir) = &cli.csv_dir {
        prepare_csv_dir(dir)?;
    }
    for artefact in &cli.artefacts {
        match artefact.as_str() {
            "table1" => emit_tables(cli)?,
            "table2" => emit_table2(cli)?,
            "fig4" => emit_figure(FIG4, cli)?,
            "fig5" => emit_figure(FIG5, cli)?,
            "fig6" => emit_figure(FIG6, cli)?,
            "fig7" => emit_figure(FIG7, cli)?,
            "figs" => {
                for spec in ALL_FIGURES {
                    emit_figure(spec, cli)?;
                }
            }
            "claims" => emit_claims(cli)?,
            "ablation-accounting" => emit_accounting(cli)?,
            "ablation-hops" => emit_hops(cli)?,
            "ablation-service" => emit_service(cli)?,
            "packet" => emit_packet(cli)?,
            "coc" => emit_coc(cli)?,
            "bounds" => emit_bounds(cli)?,
            "optimize" => emit_optimize(cli)?,
            "sensitivity" => emit_sensitivity(cli)?,
            "topology" => emit_topology(cli)?,
            "all" => {
                emit_tables(cli)?;
                emit_table2(cli)?;
                for spec in ALL_FIGURES {
                    emit_figure(spec, cli)?;
                }
                emit_claims(cli)?;
                emit_accounting(cli)?;
                emit_hops(cli)?;
                emit_service(cli)?;
                emit_packet(cli)?;
                emit_coc(cli)?;
                emit_bounds(cli)?;
                emit_optimize(cli)?;
                emit_sensitivity(cli)?;
                emit_topology(cli)?;
            }
            other => return Err(format!("unknown artefact {other}; try --help")),
        }
    }
    if cli.print_metrics {
        println!("{}", hmcs_core::metrics::global().snapshot().render());
    }
    Ok(())
}

fn main() -> ExitCode {
    let command = match parse_args() {
        Ok(command) => command,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match command {
        Command::Emit(cli) => run(&cli).map(|()| true),
        Command::Check { candidate, golden } => run_check(&candidate, &golden),
        Command::Fuzz(options) => run_fuzz(options),
        Command::IdentFuzz(options) => run_identfuzz(options),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
