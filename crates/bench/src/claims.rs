//! Machine-readable registry of the paper's shape claims.
//!
//! EXPERIMENTS.md narrates what each reproduced figure is supposed to
//! show — the dip-then-rise of Figure 4, the V-shape minimum at C=8 in
//! Figures 6/7, blocking dominating non-blocking everywhere, the
//! Case-1/Case-2 symmetry at the ends of the cluster sweep. This
//! module encodes every one of those claims as an assertion over the
//! generated CSVs, so `reproduce check` fails when a refactor preserves
//! the file format but silently breaks the *science*.
//!
//! Thresholds on simulation-facing claims (worst-error ceilings,
//! bound slack) are calibrated to hold under both the paper budget and
//! the reduced CI budget ([`hmcs_sim::replication::SimBudget::Ci`]);
//! claims on analysis columns are deterministic and use tight margins.

use crate::golden::{parse_cell, read_csv, Table};
use std::fmt::Write as _;
use std::path::Path;

/// Outcome of evaluating one claim.
#[derive(Debug, Clone)]
pub struct ClaimResult {
    /// Stable identifier, e.g. `fig6-vshape`.
    pub id: &'static str,
    /// What the claim asserts, in prose.
    pub description: &'static str,
    /// Whether the generated data satisfies the claim.
    pub passed: bool,
    /// Supporting numbers (worst offender on failure, margin on pass).
    pub detail: String,
}

/// Renders claim results as a table-ish text report plus summary line.
pub fn render(results: &[ClaimResult]) -> String {
    let mut out = String::new();
    let failed = results.iter().filter(|r| !r.passed).count();
    for r in results {
        let status = if r.passed { "ok" } else { "FAIL" };
        let _ = writeln!(out, "{status:>4}  {:<24} {}", r.id, r.detail);
    }
    let _ = writeln!(
        out,
        "claims: {} evaluated, {} failed — {}",
        results.len(),
        failed,
        if failed == 0 { "PASS" } else { "FAIL" }
    );
    out
}

/// Writes `claims_report.csv` (claim, description, status, detail).
pub fn write_report(path: &Path, results: &[ClaimResult]) -> std::io::Result<()> {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                r.description.to_string(),
                if r.passed { "pass" } else { "fail" }.to_string(),
                r.detail.clone(),
            ]
        })
        .collect();
    crate::report::write_csv(path, &["claim", "description", "status", "detail"], &rows)
}

// ---------------------------------------------------------------------
// Column access helpers
// ---------------------------------------------------------------------

fn column(table: &Table, file: &str, name: &str) -> Result<Vec<f64>, String> {
    let idx = table.column(name).ok_or_else(|| format!("{file}.csv: missing column {name:?}"))?;
    table
        .rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            parse_cell(&row[idx])
                .ok_or_else(|| format!("{file}.csv row {}: non-numeric {name:?} cell", i + 1))
        })
        .collect()
}

/// Index of the row whose `clusters` column equals `clusters`.
fn row_for_clusters(table: &Table, file: &str, clusters: u32) -> Result<usize, String> {
    let idx = table
        .column("clusters")
        .ok_or_else(|| format!("{file}.csv: missing \"clusters\" column"))?;
    table
        .rows
        .iter()
        .position(|row| row[idx].trim() == clusters.to_string())
        .ok_or_else(|| format!("{file}.csv: no row with clusters={clusters}"))
}

fn fmt_max(label: &str, values: &[f64]) -> String {
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    format!("max {label} {max:.2}")
}

/// `values` strictly increases over `range` (indices into `values`).
fn strictly_increasing(values: &[f64], range: std::ops::Range<usize>) -> bool {
    range.clone().skip(1).all(|i| values[i] > values[i - 1])
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

struct Csvs {
    fig4: Table,
    fig5: Table,
    fig6: Table,
    fig7: Table,
    claims: Table,
    accounting: Table,
    hops: Table,
    service: Table,
    bounds: Table,
    coc: Table,
    packet: Table,
    topo_matrix: Table,
    topo_agreement: Table,
}

fn load(dir: &Path) -> Result<Csvs, String> {
    let read = |name: &str| read_csv(&dir.join(format!("{name}.csv")));
    Ok(Csvs {
        fig4: read("fig4")?,
        fig5: read("fig5")?,
        fig6: read("fig6")?,
        fig7: read("fig7")?,
        claims: read("claims")?,
        accounting: read("ablation_accounting")?,
        hops: read("ablation_hops")?,
        service: read("ablation_service")?,
        bounds: read("bounds")?,
        coc: read("coc_validation")?,
        packet: read("packet_validation")?,
        topo_matrix: read("topology_matrix")?,
        topo_agreement: read("topology_agreement")?,
    })
}

const ANALYSIS_512: &str = "analysis M=512 (ms)";
const ANALYSIS_1024: &str = "analysis M=1024 (ms)";

/// Evaluates every registered claim against the CSVs in `dir`.
///
/// Returns `Err` only when a CSV is missing or malformed — a claim
/// *failing* is reported in its [`ClaimResult`], not as an error.
pub fn evaluate_dir(dir: &Path) -> Result<Vec<ClaimResult>, String> {
    let csvs = load(dir)?;
    let mut results = Vec::new();
    let mut push = |id, description, outcome: Result<(bool, String), String>| {
        let (passed, detail) = match outcome {
            Ok(pair) => pair,
            Err(e) => (false, e),
        };
        results.push(ClaimResult { id, description, passed, detail });
    };

    // --- analysis-vs-simulation agreement, per figure ----------------
    // Ceilings hold with margin under both sim budgets (measured worst
    // errors: fig4 3.3/6.6, fig5 4.9/10.0, fig6 3.5/5.8, fig7 13.9/24.2
    // percent under paper/ci budgets).
    for (id, table, file, ceiling) in [
        ("fig4-agreement", &csvs.fig4, "fig4", 12.0),
        ("fig5-agreement", &csvs.fig5, "fig5", 15.0),
        ("fig6-agreement", &csvs.fig6, "fig6", 12.0),
        ("fig7-agreement", &csvs.fig7, "fig7", 30.0),
    ] {
        push(
            id,
            "analysis tracks simulation: worst per-row error under the figure's ceiling",
            column(table, file, "worst err").map(|errs| {
                let worst = errs.iter().cloned().fold(0.0, f64::max);
                (worst <= ceiling, format!("worst err {worst:.1}% ≤ {ceiling:.0}%"))
            }),
        );
    }

    // --- figure shapes (deterministic analysis columns) --------------
    push(
        "fig4-shape",
        "Case-1 non-blocking: latency dips at C=2, then rises monotonically to C=256",
        column(&csvs.fig4, "fig4", ANALYSIS_1024).map(|v| {
            let ok = v.len() == 9 && v[1] < v[0] && strictly_increasing(&v, 1..v.len());
            (ok, format!("C=1 {:.1} ms, dip C=2 {:.1} ms, C=256 {:.1} ms", v[0], v[1], v[8]))
        }),
    );
    push(
        "fig5-shape",
        "Case-2 non-blocking: C=1 is the worst case; latency dips at C=2 then rises",
        column(&csvs.fig5, "fig5", ANALYSIS_1024).map(|v| {
            let peak_at_1 = v.iter().skip(1).all(|&x| x < v[0]);
            let ok = v.len() == 9 && peak_at_1 && strictly_increasing(&v, 1..v.len());
            (ok, format!("C=1 {:.1} ms vs best {:.1} ms", v[0], v[1]))
        }),
    );
    push(
        "fig6-vshape",
        "Case-1 blocking: V-shaped latency with the minimum at C=8",
        column(&csvs.fig6, "fig6", ANALYSIS_1024).map(|v| {
            let (argmin, _) =
                v.iter()
                    .enumerate()
                    .fold((0, f64::INFINITY), |acc, (i, &x)| if x < acc.1 { (i, x) } else { acc });
            // Clusters double per row, so index 3 is C=8.
            let ok = v.len() == 9 && argmin == 3 && strictly_increasing(&v, 3..v.len());
            (ok, format!("min {:.1} ms at C={}", v[argmin], 1u32 << argmin))
        }),
    );
    push(
        "fig7-vshape",
        "Case-2 blocking: minimum at C=8, catastrophic worst case at C=1",
        column(&csvs.fig7, "fig7", ANALYSIS_1024).map(|v| {
            let (argmin, _) =
                v.iter()
                    .enumerate()
                    .fold((0, f64::INFINITY), |acc, (i, &x)| if x < acc.1 { (i, x) } else { acc });
            let peak_at_1 = v.iter().skip(1).all(|&x| x < v[0]);
            let ok =
                v.len() == 9 && argmin == 3 && peak_at_1 && strictly_increasing(&v, 3..v.len());
            (ok, format!("min {:.1} ms at C={}, C=1 {:.1} ms", v[argmin], 1u32 << argmin, v[0]))
        }),
    );
    push(
        "message-size-monotone",
        "doubling the message size raises analytical latency in every figure row",
        (|| {
            let mut worst: f64 = f64::INFINITY;
            for (table, file) in [
                (&csvs.fig4, "fig4"),
                (&csvs.fig5, "fig5"),
                (&csvs.fig6, "fig6"),
                (&csvs.fig7, "fig7"),
            ] {
                let small = column(table, file, ANALYSIS_512)?;
                let large = column(table, file, ANALYSIS_1024)?;
                for (s, l) in small.iter().zip(&large) {
                    worst = worst.min(l - s);
                }
            }
            Ok((worst > 0.0, format!("min Δ(M=1024 − M=512) {worst:.3} ms")))
        })(),
    );

    // --- §6 blocking-vs-non-blocking ratios ---------------------------
    push(
        "blocking-dominates",
        "blocking latency exceeds non-blocking in every scenario/cluster row",
        (|| {
            let nb = column(&csvs.claims, "claims", "non-blocking (ms)")?;
            let b = column(&csvs.claims, "claims", "blocking (ms)")?;
            let violations = nb.iter().zip(&b).filter(|(n, bl)| bl <= n).count();
            Ok((violations == 0, format!("{} of {} rows violate", violations, nb.len())))
        })(),
    );
    push(
        "ratio-magnitude",
        "blocking/non-blocking ratios: all > 1, at least 16 of 18 ≥ 1.4×, max > 3×",
        column(&csvs.claims, "claims", "ratio").map(|ratios| {
            let all_above_one = ratios.iter().all(|&r| r > 1.0);
            let big = ratios.iter().filter(|&&r| r >= 1.4).count();
            let max = ratios.iter().cloned().fold(0.0, f64::max);
            let ok = all_above_one && ratios.len() == 18 && big >= 16 && max > 3.0;
            (ok, format!("{big}/{} ≥ 1.4×, max {max:.1}×", ratios.len()))
        }),
    );
    push(
        "case-symmetry",
        "Case-1 at C=256 matches Case-2 at C=1 (and vice versa) — same homogeneous system",
        (|| {
            let pairs = [
                (&csvs.fig4, "fig4", 256u32, &csvs.fig5, "fig5", 1u32),
                (&csvs.fig4, "fig4", 1, &csvs.fig5, "fig5", 256),
                (&csvs.fig6, "fig6", 256, &csvs.fig7, "fig7", 1),
                (&csvs.fig6, "fig6", 1, &csvs.fig7, "fig7", 256),
            ];
            let mut worst = 0.0f64;
            for (ta, fa, ca, tb, fb, cb) in pairs {
                let a = column(ta, fa, ANALYSIS_1024)?[row_for_clusters(ta, fa, ca)?];
                let b = column(tb, fb, ANALYSIS_1024)?[row_for_clusters(tb, fb, cb)?];
                worst = worst.max((a - b).abs() / a.abs().max(1e-12));
            }
            Ok((worst <= 0.005, format!("worst endpoint mismatch {:.3}%", worst * 100.0)))
        })(),
    );

    // --- ablations ----------------------------------------------------
    push(
        "accounting-finding",
        "the paper's literal per-job accounting breaks at C=2; per-processor accounting does not",
        (|| {
            let literal = column(&csvs.accounting, "ablation_accounting", "literal err")?;
            let single = column(&csvs.accounting, "ablation_accounting", "single err")?;
            let at2 = row_for_clusters(&csvs.accounting, "ablation_accounting", 2)?;
            let single_worst = single.iter().cloned().fold(0.0, f64::max);
            let ok = literal[at2] >= 25.0 && single_worst <= 10.0;
            Ok((
                ok,
                format!(
                    "literal err at C=2 {:.1}%, worst single err {single_worst:.1}%",
                    literal[at2]
                ),
            ))
        })(),
    );
    push(
        "hops-approximation",
        "the paper's (k+1)/3 mean-hop shortcut stays within 2% of the exact hop distribution",
        (|| {
            let approx = column(&csvs.hops, "ablation_hops", "analysis (k+1)/3 (ms)")?;
            let exact = column(&csvs.hops, "ablation_hops", "analysis exact (ms)")?;
            let worst = approx
                .iter()
                .zip(&exact)
                .map(|(a, e)| (a - e).abs() / e.abs().max(1e-12))
                .fold(0.0, f64::max);
            Ok((worst <= 0.02, format!("worst deviation {:.2}%", worst * 100.0)))
        })(),
    );
    push(
        "service-scv-ordering",
        "analytical latency rises with service-time variability (SCV 0 → 4)",
        (|| {
            let scv = column(&csvs.service, "ablation_service", "SCV")?;
            let latency = column(&csvs.service, "ablation_service", "analysis (ms)")?;
            let scv_sorted = strictly_increasing(&scv, 0..scv.len());
            let ok = scv_sorted && strictly_increasing(&latency, 0..latency.len());
            Ok((
                ok,
                format!(
                    "{:.2} ms (SCV 0) → {:.2} ms (SCV 4)",
                    latency[0],
                    latency[latency.len() - 1]
                ),
            ))
        })(),
    );

    // --- bounds, CoC, packet validation -------------------------------
    push(
        "bounds-envelope",
        "asymptotic-bound λ_eff is an upper envelope: model under it, sim within ramp-up slack",
        (|| {
            let bound = column(&csvs.bounds, "bounds", "bound λ_eff")?;
            let model = column(&csvs.bounds, "bounds", "model λ_eff")?;
            let sim = column(&csvs.bounds, "bounds", "sim λ_eff")?;
            let model_worst = model.iter().zip(&bound).map(|(m, b)| m / b).fold(0.0, f64::max);
            let sim_worst = sim.iter().zip(&bound).map(|(s, b)| s / b).fold(0.0, f64::max);
            // Sim may peek over the bound: finite runs count ramp-up
            // throughput. 1.15 clears the worst measured ratio (1.047
            // under the CI budget) with headroom.
            let ok = model_worst <= 1.001 && sim_worst <= 1.15;
            Ok((ok, format!("model/bound ≤ {model_worst:.3}, sim/bound ≤ {sim_worst:.3}")))
        })(),
    );
    push(
        "coc-agreement",
        "cluster-of-clusters extension matches simulation on heterogeneous systems",
        column(&csvs.coc, "coc_validation", "err").map(|errs| {
            let worst = errs.iter().cloned().fold(0.0, f64::max);
            (worst <= 10.0, format!("worst err {worst:.1}% ≤ 10%"))
        }),
    );
    // --- topology pipeline --------------------------------------------
    push(
        "topology-roundtrip",
        "cluster identification recovers every planted partition bit-exactly, up to 10k nodes",
        (|| {
            let roundtrip = column(&csvs.topo_matrix, "topology_matrix", "roundtrip")?;
            let nodes = column(&csvs.topo_matrix, "topology_matrix", "nodes")?;
            let failures = roundtrip.iter().filter(|&&r| r != 1.0).count();
            let max_nodes = nodes.iter().cloned().fold(0.0, f64::max);
            let ok = failures == 0 && max_nodes >= 10_000.0;
            Ok((
                ok,
                format!(
                    "{failures} of {} cases failed, largest {max_nodes:.0} nodes",
                    roundtrip.len()
                ),
            ))
        })(),
    );
    push(
        "topology-agreement",
        "the fitted config's analytical latency matches the sharded simulation in every case",
        (|| {
            let agrees = column(&csvs.topo_agreement, "topology_agreement", "agrees")?;
            let analysis = column(&csvs.topo_agreement, "topology_agreement", "analysis (ms)")?;
            let sim = column(&csvs.topo_agreement, "topology_agreement", "sim (ms)")?;
            let failures = agrees.iter().filter(|&&a| a != 1.0).count();
            let worst = analysis
                .iter()
                .zip(&sim)
                .map(|(a, s)| (a - s).abs() / s.abs().max(1e-12))
                .fold(0.0, f64::max);
            Ok((
                failures == 0,
                format!("{failures} disagreements, worst gap {:.2}%", worst * 100.0),
            ))
        })(),
    );

    push(
        "packet-vs-flow",
        "packet-level sim yields positive latencies below the flow-level sim (no store-and-forward inflation)",
        (|| {
            let flow = column(&csvs.packet, "packet_validation", "flow sim (ms)")?;
            let packet = column(&csvs.packet, "packet_validation", "packet sim (ms)")?;
            let ok = packet.iter().zip(&flow).all(|(p, f)| *p > 0.0 && p < f);
            Ok((ok, fmt_max("packet/flow ratio", &packet.iter().zip(&flow).map(|(p, f)| p / f).collect::<Vec<_>>())))
        })(),
    );

    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_passes_on_committed_goldens() {
        // The committed results/ directory is the reference artefact
        // set; every claim must hold on it.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let results = evaluate_dir(&dir).unwrap();
        assert!(results.len() >= 16, "expected a full registry, got {}", results.len());
        let failed: Vec<_> = results.iter().filter(|r| !r.passed).collect();
        assert!(failed.is_empty(), "claims failed on goldens: {failed:#?}");
    }

    #[test]
    fn registry_fails_on_broken_data() {
        // Copy the goldens, then flip fig6 so its minimum moves off
        // C=8 — the V-shape claim must catch it.
        let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let dir = std::env::temp_dir().join("hmcs_claims_broken");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        for entry in std::fs::read_dir(&src).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "csv") {
                std::fs::copy(&path, dir.join(path.file_name().unwrap())).unwrap();
            }
        }
        // Replace the C=8 row's analysis values with huge ones so the
        // minimum is no longer at C=8.
        let fig6 = std::fs::read_to_string(dir.join("fig6.csv")).unwrap();
        let mut lines: Vec<&str> = fig6.lines().collect();
        let owned = lines[4].to_string();
        let mut cells: Vec<String> = owned.split(',').map(str::to_string).collect();
        cells[1] = "99999.0".into();
        cells[3] = "99999.0".into();
        let replacement = cells.join(",");
        lines[4] = &replacement;
        std::fs::write(dir.join("fig6.csv"), lines.join("\n")).unwrap();
        let results = evaluate_dir(&dir).unwrap();
        let vshape = results.iter().find(|r| r.id == "fig6-vshape").unwrap();
        assert!(!vshape.passed, "tampered fig6 must fail the V-shape claim");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_csv_is_an_error_not_a_failure() {
        let dir = std::env::temp_dir().join("hmcs_claims_missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(evaluate_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_renders_and_writes() {
        let results = vec![
            ClaimResult { id: "a", description: "d", passed: true, detail: "fine".into() },
            ClaimResult { id: "b", description: "d", passed: false, detail: "broken".into() },
        ];
        let rendered = render(&results);
        assert!(rendered.contains("FAIL"));
        assert!(rendered.contains("1 failed"));
        let dir = std::env::temp_dir().join("hmcs_claims_report");
        let path = dir.join("claims_report.csv");
        write_report(&path, &results).unwrap();
        let table = crate::golden::read_csv(&path).unwrap();
        assert_eq!(table.headers, vec!["claim", "description", "status", "detail"]);
        assert_eq!(table.rows[1][2], "fail");
        std::fs::remove_dir_all(&dir).ok();
    }
}
