//! Differential fuzzing: analytical model vs simulation.
//!
//! The figures only exercise the paper's 256-node sweeps; this module
//! samples random valid [`SystemConfig`]s across the whole parameter
//! space (cluster counts, asymmetric populations, message sizes, both
//! scenarios and architectures, non-exponential service) and checks
//! that the QNA-refined analytical latency agrees with replicated
//! flow-level simulation within the replication confidence interval
//! plus a calibrated model-error band. Offered rates are placed at a
//! controlled distance from the closed-form stability boundary
//! ([`hmcs_core::solver::saturation_lambda`]), so every sampled system
//! is stable but spans light to heavy load.
//!
//! Sampling is seeded and fully deterministic: case `i` of seed `s`
//! is always the same system, so a CI failure reproduces locally.
//! When a case disagrees, a greedy shrinker walks it down to a minimal
//! still-failing configuration and renders a ready-to-paste regression
//! test, turning a fuzz hit into a permanent guardrail.

use hmcs_core::config::{ServiceTimeModel, SystemConfig};
use hmcs_core::error::ModelError;
use hmcs_core::qna;
use hmcs_core::scenario::Scenario;
use hmcs_core::service::ServiceTimes;
use hmcs_core::solver::saturation_lambda;
use hmcs_des::rng::RngStream;
use hmcs_sim::config::SimConfig;
use hmcs_sim::replication::{run_replications, SimBudget, Simulator};
use hmcs_topology::transmission::Architecture;
use std::fmt::Write as _;

/// One sampled point in configuration space.
///
/// The offered rate is stored as a *utilization fraction* of the
/// closed-form saturation rate rather than an absolute λ, so shrinking
/// a dimension (say, halving the message size) keeps the system at the
/// same relative load instead of accidentally leaving the stable region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseSpec {
    /// Number of clusters.
    pub clusters: usize,
    /// Processors per cluster.
    pub nodes_per_cluster: usize,
    /// Message size in bytes.
    pub message_bytes: u64,
    /// Network assignment (Table 1).
    pub scenario: Scenario,
    /// ICN topology.
    pub architecture: Architecture,
    /// Per-processor service-time distribution.
    pub service_model: ServiceTimeModel,
    /// Offered rate as a fraction of the saturation rate, in (0, 1).
    pub utilization: f64,
}

impl CaseSpec {
    /// Materialises the spec: builds the config and pins λ at
    /// `utilization · saturation_lambda`.
    pub fn build(&self) -> Result<SystemConfig, ModelError> {
        // λ is overwritten below; any positive placeholder validates.
        let config = SystemConfig::new(
            self.clusters,
            self.nodes_per_cluster,
            self.message_bytes,
            1e-9,
            self.scenario,
            self.architecture,
        )?
        .with_service_model(self.service_model);
        let service = ServiceTimes::compute(&config)?;
        let sat = saturation_lambda(&config, &service);
        let config = config.with_lambda(self.utilization * sat);
        config.validate()?;
        Ok(config)
    }
}

/// Result of the differential check on one configuration.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// QNA analytical mean message latency (ms).
    pub analysis_ms: f64,
    /// Replicated flow-simulation grand mean (ms).
    pub sim_ms: f64,
    /// 95% confidence half-width of the sim mean (ms).
    pub ci95_ms: f64,
    /// Total allowed |analysis − sim| gap (ms).
    pub allowed_ms: f64,
    /// Whether the analytical model agrees with simulation.
    pub agrees: bool,
}

/// A fuzz case whose analytical and simulated latencies disagree,
/// after shrinking.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// Index of the originally failing case.
    pub case_index: u32,
    /// The shrunk, still-failing spec.
    pub spec: CaseSpec,
    /// Measurements on the shrunk spec.
    pub outcome: VerifyOutcome,
}

/// Summary of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Seed the run was keyed by.
    pub seed: u64,
    /// Cases evaluated.
    pub cases_run: u32,
    /// Shrunk disagreements (empty on a healthy model).
    pub disagreements: Vec<Disagreement>,
}

/// Options for [`run_fuzz`].
#[derive(Debug, Clone, Copy)]
pub struct FuzzOptions {
    /// Number of random configurations to check.
    pub cases: u32,
    /// Master seed; case `i` derives its own RNG stream from it.
    pub seed: u64,
    /// Simulation budget per check.
    pub budget: SimBudget,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions { cases: 25, seed: 2005, budget: SimBudget::Paper }
    }
}

const CLUSTER_CHOICES: [usize; 10] = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32];
const NODE_CHOICES: [usize; 8] = [2, 3, 4, 6, 8, 16, 32, 64];
const BYTE_CHOICES: [u64; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// Draws case `index` of `seed` — deterministic and independent of
/// every other case.
pub fn sample_case(seed: u64, index: u32) -> CaseSpec {
    let mut rng = RngStream::new(seed, u64::from(index));
    let mut clusters = CLUSTER_CHOICES[rng.uniform_below(CLUSTER_CHOICES.len())];
    let mut nodes = NODE_CHOICES[rng.uniform_below(NODE_CHOICES.len())];
    // Stay inside the model's validity region: below ~16 processors the
    // infinite-source Poisson assumption overpredicts queueing (finite
    // population — fuzzing found analysis 29% above sim at N=2), and
    // above 512 the flow simulator stops being cheap.
    while !(16..=512).contains(&(clusters * nodes)) {
        nodes = NODE_CHOICES[rng.uniform_below(NODE_CHOICES.len())];
        clusters = CLUSTER_CHOICES[rng.uniform_below(CLUSTER_CHOICES.len())];
    }
    let message_bytes = BYTE_CHOICES[rng.uniform_below(BYTE_CHOICES.len())];
    let scenario = if rng.uniform() < 0.5 { Scenario::Case1 } else { Scenario::Case2 };
    let architecture =
        if rng.uniform() < 0.5 { Architecture::NonBlocking } else { Architecture::Blocking };
    // Mostly exponential (the paper's model); a steady minority of the
    // distributions the QNA layer exists for.
    let service_model = match rng.uniform_below(10) {
        0 => ServiceTimeModel::Deterministic,
        1 => ServiceTimeModel::Erlang(2),
        2 => ServiceTimeModel::Erlang(4),
        3 => ServiceTimeModel::HyperExponential(4.0),
        _ => ServiceTimeModel::Exponential,
    };
    // Light to heavy but safely sub-saturation load.
    let utilization = 0.05 + 0.65 * rng.uniform();
    CaseSpec {
        clusters,
        nodes_per_cluster: nodes,
        message_bytes,
        scenario,
        architecture,
        service_model,
        utilization,
    }
}

/// Allowed fractional model-error band on top of the replication CI,
/// for a system at `utilization` (fraction of the saturation rate) with
/// (`exponential`) or without exponential service. Heavier load and
/// non-exponential service widen the band: QNA is exact for M/M/1
/// stages but approximate for GI/G/1, and finite runs near saturation
/// carry more transient bias. Shared by the fuzzer and the topology
/// pipeline's analysis-vs-sharded-sim validation.
pub fn agreement_band(utilization: f64, exponential: bool) -> f64 {
    let mut band = 0.06 + 0.12 * utilization;
    if !exponential {
        band += 0.05;
    }
    band
}

/// [`agreement_band`] of a sampled spec.
fn error_band(spec: &CaseSpec) -> f64 {
    agreement_band(spec.utilization, spec.service_model == ServiceTimeModel::Exponential)
}

/// Runs the differential check on one concrete configuration.
///
/// Agreement means `|analysis − sim| ≤ 3·CI95 + band·sim`: three
/// half-widths absorb replication noise, the band absorbs the modelling
/// error the figures show the paper's own data carries.
pub fn verify_config(
    config: &SystemConfig,
    band: f64,
    budget: SimBudget,
) -> Result<VerifyOutcome, ModelError> {
    let analysis_ms = qna::evaluate(config)?.latency.mean_message_latency_ms();
    let plan = budget.plan();
    let sim_config = SimConfig::new(*config)
        .with_messages(plan.messages)
        .with_warmup(plan.warmup)
        .with_seed(2005);
    let summary = run_replications(&sim_config, Simulator::Flow, plan.replications)?;
    let sim_ms = summary.mean_latency_us() / 1e3;
    let ci95_ms = summary.latency_ci95_us() / 1e3;
    let allowed_ms = 3.0 * ci95_ms + band * sim_ms;
    let agrees = (analysis_ms - sim_ms).abs() <= allowed_ms;
    Ok(VerifyOutcome { analysis_ms, sim_ms, ci95_ms, allowed_ms, agrees })
}

/// Checks one spec; `Ok(None)` means agreement.
fn check_spec(spec: &CaseSpec, budget: SimBudget) -> Result<Option<VerifyOutcome>, ModelError> {
    let config = spec.build()?;
    let outcome = verify_config(&config, error_band(spec), budget)?;
    Ok(if outcome.agrees { None } else { Some(outcome) })
}

/// Candidate one-step simplifications of a failing spec, in preference
/// order (structurally smaller first).
fn shrink_candidates(spec: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    // Population shrinks stop at the model's 16-processor validity
    // floor, so a shrunk repro never fails for the (known, documented)
    // finite-population reason instead of the original one.
    if spec.clusters > 1 && (spec.clusters / 2) * spec.nodes_per_cluster >= 16 {
        out.push(CaseSpec { clusters: spec.clusters / 2, ..*spec });
    }
    if spec.nodes_per_cluster > 2 && spec.clusters * (spec.nodes_per_cluster / 2) >= 16 {
        out.push(CaseSpec { nodes_per_cluster: spec.nodes_per_cluster / 2, ..*spec });
    }
    if spec.message_bytes > 64 {
        out.push(CaseSpec { message_bytes: spec.message_bytes / 2, ..*spec });
    }
    if spec.service_model != ServiceTimeModel::Exponential {
        out.push(CaseSpec { service_model: ServiceTimeModel::Exponential, ..*spec });
    }
    if spec.architecture == Architecture::Blocking {
        out.push(CaseSpec { architecture: Architecture::NonBlocking, ..*spec });
    }
    if spec.utilization > 0.15 {
        out.push(CaseSpec { utilization: spec.utilization * 0.5, ..*spec });
    }
    out
}

/// Greedily shrinks a failing spec: repeatedly takes the first
/// simplification that still disagrees, until none does.
fn shrink(spec: CaseSpec, outcome: VerifyOutcome, budget: SimBudget) -> (CaseSpec, VerifyOutcome) {
    let mut current = (spec, outcome);
    // Each accepted step strictly reduces a bounded dimension, so a
    // generous iteration cap cannot spin.
    for _ in 0..64 {
        let mut advanced = false;
        for candidate in shrink_candidates(&current.0) {
            // Agreement or an invalid shrink: keep looking.
            if let Ok(Some(outcome)) = check_spec(&candidate, budget) {
                current = (candidate, outcome);
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    current
}

/// Renders a ready-to-paste regression test for a shrunk disagreement.
pub fn regression_snippet(seed: u64, d: &Disagreement) -> String {
    let spec = &d.spec;
    let scenario = match spec.scenario {
        Scenario::Case1 => "Scenario::Case1",
        Scenario::Case2 => "Scenario::Case2",
    };
    let architecture = match spec.architecture {
        Architecture::NonBlocking => "Architecture::NonBlocking",
        Architecture::Blocking => "Architecture::Blocking",
    };
    let service = match spec.service_model {
        ServiceTimeModel::Exponential => String::new(),
        ServiceTimeModel::Deterministic => {
            "\n        .with_service_model(ServiceTimeModel::Deterministic)".to_string()
        }
        ServiceTimeModel::Erlang(k) => {
            format!("\n        .with_service_model(ServiceTimeModel::Erlang({k}))")
        }
        ServiceTimeModel::HyperExponential(scv) => {
            format!("\n        .with_service_model(ServiceTimeModel::HyperExponential({scv:?}))")
        }
    };
    let lambda = spec
        .build()
        .map(|c| format!("{:.6e}", c.lambda_per_us))
        .unwrap_or_else(|_| "/* rebuild failed */ 0.0".to_string());
    let mut out = String::new();
    let _ = writeln!(out, "#[test]");
    let _ = writeln!(
        out,
        "fn fuzz_regression_c{}_n{}_m{}() {{",
        spec.clusters, spec.nodes_per_cluster, spec.message_bytes
    );
    let _ =
        writeln!(out, "    // Found by `reproduce fuzz --seed {seed}` (case {}):", d.case_index);
    let _ = writeln!(
        out,
        "    // analysis {:.3} ms vs sim {:.3} ms (allowed gap {:.3} ms).",
        d.outcome.analysis_ms, d.outcome.sim_ms, d.outcome.allowed_ms
    );
    let _ = writeln!(
        out,
        "    let config = SystemConfig::new({}, {}, {}, {lambda}, {scenario}, {architecture})",
        spec.clusters, spec.nodes_per_cluster, spec.message_bytes
    );
    let _ = writeln!(out, "        .unwrap(){service};");
    let _ = writeln!(
        out,
        "    let outcome = verify_config(&config, {:.3}, SimBudget::Paper).unwrap();",
        error_band(spec)
    );
    let _ = writeln!(out, "    assert!(outcome.agrees, \"{{outcome:?}}\");");
    let _ = writeln!(out, "}}");
    out
}

/// Runs `options.cases` differential checks, shrinking any failures.
pub fn run_fuzz(options: FuzzOptions) -> Result<FuzzReport, ModelError> {
    let mut disagreements = Vec::new();
    for index in 0..options.cases {
        let spec = sample_case(options.seed, index);
        if let Some(outcome) = check_spec(&spec, options.budget)? {
            let (spec, outcome) = shrink(spec, outcome, options.budget);
            disagreements.push(Disagreement { case_index: index, spec, outcome });
        }
    }
    Ok(FuzzReport { seed: options.seed, cases_run: options.cases, disagreements })
}

/// Renders the fuzz report, including regression snippets for any
/// disagreements.
pub fn render(report: &FuzzReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fuzz: seed {}, {} case(s), {} disagreement(s) — {}",
        report.seed,
        report.cases_run,
        report.disagreements.len(),
        if report.disagreements.is_empty() { "PASS" } else { "FAIL" }
    );
    for d in &report.disagreements {
        let _ = writeln!(
            out,
            "\ncase {}: {:?}\n  analysis {:.3} ms, sim {:.3} ms ± {:.3} (allowed {:.3})",
            d.case_index,
            d.spec,
            d.outcome.analysis_ms,
            d.outcome.sim_ms,
            d.outcome.ci95_ms,
            d.outcome.allowed_ms
        );
        let _ =
            writeln!(out, "  suggested regression test:\n{}", regression_snippet(report.seed, d));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_valid() {
        for index in 0..50 {
            let a = sample_case(2005, index);
            let b = sample_case(2005, index);
            assert_eq!(a, b, "case {index} must be reproducible");
            let config = a.build().unwrap_or_else(|e| panic!("case {index} invalid: {e:?}"));
            config.validate().unwrap();
            assert!(config.lambda_per_us > 0.0);
            assert!(a.utilization > 0.0 && a.utilization < 0.75);
            assert!((16..=512).contains(&config.total_nodes()));
        }
        // Different seeds genuinely move the samples.
        assert_ne!(sample_case(1, 0), sample_case(2, 0));
    }

    #[test]
    fn paper_point_agrees() {
        // The paper's own operating point must never disagree: Case-1,
        // 8 clusters of 32, M=1024 at the paper rate is squarely inside
        // the validated region.
        let spec = CaseSpec {
            clusters: 8,
            nodes_per_cluster: 32,
            message_bytes: 1024,
            scenario: Scenario::Case1,
            architecture: Architecture::NonBlocking,
            service_model: ServiceTimeModel::Exponential,
            utilization: 0.3,
        };
        let outcome = check_spec(&spec, SimBudget::Ci).unwrap();
        assert!(outcome.is_none(), "paper point disagreed: {outcome:?}");
    }

    #[test]
    fn shrinker_minimises_an_artificial_failure() {
        // Shrink with an always-failing oracle by driving the candidate
        // walk directly: every shrink candidate list must strictly
        // simplify, terminate, and stay valid.
        let mut spec = CaseSpec {
            clusters: 16,
            nodes_per_cluster: 32,
            message_bytes: 2048,
            scenario: Scenario::Case2,
            architecture: Architecture::Blocking,
            service_model: ServiceTimeModel::Erlang(4),
            utilization: 0.6,
        };
        let mut steps = 0;
        while let Some(candidate) = shrink_candidates(&spec).into_iter().next() {
            assert!(candidate.build().is_ok(), "shrink produced invalid spec {candidate:?}");
            spec = candidate;
            steps += 1;
            assert!(steps < 64, "shrinking must terminate");
        }
        assert_eq!(spec.clusters, 1);
        // Population shrinking stops at the 16-processor validity floor.
        assert_eq!(spec.nodes_per_cluster, 16);
        assert_eq!(spec.message_bytes, 64);
        assert_eq!(spec.service_model, ServiceTimeModel::Exponential);
        assert_eq!(spec.architecture, Architecture::NonBlocking);
    }

    #[test]
    fn snippet_is_ready_to_paste() {
        let spec = CaseSpec {
            clusters: 2,
            nodes_per_cluster: 4,
            message_bytes: 512,
            scenario: Scenario::Case1,
            architecture: Architecture::NonBlocking,
            service_model: ServiceTimeModel::Erlang(2),
            utilization: 0.4,
        };
        let d = Disagreement {
            case_index: 7,
            spec,
            outcome: VerifyOutcome {
                analysis_ms: 1.0,
                sim_ms: 2.0,
                ci95_ms: 0.1,
                allowed_ms: 0.5,
                agrees: false,
            },
        };
        let snippet = regression_snippet(2005, &d);
        assert!(snippet.contains("#[test]"));
        assert!(snippet.contains("SystemConfig::new(2, 4, 512,"));
        assert!(snippet.contains("ServiceTimeModel::Erlang(2)"));
        assert!(snippet.contains("assert!(outcome.agrees"));
    }
}
