//! One runner per paper artefact.
//!
//! Every figure of the paper plots **average message latency (ms)
//! versus number of clusters** for `C ∈ {1, 2, 4, …, 256}` on a 256-node
//! platform, with message sizes 512 and 1024 bytes, showing an analysis
//! curve and a simulation curve:
//!
//! * Figure 4 — non-blocking, Case 1;
//! * Figure 5 — non-blocking, Case 2;
//! * Figure 6 — blocking, Case 1;
//! * Figure 7 — blocking, Case 2.
//!
//! [`run_figure`] regenerates one of them; the remaining runners cover
//! Tables 1–2, the §6 blocking/non-blocking ratio claim and the
//! reproduction's ablations.

use crate::simcache;
use hmcs_core::batch::{self, BatchOptions, EvalStats, EvalStatsSummary};
use hmcs_core::config::{QueueAccounting, ServiceTimeModel, SystemConfig};
use hmcs_core::error::ModelError;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::{
    Scenario, PAPER_CLUSTER_COUNTS, PAPER_LAMBDA_PER_US, PAPER_MESSAGE_SIZES, PAPER_SIM_MESSAGES,
};
use hmcs_core::sweep;
use hmcs_sim::config::SimConfig;
use hmcs_topology::technology::NetworkTechnology;
use hmcs_topology::transmission::{Architecture, HopModel};

/// Identification of one of the paper's four latency figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FigureSpec {
    /// Figure id ("fig4" … "fig7").
    pub id: &'static str,
    /// Network scenario (Table 1 case).
    pub scenario: Scenario,
    /// Interconnect architecture.
    pub architecture: Architecture,
    /// The paper's caption.
    pub caption: &'static str,
}

/// Figure 4: non-blocking networks, Case 1.
pub const FIG4: FigureSpec = FigureSpec {
    id: "fig4",
    scenario: Scenario::Case1,
    architecture: Architecture::NonBlocking,
    caption: "Average Message Latency vs. Number of Clusters for Non-blocking Networks in Case-1",
};

/// Figure 5: non-blocking networks, Case 2.
pub const FIG5: FigureSpec = FigureSpec {
    id: "fig5",
    scenario: Scenario::Case2,
    architecture: Architecture::NonBlocking,
    caption: "Average Message Latency vs. Number of Clusters for Non-blocking Networks in Case-2",
};

/// Figure 6: blocking networks, Case 1.
pub const FIG6: FigureSpec = FigureSpec {
    id: "fig6",
    scenario: Scenario::Case1,
    architecture: Architecture::Blocking,
    caption: "Average Message Latency vs. Number of Clusters for Blocking Networks in Case-1",
};

/// Figure 7: blocking networks, Case 2.
pub const FIG7: FigureSpec = FigureSpec {
    id: "fig7",
    scenario: Scenario::Case2,
    architecture: Architecture::Blocking,
    caption: "Average Message Latency vs. Number of Clusters for Blocking Networks in Case-2",
};

/// All four figures in paper order.
pub const ALL_FIGURES: [FigureSpec; 4] = [FIG4, FIG5, FIG6, FIG7];

/// Common experiment-control options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Measured messages per simulation run (paper: 10,000).
    pub messages: u64,
    /// Warm-up messages discarded before measuring.
    pub warmup: u64,
    /// Master seed.
    pub seed: u64,
    /// Per-processor generation rate (events/µs).
    pub lambda_per_us: f64,
    /// Whether to run the simulation column (analysis is always run).
    pub with_simulation: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            messages: PAPER_SIM_MESSAGES,
            warmup: 2_000,
            seed: 2005,
            lambda_per_us: PAPER_LAMBDA_PER_US,
            with_simulation: true,
        }
    }
}

/// One figure row: latencies (ms) at a cluster count for both message
/// sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigureRow {
    /// Cluster count (x-axis).
    pub clusters: usize,
    /// Analysis latency, M = 512 B.
    pub analysis_512_ms: f64,
    /// Simulation latency, M = 512 B (None when simulation disabled).
    pub sim_512_ms: Option<f64>,
    /// Analysis latency, M = 1024 B.
    pub analysis_1024_ms: f64,
    /// Simulation latency, M = 1024 B.
    pub sim_1024_ms: Option<f64>,
}

impl FigureRow {
    /// Largest relative |analysis − sim|/sim across the two message
    /// sizes (`None` when simulation was disabled).
    pub fn worst_relative_error(&self) -> Option<f64> {
        let e512 = self.sim_512_ms.map(|s| (self.analysis_512_ms - s).abs() / s);
        let e1024 = self.sim_1024_ms.map(|s| (self.analysis_1024_ms - s).abs() / s);
        match (e512, e1024) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }
}

/// A regenerated figure: spec + rows over the cluster-count axis.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Which figure this is.
    pub spec: FigureSpec,
    /// One row per cluster count.
    pub rows: Vec<FigureRow>,
    /// Aggregate cost of the analytical evaluations behind the figure.
    pub analysis_stats: EvalStatsSummary,
    /// Per-point evaluation cost, M=512 sweep then M=1024 sweep (the
    /// run manifest builds its solver-iteration and wall-clock
    /// histograms from these).
    pub point_stats: Vec<EvalStats>,
    /// Wall-clock time of the whole figure run (µs), analysis and
    /// simulation columns included.
    pub wall_clock_us: f64,
}

fn system_for(
    spec: FigureSpec,
    clusters: usize,
    bytes: u64,
    opts: &RunOptions,
) -> Result<SystemConfig, ModelError> {
    Ok(SystemConfig::paper_preset(spec.scenario, clusters, spec.architecture)?
        .with_message_bytes(bytes)
        .with_lambda(opts.lambda_per_us))
}

/// Regenerates one of Figures 4–7 on the shared worker pool.
pub fn run_figure(spec: FigureSpec, opts: &RunOptions) -> Result<FigureData, ModelError> {
    run_figure_with(spec, opts, BatchOptions::default())
}

/// [`run_figure`] with an explicit worker policy. The analysis column
/// runs as two batch cluster sweeps (one per message size); the
/// simulation column fans the 18 runs out over the same pool.
pub fn run_figure_with(
    spec: FigureSpec,
    opts: &RunOptions,
    batch_options: BatchOptions,
) -> Result<FigureData, ModelError> {
    let started = std::time::Instant::now();
    let sweep_for = |bytes: u64| -> Result<Vec<sweep::SweepPoint<usize>>, ModelError> {
        let base = SystemConfig::paper_preset(spec.scenario, 1, spec.architecture)?
            .with_message_bytes(bytes)
            .with_lambda(opts.lambda_per_us);
        sweep::cluster_sweep_with(
            &base,
            hmcs_core::scenario::PAPER_TOTAL_NODES,
            &PAPER_CLUSTER_COUNTS,
            batch_options,
        )
    };
    let analysis_512 = sweep_for(PAPER_MESSAGE_SIZES[0])?;
    let analysis_1024 = sweep_for(PAPER_MESSAGE_SIZES[1])?;
    let point_stats: Vec<EvalStats> =
        analysis_512.iter().chain(&analysis_1024).map(|p| p.stats).collect();
    let analysis_stats = EvalStatsSummary::collect(point_stats.iter().copied());

    // Simulation column: one run per (cluster count, message size),
    // flattened in row-major order and fanned out on the pool.
    let sims: Vec<Option<f64>> = if opts.with_simulation {
        let mut sim_configs = Vec::with_capacity(2 * PAPER_CLUSTER_COUNTS.len());
        for &c in &PAPER_CLUSTER_COUNTS {
            for &bytes in &PAPER_MESSAGE_SIZES[..2] {
                let sys = system_for(spec, c, bytes, opts)?;
                sim_configs.push(
                    SimConfig::new(sys)
                        .with_messages(opts.messages)
                        .with_warmup(opts.warmup)
                        .with_seed(opts.seed)
                        // The figure only plots means; skip the P²
                        // marker updates and the per-event center
                        // statistics neither the CSVs nor the summary
                        // read.
                        .with_quantiles(false)
                        .with_center_stats(false),
                );
            }
        }
        batch::par_map(&sim_configs, batch_options.resolved_workers(), |cfg| {
            simcache::flow_run(cfg).map(|r| r.mean_latency_ms())
        })
        .into_iter()
        .map(|r| r.map(Some))
        .collect::<Result<Vec<_>, ModelError>>()?
    } else {
        vec![None; 2 * PAPER_CLUSTER_COUNTS.len()]
    };

    let rows = PAPER_CLUSTER_COUNTS
        .iter()
        .enumerate()
        .map(|(i, &c)| FigureRow {
            clusters: c,
            analysis_512_ms: analysis_512[i].report.latency.mean_message_latency_ms(),
            sim_512_ms: sims[2 * i],
            analysis_1024_ms: analysis_1024[i].report.latency.mean_message_latency_ms(),
            sim_1024_ms: sims[2 * i + 1],
        })
        .collect();
    Ok(FigureData {
        spec,
        rows,
        analysis_stats,
        point_stats,
        wall_clock_us: started.elapsed().as_secs_f64() * 1e6,
    })
}

/// One row of the §6 ratio claim ("the average message latency of
/// blocking network is larger, something between 1.4 to 3.1 times").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClaimRow {
    /// Scenario the ratio was computed in.
    pub scenario: Scenario,
    /// Cluster count.
    pub clusters: usize,
    /// Non-blocking analysis latency (ms), M = 1024.
    pub nonblocking_ms: f64,
    /// Blocking analysis latency (ms), M = 1024.
    pub blocking_ms: f64,
}

impl ClaimRow {
    /// blocking / non-blocking latency ratio.
    pub fn ratio(&self) -> f64 {
        self.blocking_ms / self.nonblocking_ms
    }
}

/// Evaluates the blocking/non-blocking latency ratio over the grid.
/// The 36 evaluations (2 scenarios × 9 counts × 2 architectures) run
/// as one batch on the shared pool.
pub fn run_claims(opts: &RunOptions) -> Result<Vec<ClaimRow>, ModelError> {
    let mut keys = Vec::new();
    let mut configs = Vec::new();
    for scenario in [Scenario::Case1, Scenario::Case2] {
        for &c in &PAPER_CLUSTER_COUNTS {
            keys.push((scenario, c));
            for arch in [Architecture::NonBlocking, Architecture::Blocking] {
                configs.push(
                    SystemConfig::paper_preset(scenario, c, arch)?.with_lambda(opts.lambda_per_us),
                );
            }
        }
    }
    let results = batch::evaluate_many(&configs, BatchOptions::default());
    keys.into_iter()
        .zip(results.chunks_exact(2))
        .map(|((scenario, clusters), pair)| {
            let latency_ms = |r: &Result<(hmcs_core::model::PerformanceReport, _), ModelError>| {
                r.as_ref()
                    .map(|(report, _stats)| report.latency.mean_message_latency_ms())
                    .map_err(Clone::clone)
            };
            Ok(ClaimRow {
                scenario,
                clusters,
                nonblocking_ms: latency_ms(&pair[0])?,
                blocking_ms: latency_ms(&pair[1])?,
            })
        })
        .collect()
}

/// One row of the ECN1-accounting ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccountingRow {
    /// Cluster count.
    pub clusters: usize,
    /// Analysis with the paper-literal `2·L_E1` counting (ms).
    pub literal_ms: f64,
    /// Analysis with single-queue counting (ms).
    pub single_ms: f64,
    /// Flow simulation (ms).
    pub sim_ms: f64,
}

impl AccountingRow {
    /// Relative error of the literal reading vs simulation.
    pub fn literal_error(&self) -> f64 {
        (self.literal_ms - self.sim_ms).abs() / self.sim_ms
    }

    /// Relative error of the single-queue reading vs simulation.
    pub fn single_error(&self) -> f64 {
        (self.single_ms - self.sim_ms).abs() / self.sim_ms
    }
}

/// The `ablation-accounting` experiment (Case 1, non-blocking,
/// M = 1024).
pub fn run_ablation_accounting(opts: &RunOptions) -> Result<Vec<AccountingRow>, ModelError> {
    let mut rows = Vec::new();
    for &c in &PAPER_CLUSTER_COUNTS {
        let sys = SystemConfig::paper_preset(Scenario::Case1, c, Architecture::NonBlocking)?
            .with_lambda(opts.lambda_per_us);
        let literal =
            AnalyticalModel::evaluate(&sys.with_accounting(QueueAccounting::PaperLiteral))?
                .latency
                .mean_message_latency_ms();
        let single = AnalyticalModel::evaluate(&sys.with_accounting(QueueAccounting::SingleQueue))?
            .latency
            .mean_message_latency_ms();
        let sim = simcache::flow_run(
            &SimConfig::new(sys)
                .with_messages(opts.messages)
                .with_warmup(opts.warmup)
                .with_seed(opts.seed)
                .with_quantiles(false)
                .with_center_stats(false),
        )?
        .mean_latency_ms();
        rows.push(AccountingRow {
            clusters: c,
            literal_ms: literal,
            single_ms: single,
            sim_ms: sim,
        });
    }
    Ok(rows)
}

/// One row of the hop-model ablation (blocking architecture).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopsRow {
    /// Cluster count.
    pub clusters: usize,
    /// Analysis with the paper's `(k+1)/3` hop average (ms).
    pub paper_analysis_ms: f64,
    /// Analysis with the exact mean hop count (ms).
    pub exact_analysis_ms: f64,
    /// Simulation with the paper hop model (ms).
    pub paper_sim_ms: f64,
    /// Simulation with the exact hop model (ms).
    pub exact_sim_ms: f64,
}

/// The `ablation-hops` experiment (Case 1, blocking, M = 1024).
pub fn run_ablation_hops(opts: &RunOptions) -> Result<Vec<HopsRow>, ModelError> {
    let mut rows = Vec::new();
    for &c in &PAPER_CLUSTER_COUNTS {
        let base = SystemConfig::paper_preset(Scenario::Case1, c, Architecture::Blocking)?
            .with_lambda(opts.lambda_per_us);
        let mut row = HopsRow {
            clusters: c,
            paper_analysis_ms: 0.0,
            exact_analysis_ms: 0.0,
            paper_sim_ms: 0.0,
            exact_sim_ms: 0.0,
        };
        for (hop, analysis_slot, sim_slot) in
            [(HopModel::PaperAverage, 0usize, 0usize), (HopModel::ExactMean, 1, 1)]
        {
            let sys = base.with_hop_model(hop);
            let analysis = AnalyticalModel::evaluate(&sys)?.latency.mean_message_latency_ms();
            let sim = simcache::flow_run(
                &SimConfig::new(sys)
                    .with_messages(opts.messages)
                    .with_warmup(opts.warmup)
                    .with_seed(opts.seed)
                    .with_quantiles(false)
                    .with_center_stats(false),
            )?
            .mean_latency_ms();
            if analysis_slot == 0 {
                row.paper_analysis_ms = analysis;
            } else {
                row.exact_analysis_ms = analysis;
            }
            if sim_slot == 0 {
                row.paper_sim_ms = sim;
            } else {
                row.exact_sim_ms = sim;
            }
        }
        rows.push(row);
    }
    Ok(rows)
}

/// One row of the service-distribution ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceRow {
    /// Human-readable service-model name.
    pub model: &'static str,
    /// Squared coefficient of variation of the model.
    pub scv: f64,
    /// Analysis latency (ms).
    pub analysis_ms: f64,
    /// Simulation latency (ms).
    pub sim_ms: f64,
}

/// The `ablation-service` experiment: how the exponential-service
/// assumption (§5.2) affects latency, at C = 16, Case 1, non-blocking.
pub fn run_ablation_service(opts: &RunOptions) -> Result<Vec<ServiceRow>, ModelError> {
    let models: [(&'static str, ServiceTimeModel); 4] = [
        ("deterministic", ServiceTimeModel::Deterministic),
        ("erlang-4", ServiceTimeModel::Erlang(4)),
        ("exponential (paper)", ServiceTimeModel::Exponential),
        ("hyper-exp scv=4", ServiceTimeModel::HyperExponential(4.0)),
    ];
    let mut rows = Vec::new();
    for (name, model) in models {
        let sys = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking)?
            .with_lambda(opts.lambda_per_us)
            .with_service_model(model);
        let analysis = AnalyticalModel::evaluate(&sys)?.latency.mean_message_latency_ms();
        let sim = simcache::flow_run(
            &SimConfig::new(sys)
                .with_messages(opts.messages)
                .with_warmup(opts.warmup)
                .with_seed(opts.seed)
                .with_quantiles(false)
                .with_center_stats(false),
        )?
        .mean_latency_ms();
        rows.push(ServiceRow { model: name, scv: model.scv(), analysis_ms: analysis, sim_ms: sim });
    }
    Ok(rows)
}

/// One row of the packet-level validation experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketRow {
    /// Cluster count.
    pub clusters: usize,
    /// Analysis latency (ms).
    pub analysis_ms: f64,
    /// Flow-level simulation latency (ms).
    pub flow_ms: f64,
    /// Packet-level simulation latency (ms).
    pub packet_ms: f64,
}

/// The `packet-validation` experiment: all three fidelity levels side
/// by side (Case 1, non-blocking, M = 1024).
pub fn run_packet_validation(opts: &RunOptions) -> Result<Vec<PacketRow>, ModelError> {
    let mut rows = Vec::new();
    for &c in &[1usize, 4, 16, 64, 256] {
        let sys = SystemConfig::paper_preset(Scenario::Case1, c, Architecture::NonBlocking)?
            .with_lambda(opts.lambda_per_us);
        let analysis = AnalyticalModel::evaluate(&sys)?.latency.mean_message_latency_ms();
        let sim_cfg = SimConfig::new(sys)
            .with_messages(opts.messages)
            .with_warmup(opts.warmup)
            .with_seed(opts.seed)
            .with_quantiles(false)
            .with_center_stats(false);
        let flow = simcache::flow_run(&sim_cfg)?.mean_latency_ms();
        let packet = simcache::packet_run(&sim_cfg)?.mean_latency_ms();
        rows.push(PacketRow {
            clusters: c,
            analysis_ms: analysis,
            flow_ms: flow,
            packet_ms: packet,
        });
    }
    Ok(rows)
}

/// One row of the Cluster-of-Clusters validation experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CocValidationRow {
    /// Human-readable system description.
    pub system: &'static str,
    /// Analysis latency (ms).
    pub analysis_ms: f64,
    /// Simulation latency (ms).
    pub sim_ms: f64,
    /// Analysis effective per-processor rate (msg/µs).
    pub analysis_lambda_eff: f64,
    /// Simulated effective per-processor rate (msg/µs).
    pub sim_lambda_eff: f64,
}

impl CocValidationRow {
    /// Relative latency error of the analysis vs simulation.
    pub fn latency_error(&self) -> f64 {
        (self.analysis_ms - self.sim_ms).abs() / self.sim_ms
    }
}

/// The `coc` experiment: validates the Cluster-of-Clusters future-work
/// model against its dedicated simulator on three federations.
pub fn run_coc_validation(opts: &RunOptions) -> Result<Vec<CocValidationRow>, ModelError> {
    use hmcs_core::cluster_of_clusters::{self, ClusterSpec, CocConfig};
    use hmcs_core::config::{QueueAccounting, ServiceTimeModel};
    use hmcs_sim::coc::{CocSimConfig, CocSimulator};
    use hmcs_topology::switch::SwitchFabric;

    let mk = |clusters: Vec<ClusterSpec>| CocConfig {
        clusters,
        icn2: NetworkTechnology::GIGABIT_ETHERNET,
        switch: SwitchFabric::paper_default(),
        architecture: Architecture::NonBlocking,
        message_bytes: 1024,
        lambda_per_us: opts.lambda_per_us,
        accounting: QueueAccounting::SingleQueue,
        service_model: ServiceTimeModel::Exponential,
    };
    let systems: [(&'static str, CocConfig); 3] = [
        (
            "2 equal GE clusters (128+128)",
            mk(vec![
                ClusterSpec {
                    nodes: 128,
                    icn1: NetworkTechnology::GIGABIT_ETHERNET,
                    ecn1: NetworkTechnology::GIGABIT_ETHERNET,
                };
                2
            ]),
        ),
        (
            "asymmetric sizes (192+64)",
            mk(vec![
                ClusterSpec {
                    nodes: 192,
                    icn1: NetworkTechnology::GIGABIT_ETHERNET,
                    ecn1: NetworkTechnology::GIGABIT_ETHERNET,
                },
                ClusterSpec {
                    nodes: 64,
                    icn1: NetworkTechnology::FAST_ETHERNET,
                    ecn1: NetworkTechnology::FAST_ETHERNET,
                },
            ]),
        ),
        (
            "LLNL-like 4 clusters (128/96/64/16)",
            mk(vec![
                ClusterSpec {
                    nodes: 128,
                    icn1: NetworkTechnology::MYRINET,
                    ecn1: NetworkTechnology::GIGABIT_ETHERNET,
                },
                ClusterSpec {
                    nodes: 96,
                    icn1: NetworkTechnology::MYRINET,
                    ecn1: NetworkTechnology::GIGABIT_ETHERNET,
                },
                ClusterSpec {
                    nodes: 64,
                    icn1: NetworkTechnology::INFINIBAND,
                    ecn1: NetworkTechnology::GIGABIT_ETHERNET,
                },
                ClusterSpec {
                    nodes: 16,
                    icn1: NetworkTechnology::FAST_ETHERNET,
                    ecn1: NetworkTechnology::FAST_ETHERNET,
                },
            ]),
        ),
    ];
    let mut rows = Vec::new();
    for (name, cfg) in systems {
        let analysis = cluster_of_clusters::evaluate(&cfg)?;
        let sim = CocSimulator::run(
            &CocSimConfig::new(cfg)
                .with_messages(opts.messages)
                .with_warmup(opts.warmup)
                .with_seed(opts.seed)
                .with_quantiles(false)
                .with_center_stats(false),
        )?;
        rows.push(CocValidationRow {
            system: name,
            analysis_ms: analysis.mean_message_latency_us / 1e3,
            sim_ms: sim.mean_latency_ms(),
            analysis_lambda_eff: analysis.lambda_eff,
            sim_lambda_eff: sim.effective_lambda_per_us,
        });
    }
    Ok(rows)
}

/// One row of the operational-bounds experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsRow {
    /// Cluster count.
    pub clusters: usize,
    /// Total service demand per message cycle (µs).
    pub d_total_us: f64,
    /// Bottleneck station demand (µs).
    pub d_max_us: f64,
    /// Saturation population N* = (d_total + Z)/d_max.
    pub saturation_population: f64,
    /// Operational upper bound on the effective per-processor rate.
    pub bound_lambda_eff: f64,
    /// The paper model's effective rate (eq. 7).
    pub model_lambda_eff: f64,
    /// Simulated effective rate.
    pub sim_lambda_eff: f64,
}

/// The `bounds` experiment: distribution-free operational bounds
/// (asymptotic bound analysis) versus the paper's fixed point and the
/// simulator, Case 1 non-blocking.
pub fn run_bounds(opts: &RunOptions) -> Result<Vec<BoundsRow>, ModelError> {
    use hmcs_core::routing::external_probability;
    use hmcs_core::service::ServiceTimes;
    use hmcs_queueing::operational;

    let mut rows = Vec::new();
    for &c in &PAPER_CLUSTER_COUNTS {
        let sys = SystemConfig::paper_preset(Scenario::Case1, c, Architecture::NonBlocking)?
            .with_lambda(opts.lambda_per_us);
        let st = ServiceTimes::compute(&sys)?;
        let p = external_probability(sys.clusters, sys.nodes_per_cluster);
        let n = sys.total_nodes() as f64;
        let cf = sys.clusters as f64;
        // Per-station demands (symmetric stations share the per-class
        // load evenly across the C clusters).
        let d_icn1 = (1.0 - p) * st.icn1_us / cf;
        let d_ecn1 = 2.0 * p * st.ecn1_us / cf;
        let d_icn2 = p * st.icn2_us;
        let d_total = cf * (d_icn1 + d_ecn1) + d_icn2;
        let d_max = d_icn1.max(d_ecn1).max(d_icn2);
        let z = 1.0 / sys.lambda_per_us;
        let x_bound = operational::throughput_upper_bound(n, d_total, d_max, z);
        let model = AnalyticalModel::evaluate(&sys)?;
        let sim_lambda = if opts.with_simulation {
            simcache::flow_run(
                &SimConfig::new(sys)
                    .with_messages(opts.messages)
                    .with_warmup(opts.warmup)
                    .with_seed(opts.seed)
                    .with_quantiles(false)
                    .with_center_stats(false),
            )?
            .effective_lambda_per_us
        } else {
            f64::NAN
        };
        rows.push(BoundsRow {
            clusters: c,
            d_total_us: d_total,
            d_max_us: d_max,
            saturation_population: operational::saturation_population(d_total, d_max, z),
            bound_lambda_eff: x_bound / n,
            model_lambda_eff: model.equilibrium.lambda_eff,
            sim_lambda_eff: sim_lambda,
        });
    }
    Ok(rows)
}

/// One row of Table 1 (network scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Case label.
    pub case: &'static str,
    /// ICN1 technology name.
    pub icn1: &'static str,
    /// ECN1/ICN2 technology name.
    pub ecn1_icn2: &'static str,
}

/// Regenerates Table 1 from the scenario presets.
pub fn table1() -> Vec<Table1Row> {
    [Scenario::Case1, Scenario::Case2]
        .iter()
        .map(|s| Table1Row { case: s.label(), icn1: s.icn1().name, ecn1_icn2: s.ecn1().name })
        .collect()
}

/// One row of Table 2 (model parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Parameter name.
    pub item: &'static str,
    /// Value as rendered in the paper.
    pub quantity: String,
    /// Unit.
    pub unit: &'static str,
}

/// Regenerates Table 2 from the presets actually used by the code.
pub fn table2() -> Vec<Table2Row> {
    let ge = NetworkTechnology::GIGABIT_ETHERNET;
    let fe = NetworkTechnology::FAST_ETHERNET;
    let sw = hmcs_topology::switch::SwitchFabric::paper_default();
    vec![
        Table2Row { item: "GE Latency", quantity: format!("{}", ge.latency_us), unit: "µs" },
        Table2Row {
            item: "GE Bandwidth",
            quantity: format!("{}", ge.bandwidth_mb_s),
            unit: "MB/s",
        },
        Table2Row { item: "FE Latency", quantity: format!("{}", fe.latency_us), unit: "µs" },
        Table2Row {
            item: "FE Bandwidth",
            quantity: format!("{}", fe.bandwidth_mb_s),
            unit: "MB/s",
        },
        Table2Row {
            item: "# of Ports in Switch Fabric (Pr)",
            quantity: format!("{}", sw.ports()),
            unit: "Port",
        },
        Table2Row { item: "Switch Latency", quantity: format!("{}", sw.latency_us()), unit: "µs" },
        Table2Row {
            item: "Msg. Generation rate (lambda)",
            quantity: "0.25".to_string(),
            unit: "/ms (figure-scale reading; Table 2 prints /s)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> RunOptions {
        RunOptions { messages: 1_500, warmup: 300, ..Default::default() }
    }

    fn analysis_only() -> RunOptions {
        RunOptions { with_simulation: false, ..Default::default() }
    }

    #[test]
    fn figure_runner_covers_the_axis() {
        let data = run_figure(FIG4, &analysis_only()).unwrap();
        assert_eq!(data.rows.len(), 9);
        assert_eq!(data.rows[0].clusters, 1);
        assert_eq!(data.rows[8].clusters, 256);
        for row in &data.rows {
            assert!(row.analysis_512_ms > 0.0);
            assert!(row.analysis_1024_ms > row.analysis_512_ms);
            assert!(row.sim_512_ms.is_none());
        }
    }

    #[test]
    fn figure_with_simulation_fills_both_columns() {
        let data = run_figure(FIG4, &fast()).unwrap();
        for row in &data.rows {
            assert!(row.sim_512_ms.unwrap() > 0.0);
            assert!(row.sim_1024_ms.unwrap() > 0.0);
            assert!(row.worst_relative_error().unwrap() < 0.30);
        }
    }

    #[test]
    fn blocking_figures_dominate_nonblocking_figures() {
        let nb = run_figure(FIG4, &analysis_only()).unwrap();
        let bl = run_figure(FIG6, &analysis_only()).unwrap();
        for (a, b) in nb.rows.iter().zip(&bl.rows) {
            assert!(b.analysis_1024_ms > a.analysis_1024_ms, "C={}", a.clusters);
        }
    }

    #[test]
    fn claims_blocking_always_slower_and_mostly_in_paper_band() {
        let rows = run_claims(&analysis_only()).unwrap();
        assert_eq!(rows.len(), 18);
        for row in &rows {
            assert!(
                row.ratio() > 1.0,
                "{:?} C={}: blocking must be slower, ratio {}",
                row.scenario,
                row.clusters,
                row.ratio()
            );
        }
        // The paper reports 1.4x-3.1x; under our throttled equilibrium
        // the spread is wider (saturation amplifies the blocking
        // penalty at large C), but the bulk of the grid clears the
        // paper's 1.4x floor.
        let above_floor = rows.iter().filter(|r| r.ratio() >= 1.4).count();
        assert!(above_floor >= 16, "expected most ratios above 1.4x, got {above_floor}/18");
        let max = rows.iter().map(|r| r.ratio()).fold(0.0f64, f64::max);
        assert!(max > 3.0, "the upper end should reach the paper's 3.1x, got {max}");
    }

    #[test]
    fn accounting_ablation_shows_the_finding() {
        let opts = RunOptions { messages: 2_500, warmup: 500, ..Default::default() };
        let rows = run_ablation_accounting(&opts).unwrap();
        let c2 = rows.iter().find(|r| r.clusters == 2).unwrap();
        assert!(c2.literal_error() > 0.25, "literal should diverge at C=2");
        assert!(c2.single_error() < 0.10, "single-queue should track simulation");
    }

    #[test]
    fn coc_validation_agrees() {
        let opts = RunOptions { messages: 3_000, warmup: 600, ..Default::default() };
        let rows = run_coc_validation(&opts).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.latency_error() < 0.10,
                "{}: analysis {} vs sim {}",
                r.system,
                r.analysis_ms,
                r.sim_ms
            );
        }
    }

    #[test]
    fn bounds_envelope_model_and_simulation() {
        let opts = RunOptions { messages: 2_000, warmup: 400, ..Default::default() };
        let rows = run_bounds(&opts).unwrap();
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.model_lambda_eff <= r.bound_lambda_eff * 1.001,
                "C={}: model {:.3e} exceeds bound {:.3e}",
                r.clusters,
                r.model_lambda_eff,
                r.bound_lambda_eff
            );
            // Finite runs start from an empty system, so the ramp-up
            // window inflates delivered/time a few percent above the
            // steady-state bound (the paper's own 10,000-message runs
            // share this bias); allow 10%.
            assert!(
                r.sim_lambda_eff <= r.bound_lambda_eff * 1.10,
                "C={}: sim {:.3e} exceeds bound {:.3e}",
                r.clusters,
                r.sim_lambda_eff,
                r.bound_lambda_eff
            );
            assert!(r.d_max_us > 0.0 && r.d_total_us >= r.d_max_us);
        }
        // At saturation (large C) the bound is nearly tight for the
        // model.
        let last = rows.last().unwrap();
        assert!(last.model_lambda_eff > 0.9 * last.bound_lambda_eff);
    }

    #[test]
    fn table_rows_match_the_paper() {
        let t1 = table1();
        assert_eq!(t1[0].icn1, "Gigabit Ethernet");
        assert_eq!(t1[0].ecn1_icn2, "Fast Ethernet");
        assert_eq!(t1[1].icn1, "Fast Ethernet");
        let t2 = table2();
        assert_eq!(t2.len(), 7);
        assert_eq!(t2[0].quantity, "80");
        assert_eq!(t2[4].quantity, "24");
    }

    #[test]
    fn service_ablation_orders_by_scv() {
        let opts = RunOptions { messages: 2_000, warmup: 400, ..Default::default() };
        let rows = run_ablation_service(&opts).unwrap();
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(w[0].scv < w[1].scv);
            assert!(w[0].analysis_ms < w[1].analysis_ms, "analysis latency must grow with SCV");
        }
    }
}
