//! Golden-artefact regression checking.
//!
//! `reproduce check DIR` compares every CSV that `reproduce all --csv`
//! writes against the committed goldens in `results/`, cell by cell,
//! under per-column tolerances declared in `results/GOLDEN.toml`.
//! Analysis columns are deterministic and carry tight relative
//! tolerances; simulation columns carry tolerances calibrated against
//! the reduced CI budget ([`hmcs_sim::replication::SimBudget::Ci`]),
//! so the check passes on an honest run and fails loudly when the
//! solver, QNA back-off, or topology service-time formulas drift.
//!
//! Like `manifest.rs`, the workspace is offline/vendored-only, so the
//! spec is read by a hand-rolled parser for the TOML subset the spec
//! actually uses: comments, `[section]` / `[section.sub]` headers, and
//! `key = "value"` pairs with bare or quoted keys.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// Schema identifier required in every GOLDEN.toml.
pub const GOLDEN_SCHEMA: &str = "hmcs-golden/1";

// ---------------------------------------------------------------------
// Tolerances
// ---------------------------------------------------------------------

/// How one column's cells may differ from the golden value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Cells must match as strings, byte for byte.
    Exact,
    /// Column is not compared at all.
    Ignore,
    /// Numeric comparison: a candidate `x` matches a golden `g` when
    /// `|x − g| ≤ abs + rel·|g|`. Cells are parsed as numbers with an
    /// optional trailing `%` (stripped, *not* rescaled, so an `abs`
    /// tolerance on a percentage column is in percentage points).
    Numeric {
        /// Relative slack as a fraction of the golden magnitude.
        rel: f64,
        /// Absolute slack in the column's own units.
        abs: f64,
    },
}

impl Tolerance {
    /// Parses a tolerance spec string: `"exact"`, `"ignore"`, or any
    /// combination of `rel X` / `abs Y` where `X` may carry a trailing
    /// `%` (`"rel 0.5%"`, `"abs 10"`, `"rel 15% abs 0.05"`).
    pub fn parse(spec: &str) -> Result<Tolerance, String> {
        let tokens: Vec<&str> = spec.split_whitespace().collect();
        match tokens.as_slice() {
            ["exact"] => return Ok(Tolerance::Exact),
            ["ignore"] => return Ok(Tolerance::Ignore),
            [] => return Err("empty tolerance spec".to_string()),
            _ => {}
        }
        let mut rel = 0.0;
        let mut abs = 0.0;
        let mut it = tokens.iter();
        while let Some(kind) = it.next() {
            let value =
                it.next().ok_or_else(|| format!("tolerance {spec:?}: {kind} needs a value"))?;
            let (digits, percent) = match value.strip_suffix('%') {
                Some(d) => (d, true),
                None => (*value, false),
            };
            let mut x: f64 =
                digits.parse().map_err(|_| format!("tolerance {spec:?}: bad number {value:?}"))?;
            if percent {
                x /= 100.0;
            }
            if !x.is_finite() || x < 0.0 {
                return Err(format!("tolerance {spec:?}: value must be finite and >= 0"));
            }
            match *kind {
                "rel" => rel = x,
                "abs" => abs = x,
                other => return Err(format!("tolerance {spec:?}: unknown kind {other:?}")),
            }
        }
        Ok(Tolerance::Numeric { rel, abs })
    }
}

/// Parses a CSV cell as a number, accepting a trailing `%` (stripped,
/// not rescaled) so error columns like `"2.5%"` compare numerically.
pub fn parse_cell(cell: &str) -> Option<f64> {
    let trimmed = cell.trim();
    let digits = trimmed.strip_suffix('%').unwrap_or(trimmed);
    let x: f64 = digits.trim().parse().ok()?;
    x.is_finite().then_some(x)
}

// ---------------------------------------------------------------------
// GOLDEN.toml — spec model and TOML-subset parser
// ---------------------------------------------------------------------

/// Tolerance declaration for one golden CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtefactSpec {
    /// CSV stem: `<name>.csv` in both the golden and candidate dirs.
    pub name: String,
    /// Column whose value labels rows in diff output (optional).
    pub key: Option<String>,
    /// Tolerance for columns without an explicit entry.
    pub default: Tolerance,
    /// Per-column overrides, `(header, tolerance)`.
    pub columns: Vec<(String, Tolerance)>,
}

impl ArtefactSpec {
    fn tolerance_for(&self, column: &str) -> Tolerance {
        self.columns
            .iter()
            .find(|(name, _)| name == column)
            .map(|(_, t)| *t)
            .unwrap_or(self.default)
    }
}

/// The parsed GOLDEN.toml: one [`ArtefactSpec`] per checked CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenSpec {
    /// All artefact sections, in file order.
    pub artefacts: Vec<ArtefactSpec>,
}

impl GoldenSpec {
    /// Looks up an artefact section by CSV stem.
    pub fn artefact(&self, name: &str) -> Option<&ArtefactSpec> {
        self.artefacts.iter().find(|a| a.name == name)
    }
}

/// One `key = value` line of the TOML subset (only strings appear in
/// GOLDEN.toml, but numbers/bools parse so error messages stay sane).
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    Num(f64),
    Bool(bool),
}

/// Splits a section header path like `fig4.columns` on unquoted dots.
fn split_section_path(path: &str, line_no: usize) -> Result<Vec<String>, String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut chars = path.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                for q in chars.by_ref() {
                    if q == '"' {
                        break;
                    }
                    current.push(q);
                }
            }
            '.' => {
                parts.push(current.trim().to_string());
                current.clear();
            }
            c => current.push(c),
        }
    }
    parts.push(current.trim().to_string());
    if parts.iter().any(String::is_empty) {
        return Err(format!("line {line_no}: empty segment in section [{path}]"));
    }
    Ok(parts)
}

/// Parses one raw key token (bare or `"quoted"`).
fn parse_key(raw: &str, line_no: usize) -> Result<String, String> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| format!("line {line_no}: unterminated quoted key"))?;
        Ok(inner.to_string())
    } else if raw.is_empty() {
        Err(format!("line {line_no}: empty key"))
    } else if raw.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-')) {
        Ok(raw.to_string())
    } else {
        Err(format!("line {line_no}: bare key {raw:?} needs quoting"))
    }
}

fn parse_value(raw: &str, line_no: usize) -> Result<TomlValue, String> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| format!("line {line_no}: unterminated string value"))?;
        if inner.contains('"') {
            return Err(format!("line {line_no}: escaped quotes are not supported"));
        }
        return Ok(TomlValue::Str(inner.to_string()));
    }
    match raw {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    raw.parse::<f64>().map(TomlValue::Num).map_err(|_| format!("line {line_no}: bad value {raw:?}"))
}

/// Splits `key = value` at the first `=` outside quotes (column names
/// like `"sim M=512 (ms)"` contain a literal `=`).
fn split_key_value(line: &str, line_no: usize) -> Result<(&str, &str), String> {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '=' if !in_string => return Ok((&line[..i], &line[i + 1..])),
            _ => {}
        }
    }
    Err(format!("line {line_no}: expected `key = value`"))
}

/// Strips a trailing comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a GOLDEN.toml document.
///
/// Accepted TOML subset: `#` comments, `[artefact]` and
/// `[artefact.columns]` section headers, and `key = value` pairs where
/// keys are bare or double-quoted and values are double-quoted strings
/// (numbers and booleans parse but are rejected by the schema).
/// Duplicate sections, duplicate keys and unknown fields are errors —
/// a tolerance spec that silently ignores a typo is worse than none.
pub fn parse_spec(input: &str) -> Result<GoldenSpec, String> {
    let mut schema: Option<String> = None;
    let mut artefacts: Vec<ArtefactSpec> = Vec::new();
    // Current section path: empty (preamble), [name] or [name.columns].
    let mut section: Vec<String> = Vec::new();
    let mut seen_sections: BTreeSet<String> = BTreeSet::new();

    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| format!("line {line_no}: unterminated section header"))?;
            let path = split_section_path(header, line_no)?;
            if !seen_sections.insert(path.join("\u{1}")) {
                return Err(format!("line {line_no}: duplicate section [{header}]"));
            }
            match path.as_slice() {
                [name] => {
                    artefacts.push(ArtefactSpec {
                        name: name.clone(),
                        key: None,
                        default: Tolerance::Exact,
                        columns: Vec::new(),
                    });
                }
                [name, sub] if sub == "columns" => {
                    if artefacts.last().map(|a| &a.name) != Some(name) {
                        return Err(format!(
                            "line {line_no}: [{name}.columns] must follow [{name}]"
                        ));
                    }
                }
                _ => return Err(format!("line {line_no}: unsupported section [{header}]")),
            }
            section = path;
            continue;
        }
        let (raw_key, raw_value) = split_key_value(line, line_no)?;
        let key = parse_key(raw_key, line_no)?;
        let value = parse_value(raw_value, line_no)?;
        let string_value = |what: &str| -> Result<String, String> {
            match &value {
                TomlValue::Str(s) => Ok(s.clone()),
                other => Err(format!("line {line_no}: {what} must be a string, got {other:?}")),
            }
        };
        match section.len() {
            0 => match key.as_str() {
                "schema" => {
                    if schema.is_some() {
                        return Err(format!("line {line_no}: duplicate \"schema\""));
                    }
                    schema = Some(string_value("schema")?);
                }
                other => return Err(format!("line {line_no}: unknown top-level key {other:?}")),
            },
            1 => {
                let artefact = artefacts.last_mut().expect("section implies artefact");
                match key.as_str() {
                    "key" => {
                        if artefact.key.is_some() {
                            return Err(format!("line {line_no}: duplicate \"key\""));
                        }
                        artefact.key = Some(string_value("key")?);
                    }
                    "default" => {
                        artefact.default = Tolerance::parse(&string_value("default")?)
                            .map_err(|e| format!("line {line_no}: {e}"))?;
                    }
                    other => {
                        return Err(format!(
                            "line {line_no}: unknown key {other:?} in [{}]",
                            artefact.name
                        ))
                    }
                }
            }
            _ => {
                let artefact = artefacts.last_mut().expect("section implies artefact");
                if artefact.columns.iter().any(|(name, _)| *name == key) {
                    return Err(format!("line {line_no}: duplicate column {key:?}"));
                }
                let tolerance = Tolerance::parse(&string_value("column tolerance")?)
                    .map_err(|e| format!("line {line_no}: {e}"))?;
                artefact.columns.push((key, tolerance));
            }
        }
    }

    match schema.as_deref() {
        Some(GOLDEN_SCHEMA) => {}
        Some(other) => return Err(format!("schema {other:?}, expected {GOLDEN_SCHEMA:?}")),
        None => return Err(format!("missing `schema = \"{GOLDEN_SCHEMA}\"`")),
    }
    if artefacts.is_empty() {
        return Err("spec declares no artefact sections".to_string());
    }
    Ok(GoldenSpec { artefacts })
}

// ---------------------------------------------------------------------
// CSV model
// ---------------------------------------------------------------------

/// A parsed CSV file: headers plus rows of string cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Header row.
    pub headers: Vec<String>,
    /// Data rows, each the same length as `headers`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Index of a header, by exact name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == name)
    }
}

/// Parses CSV as written by [`crate::report::write_csv`]: `,`
/// separators, `"` quoting with `""` escapes, one record per line.
pub fn parse_csv(input: &str) -> Result<Table, String> {
    let mut records: Vec<Vec<String>> = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut chars = line.chars().peekable();
        let mut quoted = false;
        loop {
            match chars.next() {
                None => break,
                Some('"') if field.is_empty() && !quoted => quoted = true,
                Some('"') if quoted => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        quoted = false;
                    }
                }
                Some(',') if !quoted => {
                    fields.push(std::mem::take(&mut field));
                }
                Some(c) => field.push(c),
            }
        }
        if quoted {
            return Err(format!("row {}: unterminated quoted field", idx + 1));
        }
        fields.push(field);
        records.push(fields);
    }
    let mut it = records.into_iter();
    let headers = it.next().ok_or("empty CSV")?;
    let rows: Vec<Vec<String>> = it.collect();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != headers.len() {
            return Err(format!(
                "row {}: {} fields, header has {}",
                i + 2,
                row.len(),
                headers.len()
            ));
        }
    }
    Ok(Table { headers, rows })
}

/// Reads and parses one CSV file.
pub fn read_csv(path: &Path) -> Result<Table, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_csv(&text).map_err(|e| format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------

/// One cell (or structural) mismatch between golden and candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// CSV stem the diff is in.
    pub artefact: String,
    /// Row label: the key column's value, or `row N`.
    pub row: String,
    /// Column header (empty for structural diffs).
    pub column: String,
    /// Golden cell contents (or structural description).
    pub golden: String,
    /// Candidate cell contents (or structural description).
    pub got: String,
    /// Human-readable description of the violated tolerance.
    pub allowed: String,
}

impl CellDiff {
    fn render(&self) -> String {
        format!(
            "{}.csv [{}] {:?}: golden {:?}, got {:?} ({})",
            self.artefact, self.row, self.column, self.golden, self.got, self.allowed
        )
    }
}

/// Outcome of diffing one artefact.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// CSV stem.
    pub artefact: String,
    /// Cells compared (excluding ignored columns).
    pub cells_checked: usize,
    /// Mismatches found.
    pub diffs: Vec<CellDiff>,
}

fn structural(artefact: &str, golden: String, got: String, what: &str) -> CellDiff {
    CellDiff {
        artefact: artefact.to_string(),
        row: "-".to_string(),
        column: String::new(),
        golden,
        got,
        allowed: what.to_string(),
    }
}

/// Diffs a candidate table against its golden under `spec`.
pub fn diff_tables(spec: &ArtefactSpec, golden: &Table, candidate: &Table) -> DiffReport {
    let mut report =
        DiffReport { artefact: spec.name.clone(), cells_checked: 0, diffs: Vec::new() };
    if golden.headers != candidate.headers {
        report.diffs.push(structural(
            &spec.name,
            golden.headers.join(","),
            candidate.headers.join(","),
            "headers must match exactly",
        ));
        return report;
    }
    if golden.rows.len() != candidate.rows.len() {
        report.diffs.push(structural(
            &spec.name,
            format!("{} rows", golden.rows.len()),
            format!("{} rows", candidate.rows.len()),
            "row counts must match",
        ));
        return report;
    }
    let key_col = spec.key.as_deref().and_then(|k| golden.column(k));
    let tolerances: Vec<Tolerance> = golden.headers.iter().map(|h| spec.tolerance_for(h)).collect();
    for (row_idx, (g_row, c_row)) in golden.rows.iter().zip(&candidate.rows).enumerate() {
        let row_label = match key_col {
            Some(k) => format!("{}={}", golden.headers[k], g_row[k]),
            None => format!("row {}", row_idx + 1),
        };
        for (col_idx, (g, c)) in g_row.iter().zip(c_row).enumerate() {
            let tolerance = tolerances[col_idx];
            if tolerance == Tolerance::Ignore {
                continue;
            }
            report.cells_checked += 1;
            if g == c {
                continue;
            }
            let mut push = |allowed: String| {
                report.diffs.push(CellDiff {
                    artefact: spec.name.clone(),
                    row: row_label.clone(),
                    column: golden.headers[col_idx].clone(),
                    golden: g.clone(),
                    got: c.clone(),
                    allowed,
                });
            };
            match tolerance {
                Tolerance::Ignore => unreachable!("filtered above"),
                Tolerance::Exact => push("exact match required".to_string()),
                Tolerance::Numeric { rel, abs } => match (parse_cell(g), parse_cell(c)) {
                    (Some(gv), Some(cv)) => {
                        let allowed = abs + rel * gv.abs();
                        let delta = (cv - gv).abs();
                        if delta > allowed {
                            push(format!("|Δ| {delta:.6} > allowed {allowed:.6}"));
                        }
                    }
                    _ => push("cells not numeric and not equal".to_string()),
                },
            }
        }
    }
    report
}

/// Result of checking a whole candidate directory against the goldens.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Per-artefact outcomes, in spec order.
    pub artefacts: Vec<DiffReport>,
}

impl CheckReport {
    /// Total mismatches across all artefacts.
    pub fn total_diffs(&self) -> usize {
        self.artefacts.iter().map(|a| a.diffs.len()).sum()
    }

    /// True when every artefact matched within tolerance.
    pub fn passed(&self) -> bool {
        self.total_diffs() == 0
    }

    /// Renders the per-cell diff report (capped at `max_per_artefact`
    /// lines per artefact) plus a one-line summary.
    pub fn render(&self, max_per_artefact: usize) -> String {
        let mut out = String::new();
        for report in &self.artefacts {
            let status = if report.diffs.is_empty() { "ok" } else { "FAIL" };
            let _ = writeln!(
                out,
                "{status:>4}  {}.csv — {} cells checked, {} diff(s)",
                report.artefact,
                report.cells_checked,
                report.diffs.len()
            );
            for diff in report.diffs.iter().take(max_per_artefact) {
                let _ = writeln!(out, "      {}", diff.render());
            }
            if report.diffs.len() > max_per_artefact {
                let _ = writeln!(out, "      … and {} more", report.diffs.len() - max_per_artefact);
            }
        }
        let _ = writeln!(
            out,
            "golden check: {} artefact(s), {} diff(s) — {}",
            self.artefacts.len(),
            self.total_diffs(),
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Loads `GOLDEN.toml` from `golden_dir` and diffs every declared
/// artefact CSV in `candidate_dir` against its golden counterpart.
pub fn check_dir(golden_dir: &Path, candidate_dir: &Path) -> Result<CheckReport, String> {
    let spec_path = golden_dir.join("GOLDEN.toml");
    let spec_text =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("{}: {e}", spec_path.display()))?;
    let spec = parse_spec(&spec_text).map_err(|e| format!("{}: {e}", spec_path.display()))?;
    let mut artefacts = Vec::new();
    for artefact in &spec.artefacts {
        let golden = read_csv(&golden_dir.join(format!("{}.csv", artefact.name)))?;
        let candidate = read_csv(&candidate_dir.join(format!("{}.csv", artefact.name)))?;
        artefacts.push(diff_tables(artefact, &golden, &candidate));
    }
    Ok(CheckReport { artefacts })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
# demo spec
schema = "hmcs-golden/1"

[demo]
key = "clusters"
default = "rel 0.5%"

[demo.columns]
"clusters" = "exact"
"sim (ms)" = "rel 10% abs 0.05"
"note" = "ignore"
"#;

    fn table(rows: &[&[&str]]) -> Table {
        let headers =
            vec!["clusters".into(), "analysis (ms)".into(), "sim (ms)".into(), "note".into()];
        Table {
            headers,
            rows: rows.iter().map(|r| r.iter().map(|c| c.to_string()).collect()).collect(),
        }
    }

    #[test]
    fn tolerance_grammar() {
        assert_eq!(Tolerance::parse("exact").unwrap(), Tolerance::Exact);
        assert_eq!(Tolerance::parse("ignore").unwrap(), Tolerance::Ignore);
        assert_eq!(
            Tolerance::parse("rel 0.5%").unwrap(),
            Tolerance::Numeric { rel: 0.005, abs: 0.0 }
        );
        assert_eq!(Tolerance::parse("abs 10").unwrap(), Tolerance::Numeric { rel: 0.0, abs: 10.0 });
        assert_eq!(
            Tolerance::parse("rel 15% abs 0.05").unwrap(),
            Tolerance::Numeric { rel: 0.15, abs: 0.05 }
        );
        assert!(Tolerance::parse("").is_err());
        assert!(Tolerance::parse("rel").is_err());
        assert!(Tolerance::parse("rel x").is_err());
        assert!(Tolerance::parse("rel -1").is_err());
        assert!(Tolerance::parse("sideways 3").is_err());
    }

    #[test]
    fn spec_parses_and_resolves_tolerances() {
        let spec = parse_spec(SPEC).unwrap();
        let demo = spec.artefact("demo").unwrap();
        assert_eq!(demo.key.as_deref(), Some("clusters"));
        assert_eq!(demo.tolerance_for("clusters"), Tolerance::Exact);
        assert_eq!(demo.tolerance_for("sim (ms)"), Tolerance::Numeric { rel: 0.10, abs: 0.05 });
        assert_eq!(demo.tolerance_for("note"), Tolerance::Ignore);
        // Unlisted column falls back to the artefact default.
        assert_eq!(
            demo.tolerance_for("analysis (ms)"),
            Tolerance::Numeric { rel: 0.005, abs: 0.0 }
        );
    }

    #[test]
    fn spec_rejects_malformed_documents() {
        assert!(parse_spec("").is_err(), "missing schema");
        assert!(parse_spec("schema = \"other/9\"\n[a]\n").is_err(), "wrong schema");
        assert!(parse_spec("schema = \"hmcs-golden/1\"\n").is_err(), "no artefacts");
        let dup_section = "schema = \"hmcs-golden/1\"\n[a]\n[a]\n";
        assert!(parse_spec(dup_section).is_err(), "duplicate section");
        let dup_key = "schema = \"hmcs-golden/1\"\n[a]\nkey = \"x\"\nkey = \"y\"\n";
        assert!(parse_spec(dup_key).is_err(), "duplicate key");
        let dup_col =
            "schema = \"hmcs-golden/1\"\n[a]\n[a.columns]\n\"c\" = \"exact\"\n\"c\" = \"ignore\"\n";
        assert!(parse_spec(dup_col).is_err(), "duplicate column");
        let unknown = "schema = \"hmcs-golden/1\"\n[a]\nflavour = \"vanilla\"\n";
        assert!(parse_spec(unknown).is_err(), "unknown key");
        let orphan = "schema = \"hmcs-golden/1\"\n[a.columns]\n";
        assert!(parse_spec(orphan).is_err(), "columns before artefact");
        let unterminated = "schema = \"hmcs-golden/1\"\n[a\n";
        assert!(parse_spec(unterminated).is_err(), "unterminated header");
        let bad_value = "schema = \"hmcs-golden/1\"\n[a]\nkey = 7\n";
        assert!(parse_spec(bad_value).is_err(), "non-string value");
    }

    #[test]
    fn spec_accepts_comments_and_quoted_keys_with_hashes() {
        let spec =
            "schema = \"hmcs-golden/1\" # trailing\n[a]\n[a.columns]\n\"# of ports\" = \"exact\"\n";
        let parsed = parse_spec(spec).unwrap();
        assert_eq!(parsed.artefacts[0].columns[0].0, "# of ports");
    }

    #[test]
    fn csv_round_trips_through_report_writer() {
        let dir = std::env::temp_dir().join("hmcs_golden_csv_test");
        let path = dir.join("t.csv");
        crate::report::write_csv(
            &path,
            &["a", "b"],
            &[vec!["1,2".into(), "say \"hi\"".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let table = read_csv(&path).unwrap();
        assert_eq!(table.headers, vec!["a", "b"]);
        assert_eq!(table.rows[0], vec!["1,2", "say \"hi\""]);
        assert_eq!(table.rows[1], vec!["3", "4"]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn csv_rejects_ragged_and_unterminated_input() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("a,b\n1\n").is_err());
        assert!(parse_csv("a,b\n\"unterminated,2\n").is_err());
    }

    #[test]
    fn diff_passes_within_tolerance_and_fails_beyond() {
        let spec = parse_spec(SPEC).unwrap();
        let demo = spec.artefact("demo").unwrap();
        let golden = table(&[&["1", "10.000", "10.100", "x"]]);
        // sim within 10%+0.05, analysis within 0.5%, note ignored.
        let ok = table(&[&["1", "10.040", "11.000", "different-note"]]);
        let report = diff_tables(demo, &golden, &ok);
        assert!(report.diffs.is_empty(), "{:?}", report.diffs);
        assert_eq!(report.cells_checked, 3, "note column must be ignored");

        let bad = table(&[&["1", "10.060", "12.000", "x"]]);
        let report = diff_tables(demo, &golden, &bad);
        assert_eq!(report.diffs.len(), 2);
        assert_eq!(report.diffs[0].column, "analysis (ms)");
        assert_eq!(report.diffs[0].row, "clusters=1");
        assert!(report.diffs[0].allowed.contains("allowed"));
        assert_eq!(report.diffs[1].column, "sim (ms)");
    }

    #[test]
    fn diff_flags_structural_mismatches() {
        let spec = parse_spec(SPEC).unwrap();
        let demo = spec.artefact("demo").unwrap();
        let golden = table(&[&["1", "1", "1", "x"]]);
        let mut wrong_headers = golden.clone();
        wrong_headers.headers[1] = "renamed".into();
        assert_eq!(diff_tables(demo, &golden, &wrong_headers).diffs.len(), 1);
        let extra_row = table(&[&["1", "1", "1", "x"], &["2", "1", "1", "x"]]);
        let report = diff_tables(demo, &golden, &extra_row);
        assert_eq!(report.diffs.len(), 1);
        assert!(report.diffs[0].allowed.contains("row counts"));
    }

    #[test]
    fn percent_cells_compare_numerically() {
        assert_eq!(parse_cell("2.5%"), Some(2.5));
        assert_eq!(parse_cell(" 3.231e-5 "), Some(3.231e-5));
        assert_eq!(parse_cell("-"), None);
        assert_eq!(parse_cell("Gigabit Ethernet"), None);
        let spec = parse_spec("schema = \"hmcs-golden/1\"\n[e]\ndefault = \"abs 1.5\"\n").unwrap();
        let artefact = spec.artefact("e").unwrap();
        let golden = Table { headers: vec!["err".into()], rows: vec![vec!["2.5%".into()]] };
        let near = Table { headers: vec!["err".into()], rows: vec![vec!["3.9%".into()]] };
        let far = Table { headers: vec!["err".into()], rows: vec![vec!["4.1%".into()]] };
        assert!(diff_tables(artefact, &golden, &near).diffs.is_empty());
        assert_eq!(diff_tables(artefact, &golden, &far).diffs.len(), 1);
    }

    #[test]
    fn check_report_renders_and_caps() {
        let diff = CellDiff {
            artefact: "demo".into(),
            row: "clusters=2".into(),
            column: "sim (ms)".into(),
            golden: "1".into(),
            got: "2".into(),
            allowed: "|Δ| 1 > allowed 0.1".into(),
        };
        let report = CheckReport {
            artefacts: vec![DiffReport {
                artefact: "demo".into(),
                cells_checked: 5,
                diffs: vec![diff.clone(), diff],
            }],
        };
        assert!(!report.passed());
        let rendered = report.render(1);
        assert!(rendered.contains("FAIL"));
        assert!(rendered.contains("… and 1 more"));
        assert!(rendered.contains("clusters=2"));
    }
}
