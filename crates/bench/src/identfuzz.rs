//! Seeded round-trip fuzzing of the cluster-identification pass.
//!
//! [`crate::differential`] fuzzes *analysis vs simulation*; this module
//! fuzzes *generate vs identify*: a synthetic latency matrix with a
//! planted partition is handed to [`hmcs_core::identify`], which must
//! recover that partition bit-exactly. Cases are sampled inside the
//! identifier's guarantee region — band separation and jitter such
//! that the worst within-band latency ratio stays below the gap
//! threshold while the between-band ratio stays above it — so any
//! failure is a genuine identifier bug, not an ambiguous matrix.
//!
//! Failures are greedily shrunk (fewer clusters, smaller clusters, no
//! skew, less jitter, no shuffle) and rendered as a ready-to-paste
//! regression test. [`perturb_until_divergence`] walks the other way:
//! starting from a recoverable case it degrades separation and inflates
//! jitter until identification diverges, mapping where the guarantee
//! region actually ends.

use hmcs_core::error::ModelError;
use hmcs_core::identify::{self, IdentifyOptions};
use hmcs_des::rng::RngStream;
use hmcs_topology::latmatrix::{LatencyBand, SyntheticSpec};
use std::fmt::Write as _;

/// Centre of the intra-cluster band every sampled case uses (µs).
pub const INTRA_MEAN_US: f64 = 50.0;

/// One sampled identification round-trip case.
///
/// `separation` is the inter/intra mean ratio and `jitter` the
/// std/mean ratio of both bands. With the default
/// [`IdentifyOptions::min_gap_ratio`] of 1.8 and clamped-normal
/// sampling at ±2.5σ, any `separation ≥ 4` and `jitter ≤ 0.08` is
/// guaranteed recoverable: the within-band extreme ratio is at most
/// `(1+2.5j)/(1−2.5j) ≤ 1.5` and the worst between-band ratio at least
/// `4·(1−2.5j)/(1+2.5j) ≥ 2.6`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdentCaseSpec {
    /// Planted cluster count.
    pub clusters: usize,
    /// Base cluster size (exact when `skew` is 0).
    pub base_size: usize,
    /// Linear size skew in [0, 1): sizes ramp `base·(1±skew)`.
    pub skew: f64,
    /// Inter-band mean as a multiple of the intra-band mean.
    pub separation: f64,
    /// Band std/mean ratio (both bands).
    pub jitter: f64,
    /// Whether node labels are shuffled (hides the block structure).
    pub shuffle: bool,
    /// Generator seed.
    pub seed: u64,
}

impl IdentCaseSpec {
    /// Materialises the synthetic generator spec.
    pub fn build(&self) -> Result<SyntheticSpec, ModelError> {
        let intra = LatencyBand::new(INTRA_MEAN_US, self.jitter * INTRA_MEAN_US)?;
        let inter_mean = INTRA_MEAN_US * self.separation;
        let inter = LatencyBand::new(inter_mean, self.jitter * inter_mean)?;
        let mut spec = SyntheticSpec::skewed(
            self.clusters,
            self.base_size,
            self.skew,
            intra,
            inter,
            self.seed,
        )?;
        spec.shuffle = self.shuffle;
        Ok(spec)
    }
}

/// A case whose identified partition differs from the planted one,
/// after shrinking.
#[derive(Debug, Clone)]
pub struct IdentFailure {
    /// Index of the originally failing case.
    pub case_index: u32,
    /// The shrunk, still-failing spec.
    pub spec: IdentCaseSpec,
    /// Planted cluster count.
    pub planted_clusters: usize,
    /// Identified cluster count.
    pub identified_clusters: usize,
}

/// Summary of one identification fuzz run.
#[derive(Debug, Clone)]
pub struct IdentFuzzReport {
    /// Seed the run was keyed by.
    pub seed: u64,
    /// Cases evaluated.
    pub cases_run: u32,
    /// Total nodes identified across all cases.
    pub total_nodes: usize,
    /// Shrunk failures (empty on a healthy identifier).
    pub failures: Vec<IdentFailure>,
}

/// Options for [`run_identfuzz`].
#[derive(Debug, Clone, Copy)]
pub struct IdentFuzzOptions {
    /// Number of random cases to check.
    pub cases: u32,
    /// Master seed; case `i` derives its own RNG stream from it.
    pub seed: u64,
}

impl Default for IdentFuzzOptions {
    fn default() -> Self {
        IdentFuzzOptions { cases: 200, seed: 2005 }
    }
}

/// Draws case `index` of `seed` from the guarantee region —
/// deterministic and independent of every other case.
pub fn sample_case(seed: u64, index: u32) -> IdentCaseSpec {
    let mut rng = RngStream::new(seed, u64::from(index));
    IdentCaseSpec {
        clusters: 2 + rng.uniform_below(7),
        base_size: 4 + rng.uniform_below(29),
        skew: 0.5 * rng.uniform(),
        separation: 4.0 + 8.0 * rng.uniform(),
        jitter: 0.08 * rng.uniform(),
        shuffle: rng.uniform() < 0.5,
        // Decorrelate the generator's own noise from the case sampler.
        seed: seed ^ (u64::from(index) << 32) ^ 0xF1D0,
    }
}

/// Checks one case: `Ok(None)` means the planted partition was
/// recovered bit-exactly.
pub fn check_case(spec: &IdentCaseSpec) -> Result<Option<(usize, usize)>, ModelError> {
    let synth = spec.build()?;
    let source = synth.source()?;
    let planted = source.partition();
    let identified = identify::identify(&source, &IdentifyOptions::default())?;
    Ok(if identified.partition == planted {
        None
    } else {
        Some((planted.len(), identified.partition.len()))
    })
}

/// Candidate one-step simplifications of a failing spec, in preference
/// order (structurally smaller first). `separation` is never changed:
/// widening it would mask the failure, narrowing it would leave the
/// guarantee region.
fn shrink_candidates(spec: &IdentCaseSpec) -> Vec<IdentCaseSpec> {
    let mut out = Vec::new();
    if spec.clusters > 2 {
        out.push(IdentCaseSpec { clusters: spec.clusters - 1, ..*spec });
    }
    if spec.base_size > 4 {
        out.push(IdentCaseSpec { base_size: (spec.base_size / 2).max(4), ..*spec });
    }
    if spec.skew > 0.0 {
        out.push(IdentCaseSpec { skew: 0.0, ..*spec });
    }
    if spec.jitter > 0.005 {
        out.push(IdentCaseSpec { jitter: spec.jitter * 0.5, ..*spec });
    }
    if spec.shuffle {
        out.push(IdentCaseSpec { shuffle: false, ..*spec });
    }
    out
}

/// Greedily shrinks a failing spec: repeatedly takes the first
/// simplification that still fails, until none does.
fn shrink(spec: IdentCaseSpec, counts: (usize, usize)) -> (IdentCaseSpec, (usize, usize)) {
    let mut current = (spec, counts);
    for _ in 0..64 {
        let mut advanced = false;
        for candidate in shrink_candidates(&current.0) {
            if let Ok(Some(counts)) = check_case(&candidate) {
                current = (candidate, counts);
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    current
}

/// Renders a ready-to-paste regression test for a shrunk failure.
pub fn regression_snippet(seed: u64, f: &IdentFailure) -> String {
    let spec = &f.spec;
    let mut out = String::new();
    let _ = writeln!(out, "#[test]");
    let _ = writeln!(
        out,
        "fn identfuzz_regression_c{}_b{}_s{}() {{",
        spec.clusters, spec.base_size, spec.seed
    );
    let _ = writeln!(
        out,
        "    // Found by `reproduce identfuzz --seed {seed}` (case {}): planted {} \
         cluster(s), identified {}.",
        f.case_index, f.planted_clusters, f.identified_clusters
    );
    let _ = writeln!(
        out,
        "    let spec = IdentCaseSpec {{ clusters: {}, base_size: {}, skew: {:?}, \
         separation: {:?}, jitter: {:?}, shuffle: {}, seed: {} }};",
        spec.clusters,
        spec.base_size,
        spec.skew,
        spec.separation,
        spec.jitter,
        spec.shuffle,
        spec.seed
    );
    let _ = writeln!(
        out,
        "    assert_eq!(check_case(&spec).unwrap(), None, \"identification must round-trip\");"
    );
    let _ = writeln!(out, "}}");
    out
}

/// Runs `options.cases` round-trip checks, shrinking any failures.
pub fn run_identfuzz(options: IdentFuzzOptions) -> Result<IdentFuzzReport, ModelError> {
    let mut failures = Vec::new();
    let mut total_nodes = 0usize;
    for index in 0..options.cases {
        let spec = sample_case(options.seed, index);
        total_nodes += spec.build()?.total_nodes();
        if let Some(counts) = check_case(&spec)? {
            let (spec, (planted, identified)) = shrink(spec, counts);
            failures.push(IdentFailure {
                case_index: index,
                spec,
                planted_clusters: planted,
                identified_clusters: identified,
            });
        }
    }
    Ok(IdentFuzzReport { seed: options.seed, cases_run: options.cases, total_nodes, failures })
}

/// Renders the fuzz report, including regression snippets for any
/// failures.
pub fn render(report: &IdentFuzzReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "identfuzz: seed {}, {} case(s) over {} node(s), {} failure(s) — {}",
        report.seed,
        report.cases_run,
        report.total_nodes,
        report.failures.len(),
        if report.failures.is_empty() { "PASS" } else { "FAIL" }
    );
    for f in &report.failures {
        let _ = writeln!(
            out,
            "\ncase {}: {:?}\n  planted {} cluster(s), identified {}",
            f.case_index, f.spec, f.planted_clusters, f.identified_clusters
        );
        let _ =
            writeln!(out, "  suggested regression test:\n{}", regression_snippet(report.seed, f));
    }
    out
}

/// Degrades a recoverable case — shrinking the band separation and
/// inflating the jitter — until identification diverges from the
/// planted partition, returning the first diverging spec and the
/// number of degradation steps taken. `None` if `max_steps` runs out
/// first (the identifier is more robust than the walk is long).
pub fn perturb_until_divergence(
    start: &IdentCaseSpec,
    max_steps: u32,
) -> Result<Option<(IdentCaseSpec, u32)>, ModelError> {
    let mut spec = *start;
    for step in 1..=max_steps {
        spec.separation = (spec.separation * 0.8).max(1.05);
        spec.jitter = (spec.jitter * 1.5 + 0.01).min(1.0 / 3.0);
        if check_case(&spec)?.is_some() {
            return Ok(Some((spec, step)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_inside_the_guarantee_region() {
        for index in 0..100 {
            let a = sample_case(2005, index);
            assert_eq!(a, sample_case(2005, index), "case {index} must be reproducible");
            assert!((2..=8).contains(&a.clusters));
            assert!((4..=32).contains(&a.base_size));
            assert!((0.0..0.5).contains(&a.skew));
            assert!((4.0..12.0).contains(&a.separation));
            assert!((0.0..0.08).contains(&a.jitter));
            a.build().unwrap_or_else(|e| panic!("case {index} invalid: {e:?}"));
        }
        assert_ne!(sample_case(1, 0), sample_case(2, 0));
    }

    #[test]
    fn two_hundred_case_round_trip_holds() {
        // The acceptance criterion: 200 seeded cases inside the
        // guarantee region must all round-trip bit-exactly.
        let report = run_identfuzz(IdentFuzzOptions { cases: 200, seed: 2005 }).unwrap();
        assert_eq!(report.cases_run, 200);
        assert!(
            report.failures.is_empty(),
            "identification failed to round-trip:\n{}",
            render(&report)
        );
    }

    #[test]
    fn shrinker_minimises_and_terminates() {
        let mut spec = IdentCaseSpec {
            clusters: 8,
            base_size: 32,
            skew: 0.4,
            separation: 6.0,
            jitter: 0.06,
            shuffle: true,
            seed: 7,
        };
        let mut steps = 0;
        while let Some(candidate) = shrink_candidates(&spec).into_iter().next() {
            assert!(candidate.build().is_ok(), "shrink produced invalid spec {candidate:?}");
            spec = candidate;
            steps += 1;
            assert!(steps < 64, "shrinking must terminate");
        }
        assert_eq!(spec.clusters, 2);
        assert_eq!(spec.base_size, 4);
        assert_eq!(spec.skew, 0.0);
        assert!(spec.jitter <= 0.005);
        assert!(!spec.shuffle);
        assert_eq!(spec.separation, 6.0, "separation is never shrunk");
    }

    #[test]
    fn perturbation_walks_out_of_the_guarantee_region() {
        // Start well inside; degrading separation toward 1 and jitter
        // toward the clamp limit must eventually break the round-trip,
        // and the diverging spec must render a pasteable snippet.
        let start = IdentCaseSpec {
            clusters: 4,
            base_size: 16,
            skew: 0.0,
            separation: 8.0,
            jitter: 0.02,
            shuffle: false,
            seed: 11,
        };
        assert_eq!(check_case(&start).unwrap(), None, "start must be recoverable");
        let (diverged, steps) =
            perturb_until_divergence(&start, 32).unwrap().expect("divergence within 32 steps");
        assert!(steps >= 1);
        assert!(diverged.separation < start.separation);
        let counts = check_case(&diverged).unwrap().expect("diverged case still fails");
        let failure = IdentFailure {
            case_index: 0,
            spec: diverged,
            planted_clusters: counts.0,
            identified_clusters: counts.1,
        };
        let snippet = regression_snippet(11, &failure);
        assert!(snippet.contains("#[test]"));
        assert!(snippet.contains("IdentCaseSpec {"));
        assert!(snippet.contains("check_case(&spec)"));
    }
}
