//! # hmcs-bench
//!
//! The experiment harness that regenerates **every table and figure**
//! of *Performance Analysis of Heterogeneous Multi-Cluster Systems*
//! (ICPPW 2005), plus the reproduction's ablation studies.
//!
//! * [`experiments`] — one runner per paper artefact: Table 1, Table 2,
//!   Figures 4–7, the §6 blocking/non-blocking ratio claim, and the
//!   `ablation-*` studies described in DESIGN.md.
//! * [`report`] — plain-text table rendering and CSV export.
//! * [`manifest`] — machine-readable run manifests written next to the
//!   CSVs (provenance, λ-unit mode, solver histograms, metrics
//!   snapshot), plus the JSON schema validator.
//! * [`golden`] — tolerance-aware CSV differ driven by
//!   `results/GOLDEN.toml`, the regression gate behind
//!   `reproduce check`.
//! * [`claims`] — the machine-readable registry of the paper's shape
//!   claims (dips, V-minima, orderings, symmetries), evaluated against
//!   generated artefacts.
//! * [`differential`] — seeded model-vs-simulation fuzzing with greedy
//!   shrinking of any disagreement to a minimal regression test.
//! * [`identfuzz`] — seeded round-trip fuzzing of the latency-matrix
//!   cluster-identification pass (generate → identify must recover the
//!   planted partition), with the same shrink-to-regression-test flow.
//! * [`topology`] — the latency-matrix pipeline artefact: generate →
//!   identify → fit → analytic vs sharded-simulation agreement at
//!   10k nodes.
//!
//! The `reproduce` binary drives everything:
//!
//! ```text
//! cargo run --release -p hmcs-bench --bin reproduce -- fig4
//! cargo run --release -p hmcs-bench --bin reproduce -- all --csv out/
//! cargo run --release -p hmcs-bench --bin reproduce -- check out/
//! cargo run --release -p hmcs-bench --bin reproduce -- fuzz --cases 25
//! ```
//!
//! Criterion benches (one per figure, plus kernel micro-benches) live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod claims;
pub mod differential;
pub mod experiments;
pub mod golden;
pub mod identfuzz;
pub mod manifest;
pub mod report;
pub mod simcache;
pub mod topology;
