//! # hmcs-bench
//!
//! The experiment harness that regenerates **every table and figure**
//! of *Performance Analysis of Heterogeneous Multi-Cluster Systems*
//! (ICPPW 2005), plus the reproduction's ablation studies.
//!
//! * [`experiments`] — one runner per paper artefact: Table 1, Table 2,
//!   Figures 4–7, the §6 blocking/non-blocking ratio claim, and the
//!   `ablation-*` studies described in DESIGN.md.
//! * [`report`] — plain-text table rendering and CSV export.
//! * [`manifest`] — machine-readable run manifests written next to the
//!   CSVs (provenance, λ-unit mode, solver histograms, metrics
//!   snapshot), plus the JSON schema validator.
//!
//! The `reproduce` binary drives everything:
//!
//! ```text
//! cargo run --release -p hmcs-bench --bin reproduce -- fig4
//! cargo run --release -p hmcs-bench --bin reproduce -- all --csv out/
//! ```
//!
//! Criterion benches (one per figure, plus kernel micro-benches) live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod manifest;
pub mod report;
