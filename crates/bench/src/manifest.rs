//! Machine-readable run manifests.
//!
//! Every `reproduce … --csv DIR` invocation drops a
//! `manifest_<artefact>.json` next to the CSVs it writes, so a results
//! directory is self-describing: which code produced it (`git
//! describe`), with which options (seed, λ and its unit mode, message
//! budget), on how many workers, how long it took, how the solver
//! behaved (iteration and wall-clock histograms), and the full
//! process-global metrics snapshot. Cross-validation data without this
//! provenance is not trustworthy — the CSVs alone cannot tell a
//! figure-scale run from a literal-λ run.
//!
//! The workspace has no JSON dependency (offline, vendored-only
//! builds); the writer primitives and the minimal recursive-descent
//! parser [`validate`] uses to schema-check a manifest live in the
//! shared [`hmcs_core::json`] module (re-exported here for existing
//! callers). The parser accepts general JSON; the validator then
//! checks the manifest schema proper.

use crate::experiments::{FigureData, RunOptions};
use hmcs_core::json::{json_num, json_str};
use hmcs_core::metrics::{self, HistogramSnapshot};
use hmcs_core::scenario::{PAPER_LAMBDA_LITERAL_PER_US, PAPER_LAMBDA_PER_US};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

pub use hmcs_core::json::{parse_json, JsonValue};

/// Schema identifier stamped into (and required from) every manifest.
pub const MANIFEST_SCHEMA: &str = "hmcs-run-manifest/1";

/// Builds the manifest JSON document for one artefact run.
///
/// `figure` is present for fig4–fig7 runs and adds the per-figure
/// block: row count, wall clock, and solver-iteration / per-point
/// wall-clock histograms built from [`FigureData::point_stats`].
pub fn manifest_json(
    artefact: &str,
    opts: &RunOptions,
    workers: usize,
    figure: Option<&FigureData>,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_str(MANIFEST_SCHEMA));
    let _ = writeln!(out, "  \"artefact\": {},", json_str(artefact));
    let _ = writeln!(
        out,
        "  \"git_describe\": {},",
        git_describe().map_or("null".to_string(), |d| json_str(&d))
    );
    let _ = writeln!(out, "  \"created_unix_s\": {},", unix_time_s());
    let _ = writeln!(out, "  \"workers\": {workers},");
    out.push_str("  \"options\": {\n");
    let _ = writeln!(out, "    \"messages\": {},", opts.messages);
    let _ = writeln!(out, "    \"warmup\": {},", opts.warmup);
    let _ = writeln!(out, "    \"seed\": {},", opts.seed);
    let _ = writeln!(out, "    \"lambda_per_us\": {},", json_num(opts.lambda_per_us));
    let _ = writeln!(out, "    \"lambda_unit_mode\": {},", json_str(lambda_unit_mode(opts)));
    let _ = writeln!(out, "    \"with_simulation\": {}", opts.with_simulation);
    out.push_str("  },\n");
    match figure {
        None => out.push_str("  \"figure\": null,\n"),
        Some(data) => {
            out.push_str("  \"figure\": {\n");
            let _ = writeln!(out, "    \"id\": {},", json_str(data.spec.id));
            let _ = writeln!(out, "    \"caption\": {},", json_str(data.spec.caption));
            let _ = writeln!(out, "    \"rows\": {},", data.rows.len());
            let clusters: Vec<String> = data.rows.iter().map(|r| r.clusters.to_string()).collect();
            let _ = writeln!(out, "    \"clusters\": [{}],", clusters.join(","));
            let _ = writeln!(out, "    \"wall_clock_us\": {},", json_num(data.wall_clock_us));
            let iters = HistogramSnapshot::from_values(
                data.point_stats.iter().map(|s| s.solver_iterations as u64),
            );
            let times = HistogramSnapshot::from_values(
                data.point_stats.iter().map(|s| s.eval_time_us.round().max(0.0) as u64),
            );
            let _ = writeln!(out, "    \"solver_iterations\": {},", histogram_json(&iters));
            let _ = writeln!(out, "    \"eval_time_us\": {}", histogram_json(&times));
            out.push_str("  },\n");
        }
    }
    let snapshot = metrics::global().snapshot();
    out.push_str("  \"metrics\": {\n    \"counters\": {");
    let counters: Vec<String> =
        snapshot.counters.iter().map(|(k, v)| format!("{}:{v}", json_str(k))).collect();
    out.push_str(&counters.join(","));
    out.push_str("},\n    \"histograms\": {");
    let histograms: Vec<String> = snapshot
        .histograms
        .iter()
        .map(|(k, h)| format!("{}:{}", json_str(k), histogram_json(h)))
        .collect();
    out.push_str(&histograms.join(","));
    out.push_str("},\n    \"warnings\": {");
    let warnings: Vec<String> =
        snapshot.warnings.iter().map(|(k, v)| format!("{}:{}", json_str(k), json_str(v))).collect();
    out.push_str(&warnings.join(","));
    out.push_str("}\n  }\n}\n");
    out
}

/// Writes `manifest_<artefact>.json` into `dir`, returning its path.
pub fn write_manifest(
    dir: &Path,
    artefact: &str,
    opts: &RunOptions,
    workers: usize,
    figure: Option<&FigureData>,
) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("manifest_{artefact}.json"));
    crate::report::write_atomic(&path, manifest_json(artefact, opts, workers, figure).as_bytes())?;
    Ok(path)
}

/// The λ-unit mode of a run, derived from the configured rate: the
/// figure-scale reading (0.25 msg/ms), Table 2's literal value
/// (0.25 msg/s), or a custom override.
pub fn lambda_unit_mode(opts: &RunOptions) -> &'static str {
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * b.abs();
    if close(opts.lambda_per_us, PAPER_LAMBDA_PER_US) {
        "figure-scale"
    } else if close(opts.lambda_per_us, PAPER_LAMBDA_LITERAL_PER_US) {
        "literal"
    } else {
        "custom"
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> =
        h.buckets.iter().map(|b| format!("[{},{},{}]", b.lo, b.hi, b.count)).collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        h.max,
        json_num(h.mean()),
        buckets.join(",")
    )
}

fn git_describe() -> Option<String> {
    // `git describe --dirty` stats the entire working tree; at one
    // subprocess per manifest it dominated `reproduce all`'s non-sim
    // time. The description cannot change mid-process, so run it once.
    static DESCRIBE: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    DESCRIBE
        .get_or_init(|| {
            let out = std::process::Command::new("git")
                .args(["describe", "--always", "--dirty"])
                .output()
                .ok()?;
            if !out.status.success() {
                return None;
            }
            let s = String::from_utf8(out.stdout).ok()?;
            let s = s.trim();
            (!s.is_empty()).then(|| s.to_string())
        })
        .clone()
}

fn unix_time_s() -> u64 {
    std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).map_or(0, |d| d.as_secs())
}

// ---------------------------------------------------------------------
// Validation: manifest schema checks over the shared JSON parser.
// ---------------------------------------------------------------------

fn check_histogram(h: &JsonValue, what: &str) -> Result<(), String> {
    for field in ["count", "sum", "max", "mean"] {
        h.get(field)
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("{what}: missing numeric \"{field}\""))?;
    }
    match h.get("buckets") {
        Some(JsonValue::Arr(buckets)) => {
            for b in buckets {
                match b {
                    JsonValue::Arr(triple) if triple.len() == 3 => {}
                    _ => return Err(format!("{what}: bucket is not a [lo,hi,count] triple")),
                }
            }
            Ok(())
        }
        _ => Err(format!("{what}: missing \"buckets\" array")),
    }
}

/// Schema-checks a manifest document. Returns the parsed value so
/// callers can make further content assertions.
pub fn validate(json: &str) -> Result<JsonValue, String> {
    let doc = parse_json(json)?;
    let schema = doc.get("schema").and_then(JsonValue::as_str).ok_or("missing \"schema\"")?;
    if schema != MANIFEST_SCHEMA {
        return Err(format!("schema {schema:?}, expected {MANIFEST_SCHEMA:?}"));
    }
    doc.get("artefact").and_then(JsonValue::as_str).ok_or("missing \"artefact\"")?;
    match doc.get("git_describe") {
        Some(JsonValue::Str(_)) | Some(JsonValue::Null) => {}
        _ => return Err("\"git_describe\" must be a string or null".to_string()),
    }
    doc.get("created_unix_s").and_then(JsonValue::as_num).ok_or("missing \"created_unix_s\"")?;
    doc.get("workers").and_then(JsonValue::as_num).ok_or("missing \"workers\"")?;

    let options = doc.get("options").ok_or("missing \"options\"")?;
    for field in ["messages", "warmup", "seed", "lambda_per_us"] {
        options
            .get(field)
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("options: missing numeric \"{field}\""))?;
    }
    let mode = options
        .get("lambda_unit_mode")
        .and_then(JsonValue::as_str)
        .ok_or("options: missing \"lambda_unit_mode\"")?;
    if !matches!(mode, "figure-scale" | "literal" | "custom") {
        return Err(format!("options: bad lambda_unit_mode {mode:?}"));
    }
    match options.get("with_simulation") {
        Some(JsonValue::Bool(_)) => {}
        _ => return Err("options: missing boolean \"with_simulation\"".to_string()),
    }

    match doc.get("figure") {
        Some(JsonValue::Null) => {}
        Some(figure @ JsonValue::Obj(_)) => {
            figure.get("id").and_then(JsonValue::as_str).ok_or("figure: missing \"id\"")?;
            figure.get("rows").and_then(JsonValue::as_num).ok_or("figure: missing \"rows\"")?;
            figure
                .get("wall_clock_us")
                .and_then(JsonValue::as_num)
                .ok_or("figure: missing \"wall_clock_us\"")?;
            match figure.get("clusters") {
                Some(JsonValue::Arr(_)) => {}
                _ => return Err("figure: missing \"clusters\" array".to_string()),
            }
            check_histogram(
                figure.get("solver_iterations").ok_or("figure: missing \"solver_iterations\"")?,
                "figure.solver_iterations",
            )?;
            check_histogram(
                figure.get("eval_time_us").ok_or("figure: missing \"eval_time_us\"")?,
                "figure.eval_time_us",
            )?;
        }
        _ => return Err("\"figure\" must be an object or null".to_string()),
    }

    let m = doc.get("metrics").ok_or("missing \"metrics\"")?;
    for field in ["counters", "histograms", "warnings"] {
        match m.get(field) {
            Some(JsonValue::Obj(_)) => {}
            _ => return Err(format!("metrics: missing \"{field}\" object")),
        }
    }
    if let Some(JsonValue::Obj(pairs)) = m.get("histograms") {
        for (name, h) in pairs {
            check_histogram(h, &format!("metrics.histograms.{name}"))?;
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_rejects_truncated_manifest() {
        // A partially written manifest (interrupted run, full disk)
        // must fail loudly at every truncation point, not just a few.
        let json = manifest_json("fig4", &RunOptions::default(), 2, None);
        let json = json.trim_end();
        for cut in [1, json.len() / 4, json.len() / 2, json.len() - 1] {
            assert!(parse_json(&json[..cut]).is_err(), "truncation at byte {cut} parsed");
        }
    }

    #[test]
    fn reexported_parser_keeps_duplicate_key_rejection() {
        // The parser moved to hmcs_core::json (where its full test
        // suite lives); manifests rely on the RFC 8259 duplicate-key
        // rejection through this re-export, so pin it here too.
        assert!(parse_json("{\"a\":1,\"a\":2}").is_err());
        let err = parse_json("{\"outer\":{\"k\":1,\"k\":1}}").unwrap_err();
        assert!(err.contains("duplicate key \"k\""), "unexpected error: {err}");
    }

    #[test]
    fn lambda_unit_mode_detection() {
        let figure = RunOptions::default();
        assert_eq!(lambda_unit_mode(&figure), "figure-scale");
        let literal =
            RunOptions { lambda_per_us: PAPER_LAMBDA_LITERAL_PER_US, ..RunOptions::default() };
        assert_eq!(lambda_unit_mode(&literal), "literal");
        let custom = RunOptions { lambda_per_us: 1e-3, ..RunOptions::default() };
        assert_eq!(lambda_unit_mode(&custom), "custom");
    }

    #[test]
    fn non_figure_manifest_validates() {
        let json = manifest_json("table1", &RunOptions::default(), 4, None);
        let doc = validate(&json).expect("manifest must validate");
        assert_eq!(doc.get("artefact").unwrap().as_str(), Some("table1"));
        assert_eq!(doc.get("figure"), Some(&JsonValue::Null));
    }

    #[test]
    fn validate_rejects_wrong_schema() {
        let json = manifest_json("table1", &RunOptions::default(), 1, None)
            .replace(MANIFEST_SCHEMA, "other-schema/9");
        assert!(validate(&json).is_err());
    }
}
