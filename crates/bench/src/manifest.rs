//! Machine-readable run manifests.
//!
//! Every `reproduce … --csv DIR` invocation drops a
//! `manifest_<artefact>.json` next to the CSVs it writes, so a results
//! directory is self-describing: which code produced it (`git
//! describe`), with which options (seed, λ and its unit mode, message
//! budget), on how many workers, how long it took, how the solver
//! behaved (iteration and wall-clock histograms), and the full
//! process-global metrics snapshot. Cross-validation data without this
//! provenance is not trustworthy — the CSVs alone cannot tell a
//! figure-scale run from a literal-λ run.
//!
//! The workspace has no JSON dependency (offline, vendored-only
//! builds), so this module hand-rolls both the writer and the minimal
//! recursive-descent parser [`validate`] uses to schema-check a
//! manifest. The parser accepts general JSON; the validator then
//! checks the manifest schema proper.

use crate::experiments::{FigureData, RunOptions};
use hmcs_core::metrics::{self, HistogramSnapshot};
use hmcs_core::scenario::{PAPER_LAMBDA_LITERAL_PER_US, PAPER_LAMBDA_PER_US};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Schema identifier stamped into (and required from) every manifest.
pub const MANIFEST_SCHEMA: &str = "hmcs-run-manifest/1";

/// Builds the manifest JSON document for one artefact run.
///
/// `figure` is present for fig4–fig7 runs and adds the per-figure
/// block: row count, wall clock, and solver-iteration / per-point
/// wall-clock histograms built from [`FigureData::point_stats`].
pub fn manifest_json(
    artefact: &str,
    opts: &RunOptions,
    workers: usize,
    figure: Option<&FigureData>,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_str(MANIFEST_SCHEMA));
    let _ = writeln!(out, "  \"artefact\": {},", json_str(artefact));
    let _ = writeln!(
        out,
        "  \"git_describe\": {},",
        git_describe().map_or("null".to_string(), |d| json_str(&d))
    );
    let _ = writeln!(out, "  \"created_unix_s\": {},", unix_time_s());
    let _ = writeln!(out, "  \"workers\": {workers},");
    out.push_str("  \"options\": {\n");
    let _ = writeln!(out, "    \"messages\": {},", opts.messages);
    let _ = writeln!(out, "    \"warmup\": {},", opts.warmup);
    let _ = writeln!(out, "    \"seed\": {},", opts.seed);
    let _ = writeln!(out, "    \"lambda_per_us\": {},", json_num(opts.lambda_per_us));
    let _ = writeln!(out, "    \"lambda_unit_mode\": {},", json_str(lambda_unit_mode(opts)));
    let _ = writeln!(out, "    \"with_simulation\": {}", opts.with_simulation);
    out.push_str("  },\n");
    match figure {
        None => out.push_str("  \"figure\": null,\n"),
        Some(data) => {
            out.push_str("  \"figure\": {\n");
            let _ = writeln!(out, "    \"id\": {},", json_str(data.spec.id));
            let _ = writeln!(out, "    \"caption\": {},", json_str(data.spec.caption));
            let _ = writeln!(out, "    \"rows\": {},", data.rows.len());
            let clusters: Vec<String> = data.rows.iter().map(|r| r.clusters.to_string()).collect();
            let _ = writeln!(out, "    \"clusters\": [{}],", clusters.join(","));
            let _ = writeln!(out, "    \"wall_clock_us\": {},", json_num(data.wall_clock_us));
            let iters = HistogramSnapshot::from_values(
                data.point_stats.iter().map(|s| s.solver_iterations as u64),
            );
            let times = HistogramSnapshot::from_values(
                data.point_stats.iter().map(|s| s.eval_time_us.round().max(0.0) as u64),
            );
            let _ = writeln!(out, "    \"solver_iterations\": {},", histogram_json(&iters));
            let _ = writeln!(out, "    \"eval_time_us\": {}", histogram_json(&times));
            out.push_str("  },\n");
        }
    }
    let snapshot = metrics::global().snapshot();
    out.push_str("  \"metrics\": {\n    \"counters\": {");
    let counters: Vec<String> =
        snapshot.counters.iter().map(|(k, v)| format!("{}:{v}", json_str(k))).collect();
    out.push_str(&counters.join(","));
    out.push_str("},\n    \"histograms\": {");
    let histograms: Vec<String> = snapshot
        .histograms
        .iter()
        .map(|(k, h)| format!("{}:{}", json_str(k), histogram_json(h)))
        .collect();
    out.push_str(&histograms.join(","));
    out.push_str("},\n    \"warnings\": {");
    let warnings: Vec<String> =
        snapshot.warnings.iter().map(|(k, v)| format!("{}:{}", json_str(k), json_str(v))).collect();
    out.push_str(&warnings.join(","));
    out.push_str("}\n  }\n}\n");
    out
}

/// Writes `manifest_<artefact>.json` into `dir`, returning its path.
pub fn write_manifest(
    dir: &Path,
    artefact: &str,
    opts: &RunOptions,
    workers: usize,
    figure: Option<&FigureData>,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("manifest_{artefact}.json"));
    std::fs::write(&path, manifest_json(artefact, opts, workers, figure))?;
    Ok(path)
}

/// The λ-unit mode of a run, derived from the configured rate: the
/// figure-scale reading (0.25 msg/ms), Table 2's literal value
/// (0.25 msg/s), or a custom override.
pub fn lambda_unit_mode(opts: &RunOptions) -> &'static str {
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * b.abs();
    if close(opts.lambda_per_us, PAPER_LAMBDA_PER_US) {
        "figure-scale"
    } else if close(opts.lambda_per_us, PAPER_LAMBDA_LITERAL_PER_US) {
        "literal"
    } else {
        "custom"
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> =
        h.buckets.iter().map(|b| format!("[{},{},{}]", b.lo, b.hi, b.count)).collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        h.max,
        json_num(h.mean()),
        buckets.join(",")
    )
}

fn git_describe() -> Option<String> {
    // `git describe --dirty` stats the entire working tree; at one
    // subprocess per manifest it dominated `reproduce all`'s non-sim
    // time. The description cannot change mid-process, so run it once.
    static DESCRIBE: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    DESCRIBE
        .get_or_init(|| {
            let out = std::process::Command::new("git")
                .args(["describe", "--always", "--dirty"])
                .output()
                .ok()?;
            if !out.status.success() {
                return None;
            }
            let s = String::from_utf8(out.stdout).ok()?;
            let s = s.trim();
            (!s.is_empty()).then(|| s.to_string())
        })
        .clone()
}

fn unix_time_s() -> u64 {
    std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).map_or(0, |d| d.as_secs())
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Rust's `{}` float formatting never emits exponents, NaN excepted —
/// map non-finite values to null so the document stays valid JSON.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

// ---------------------------------------------------------------------
// Validation: a minimal JSON parser + manifest schema checks.
// ---------------------------------------------------------------------

/// A parsed JSON value (just enough for schema validation).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a &str,
                    // so boundaries are well-formed).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            // RFC 8259 leaves duplicate-key behaviour implementation-
            // defined; for manifests a duplicate always means a writer
            // bug, so reject rather than silently keep one of the two.
            if pairs.iter().any(|(existing, _)| *existing == key) {
                return Err(format!("duplicate key {key:?} at byte {}", self.pos));
            }
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn check_histogram(h: &JsonValue, what: &str) -> Result<(), String> {
    for field in ["count", "sum", "max", "mean"] {
        h.get(field)
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("{what}: missing numeric \"{field}\""))?;
    }
    match h.get("buckets") {
        Some(JsonValue::Arr(buckets)) => {
            for b in buckets {
                match b {
                    JsonValue::Arr(triple) if triple.len() == 3 => {}
                    _ => return Err(format!("{what}: bucket is not a [lo,hi,count] triple")),
                }
            }
            Ok(())
        }
        _ => Err(format!("{what}: missing \"buckets\" array")),
    }
}

/// Schema-checks a manifest document. Returns the parsed value so
/// callers can make further content assertions.
pub fn validate(json: &str) -> Result<JsonValue, String> {
    let doc = parse_json(json)?;
    let schema = doc.get("schema").and_then(JsonValue::as_str).ok_or("missing \"schema\"")?;
    if schema != MANIFEST_SCHEMA {
        return Err(format!("schema {schema:?}, expected {MANIFEST_SCHEMA:?}"));
    }
    doc.get("artefact").and_then(JsonValue::as_str).ok_or("missing \"artefact\"")?;
    match doc.get("git_describe") {
        Some(JsonValue::Str(_)) | Some(JsonValue::Null) => {}
        _ => return Err("\"git_describe\" must be a string or null".to_string()),
    }
    doc.get("created_unix_s").and_then(JsonValue::as_num).ok_or("missing \"created_unix_s\"")?;
    doc.get("workers").and_then(JsonValue::as_num).ok_or("missing \"workers\"")?;

    let options = doc.get("options").ok_or("missing \"options\"")?;
    for field in ["messages", "warmup", "seed", "lambda_per_us"] {
        options
            .get(field)
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("options: missing numeric \"{field}\""))?;
    }
    let mode = options
        .get("lambda_unit_mode")
        .and_then(JsonValue::as_str)
        .ok_or("options: missing \"lambda_unit_mode\"")?;
    if !matches!(mode, "figure-scale" | "literal" | "custom") {
        return Err(format!("options: bad lambda_unit_mode {mode:?}"));
    }
    match options.get("with_simulation") {
        Some(JsonValue::Bool(_)) => {}
        _ => return Err("options: missing boolean \"with_simulation\"".to_string()),
    }

    match doc.get("figure") {
        Some(JsonValue::Null) => {}
        Some(figure @ JsonValue::Obj(_)) => {
            figure.get("id").and_then(JsonValue::as_str).ok_or("figure: missing \"id\"")?;
            figure.get("rows").and_then(JsonValue::as_num).ok_or("figure: missing \"rows\"")?;
            figure
                .get("wall_clock_us")
                .and_then(JsonValue::as_num)
                .ok_or("figure: missing \"wall_clock_us\"")?;
            match figure.get("clusters") {
                Some(JsonValue::Arr(_)) => {}
                _ => return Err("figure: missing \"clusters\" array".to_string()),
            }
            check_histogram(
                figure.get("solver_iterations").ok_or("figure: missing \"solver_iterations\"")?,
                "figure.solver_iterations",
            )?;
            check_histogram(
                figure.get("eval_time_us").ok_or("figure: missing \"eval_time_us\"")?,
                "figure.eval_time_us",
            )?;
        }
        _ => return Err("\"figure\" must be an object or null".to_string()),
    }

    let m = doc.get("metrics").ok_or("missing \"metrics\"")?;
    for field in ["counters", "histograms", "warnings"] {
        match m.get(field) {
            Some(JsonValue::Obj(_)) => {}
            _ => return Err(format!("metrics: missing \"{field}\" object")),
        }
    }
    if let Some(JsonValue::Obj(pairs)) = m.get("histograms") {
        for (name, h) in pairs {
            check_histogram(h, &format!("metrics.histograms.{name}"))?;
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_escapes_and_nesting() {
        let doc =
            parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y\\z\n"},"d":null,"e":true}"#).unwrap();
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y\\z\n"));
        assert_eq!(
            doc.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.5),
                JsonValue::Num(-300.0)
            ]))
        );
        assert_eq!(doc.get("d"), Some(&JsonValue::Null));
        assert_eq!(doc.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} garbage").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn parser_rejects_truncated_manifest() {
        // A partially written manifest (interrupted run, full disk)
        // must fail loudly at every truncation point, not just a few.
        let json = manifest_json("fig4", &RunOptions::default(), 2, None);
        let json = json.trim_end();
        for cut in [1, json.len() / 4, json.len() / 2, json.len() - 1] {
            assert!(parse_json(&json[..cut]).is_err(), "truncation at byte {cut} parsed");
        }
    }

    #[test]
    fn parser_rejects_nan_and_bare_tokens() {
        // JSON has no NaN/Infinity literals; a writer that leaks one
        // (e.g. formatting an uninitialised f64) must not validate.
        assert!(parse_json("{\"x\": NaN}").is_err());
        assert!(parse_json("{\"x\": -Infinity}").is_err());
        assert!(parse_json("{\"x\": nan}").is_err());
        assert!(parse_json("NaN").is_err());
    }

    #[test]
    fn parser_rejects_duplicate_keys() {
        assert!(parse_json("{\"a\":1,\"a\":2}").is_err());
        // Nested objects are checked too, and the error names the key.
        let err = parse_json("{\"outer\":{\"k\":1,\"k\":1}}").unwrap_err();
        assert!(err.contains("duplicate key \"k\""), "unexpected error: {err}");
        // Same key at different depths is fine.
        assert!(parse_json("{\"a\":{\"a\":1},\"b\":{\"a\":2}}").is_ok());
    }

    #[test]
    fn lambda_unit_mode_detection() {
        let figure = RunOptions::default();
        assert_eq!(lambda_unit_mode(&figure), "figure-scale");
        let literal =
            RunOptions { lambda_per_us: PAPER_LAMBDA_LITERAL_PER_US, ..RunOptions::default() };
        assert_eq!(lambda_unit_mode(&literal), "literal");
        let custom = RunOptions { lambda_per_us: 1e-3, ..RunOptions::default() };
        assert_eq!(lambda_unit_mode(&custom), "custom");
    }

    #[test]
    fn non_figure_manifest_validates() {
        let json = manifest_json("table1", &RunOptions::default(), 4, None);
        let doc = validate(&json).expect("manifest must validate");
        assert_eq!(doc.get("artefact").unwrap().as_str(), Some("table1"));
        assert_eq!(doc.get("figure"), Some(&JsonValue::Null));
    }

    #[test]
    fn validate_rejects_wrong_schema() {
        let json = manifest_json("table1", &RunOptions::default(), 1, None)
            .replace(MANIFEST_SCHEMA, "other-schema/9");
        assert!(validate(&json).is_err());
    }
}
