//! Plain-text table rendering and CSV export for experiment results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders an aligned plain-text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let rule: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
    let _ = writeln!(out, "{rule}");
    let header_line: Vec<String> =
        headers.iter().zip(&widths).map(|(h, w)| format!(" {h:<w$} ")).collect();
    let _ = writeln!(out, "{}", header_line.join("|"));
    let _ = writeln!(out, "{rule}");
    for row in rows {
        let line: Vec<String> =
            row.iter().zip(&widths).map(|(c, w)| format!(" {c:>w$} ")).collect();
        let _ = writeln!(out, "{}", line.join("|"));
    }
    let _ = writeln!(out, "{rule}");
    out
}

/// Writes rows as CSV (simple quoting: fields containing commas or
/// quotes are double-quoted).
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    fn field(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(&headers.iter().map(|h| field(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    write_atomic(path, out.as_bytes())
}

/// Writes `contents` to `path` atomically: the bytes land in a
/// `.tmp`-suffixed sibling first and are renamed over the target only
/// on success, so a crash or full disk mid-write can corrupt the
/// scratch file but never a previously good artefact (goldens, bench
/// reports and manifests are diffed byte-for-byte — a truncated
/// half-write must not masquerade as a regression). Creates parent
/// directories as needed.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        // Renames only fail in degenerate spots (target is a
        // directory, cross-device link); don't leave the scratch
        // file behind.
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Formats a latency in ms with 3 decimals.
pub fn ms(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats an optional latency, rendering `None` as "-".
pub fn opt_ms(v: Option<f64>) -> String {
    v.map(ms).unwrap_or_else(|| "-".to_string())
}

/// Formats a ratio or percentage-like value with 2 decimals.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats the batch-evaluation cost summary printed under each figure.
pub fn eval_stats_line(s: &hmcs_core::batch::EvalStatsSummary) -> String {
    format!(
        "analysis: {} evaluations, {:.1} µs total (mean {:.1} µs, max {:.1} µs), \
         {:.1} solver iterations/evaluation",
        s.points,
        s.total_eval_time_us,
        s.mean_eval_time_us(),
        s.max_eval_time_us,
        s.mean_solver_iterations()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let s = render_table(
            "Demo",
            &["C", "latency"],
            &[vec!["1".into(), "10.123".into()], vec!["256".into(), "9.000".into()]],
        );
        assert!(s.contains("Demo"));
        assert!(s.contains("C"));
        assert!(s.contains("256"));
        // All data lines share the same width.
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        render_table("x", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_quotes_fields() {
        let dir = std::env::temp_dir().join("hmcs_report_test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1,2".into(), "say \"hi\"".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n\"1,2\",\"say \"\"hi\"\"\"\n");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(1.23456), "1.235");
        assert_eq!(opt_ms(None), "-");
        assert_eq!(opt_ms(Some(2.0)), "2.000");
        assert_eq!(ratio(1.23456), "1.23");
    }
}
