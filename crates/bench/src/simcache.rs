//! Cross-artefact memoisation of simulation runs.
//!
//! `reproduce all` re-simulates several identical configurations: the
//! ablation baseline arms, the packet-validation flow column, and the
//! bounds sweep all run paper-preset systems that the figure sweeps
//! already simulated under the same seed and budget. Simulator runs
//! are pure functions of their [`SimConfig`] — repeating one returns a
//! bit-identical [`SimResult`] — so a process-wide memo table keyed by
//! the config's exact value can return the stored result instead of
//! re-simulating, without changing a single output byte.
//!
//! The key is the config's `Debug` rendering: Rust formats every float
//! as the shortest string that round-trips to the same bits, so the
//! rendering is injective on configs. Two configs share a key exactly
//! when they are bit-identical, which is exactly the condition under
//! which the deterministic simulators agree bit for bit.
//!
//! The table is **bounded**: entries beyond [`DEFAULT_CAPACITY`] evict
//! the least-recently-used key, so a long-running process (the
//! `hmcs-serve` daemon, a soak test) cannot grow it without limit. An
//! eviction only costs a re-simulation on the next identical request —
//! it never changes any result.
//!
//! Hits, misses and evictions are counted in the metrics registry (and
//! therefore appear in every run manifest) under [`SIM_CACHE_HITS`] /
//! [`SIM_CACHE_MISSES`] / [`SIM_CACHE_EVICTIONS`], so a dedup
//! regression is visible in CI.
//!
//! Concurrency: the table is shared across the batch pool's workers.
//! A miss releases the lock while simulating, so two workers may race
//! on the same config; both compute the same result and the second
//! insert is a no-op in effect. Errors are not cached — they are cheap
//! to recompute and never occur in the reproduce pipeline.

use hmcs_core::error::ModelError;
use hmcs_core::metrics;
use hmcs_sim::flow::FlowSimulator;
use hmcs_sim::packet::PacketSimulator;
use hmcs_sim::{SimConfig, SimResult};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Metrics counter: memoised runs served from the table.
pub const SIM_CACHE_HITS: &str = "bench.sim_cache.hits";
/// Metrics counter: runs that had to simulate.
pub const SIM_CACHE_MISSES: &str = "bench.sim_cache.misses";
/// Metrics counter: least-recently-used entries dropped at the bound.
pub const SIM_CACHE_EVICTIONS: &str = "bench.sim_cache.evictions";

/// Entry bound of the process-global table. `reproduce all` peaks at
/// well under 200 distinct configs, so the bound never fires there; it
/// exists for long-running processes that stream novel configs.
pub const DEFAULT_CAPACITY: usize = 512;

/// A bounded least-recently-used map. Recency is a monotone tick
/// stamped on insert and on hit; eviction scans for the minimum stamp.
/// The O(n) scan is deliberate: eviction happens at most once per
/// *simulation* (milliseconds to seconds), so a few hundred key
/// comparisons are noise and the simple structure stays obviously
/// correct.
struct LruTable {
    entries: HashMap<String, (SimResult, u64)>,
    capacity: usize,
    tick: u64,
}

impl LruTable {
    fn new(capacity: usize) -> Self {
        LruTable { entries: HashMap::new(), capacity: capacity.max(1), tick: 0 }
    }

    fn get(&mut self, key: &str) -> Option<SimResult> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(result, used)| {
            *used = tick;
            result.clone()
        })
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry while over capacity. Returns the number of evictions.
    fn insert(&mut self, key: String, result: SimResult) -> usize {
        self.tick += 1;
        self.entries.insert(key, (result, self.tick));
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
                .expect("over-capacity table is non-empty");
            self.entries.remove(&oldest);
            evicted += 1;
        }
        evicted
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.entries.len()
    }

    #[cfg(test)]
    fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }
}

fn table() -> &'static Mutex<LruTable> {
    static TABLE: OnceLock<Mutex<LruTable>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(LruTable::new(DEFAULT_CAPACITY)))
}

fn run_cached(
    key: String,
    run: impl FnOnce() -> Result<SimResult, ModelError>,
) -> Result<SimResult, ModelError> {
    if let Some(result) = table().lock().expect("sim cache poisoned").get(&key) {
        metrics::counter(SIM_CACHE_HITS).incr();
        return Ok(result);
    }
    metrics::counter(SIM_CACHE_MISSES).incr();
    let result = run()?;
    let evicted = table().lock().expect("sim cache poisoned").insert(key, result.clone());
    metrics::counter(SIM_CACHE_EVICTIONS).add(evicted as u64);
    Ok(result)
}

/// [`FlowSimulator::run`] through the memo table.
pub fn flow_run(cfg: &SimConfig) -> Result<SimResult, ModelError> {
    run_cached(format!("flow/{cfg:?}"), || FlowSimulator::run(cfg))
}

/// [`PacketSimulator::run`] through the memo table.
pub fn packet_run(cfg: &SimConfig) -> Result<SimResult, ModelError> {
    run_cached(format!("packet/{cfg:?}"), || PacketSimulator::run(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmcs_core::config::SystemConfig;
    use hmcs_core::scenario::Scenario;
    use hmcs_topology::transmission::Architecture;

    fn cfg(seed: u64) -> SimConfig {
        let system =
            SystemConfig::paper_preset(Scenario::Case1, 4, Architecture::NonBlocking).unwrap();
        SimConfig::new(system).with_messages(400).with_seed(seed)
    }

    fn result(seed: u64) -> SimResult {
        FlowSimulator::run(&cfg(seed)).unwrap()
    }

    #[test]
    fn cached_runs_are_bit_identical_to_direct_runs() {
        let c = cfg(9001);
        let direct = FlowSimulator::run(&c).unwrap();
        let first = flow_run(&c).unwrap();
        let second = flow_run(&c).unwrap();
        assert_eq!(first, direct);
        assert_eq!(second, direct);

        let direct = PacketSimulator::run(&c).unwrap();
        assert_eq!(packet_run(&c).unwrap(), direct);
        assert_eq!(packet_run(&c).unwrap(), direct);
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let a = flow_run(&cfg(9002)).unwrap();
        let b = flow_run(&cfg(9003)).unwrap();
        assert_ne!(a.mean_latency_us, b.mean_latency_us);
        // The flow and packet simulators never share entries even for
        // the same config.
        let c = cfg(9004);
        let flow = flow_run(&c).unwrap();
        let packet = packet_run(&c).unwrap();
        assert_ne!(flow.mean_latency_us, packet.mean_latency_us);
    }

    #[test]
    fn lru_evicts_least_recently_used_at_the_bound() {
        let mut lru = LruTable::new(2);
        assert_eq!(lru.insert("a".into(), result(1)), 0);
        assert_eq!(lru.insert("b".into(), result(2)), 0);
        // Touch "a" so "b" becomes the coldest entry.
        assert!(lru.get("a").is_some());
        assert_eq!(lru.insert("c".into(), result(3)), 1);
        assert_eq!(lru.len(), 2);
        assert!(lru.contains("a"), "recently-used entry must survive");
        assert!(!lru.contains("b"), "least-recently-used entry must be evicted");
        assert!(lru.contains("c"));
        // Evicted keys miss; surviving keys still hit with their value.
        assert!(lru.get("b").is_none());
        assert_eq!(lru.get("a").unwrap(), result(1));
    }

    #[test]
    fn eviction_increments_the_metric_and_preserves_results() {
        // Drive the real run_cached path against the global table: the
        // global capacity (512) is far above what tests insert, so
        // force evictions through a dedicated small table instead.
        let mut lru = LruTable::new(1);
        let evictions_before = metrics::counter(SIM_CACHE_EVICTIONS).get();
        metrics::counter(SIM_CACHE_EVICTIONS).add(lru.insert("x".into(), result(11)) as u64);
        metrics::counter(SIM_CACHE_EVICTIONS).add(lru.insert("y".into(), result(12)) as u64);
        assert_eq!(metrics::counter(SIM_CACHE_EVICTIONS).get(), evictions_before + 1);
        // A re-inserted key returns the same bit-identical result.
        assert!(lru.get("x").is_none());
        assert_eq!(lru.insert("x".into(), result(11)), 1);
        assert_eq!(lru.get("x").unwrap(), result(11));
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut lru = LruTable::new(0);
        lru.insert("only".into(), result(21));
        assert_eq!(lru.len(), 1);
        lru.insert("next".into(), result(22));
        assert_eq!(lru.len(), 1);
        assert!(lru.contains("next"));
    }
}
