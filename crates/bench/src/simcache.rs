//! Cross-artefact memoisation of simulation runs.
//!
//! `reproduce all` re-simulates several identical configurations: the
//! ablation baseline arms, the packet-validation flow column, and the
//! bounds sweep all run paper-preset systems that the figure sweeps
//! already simulated under the same seed and budget. Simulator runs
//! are pure functions of their [`SimConfig`] — repeating one returns a
//! bit-identical [`SimResult`] — so a process-wide memo table keyed by
//! the config's exact value can return the stored result instead of
//! re-simulating, without changing a single output byte.
//!
//! The key is the config's `Debug` rendering: Rust formats every float
//! as the shortest string that round-trips to the same bits, so the
//! rendering is injective on configs. Two configs share a key exactly
//! when they are bit-identical, which is exactly the condition under
//! which the deterministic simulators agree bit for bit.
//!
//! Hits and misses are counted in the metrics registry (and therefore
//! appear in every run manifest) under [`SIM_CACHE_HITS`] /
//! [`SIM_CACHE_MISSES`], so a dedup regression is visible in CI.
//!
//! Concurrency: the table is shared across the batch pool's workers.
//! A miss releases the lock while simulating, so two workers may race
//! on the same config; both compute the same result and the second
//! insert is a no-op in effect. Errors are not cached — they are cheap
//! to recompute and never occur in the reproduce pipeline.

use hmcs_core::error::ModelError;
use hmcs_core::metrics;
use hmcs_sim::flow::FlowSimulator;
use hmcs_sim::packet::PacketSimulator;
use hmcs_sim::{SimConfig, SimResult};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Metrics counter: memoised runs served from the table.
pub const SIM_CACHE_HITS: &str = "bench.sim_cache.hits";
/// Metrics counter: runs that had to simulate.
pub const SIM_CACHE_MISSES: &str = "bench.sim_cache.misses";

fn table() -> &'static Mutex<HashMap<String, SimResult>> {
    static TABLE: OnceLock<Mutex<HashMap<String, SimResult>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn run_cached(
    key: String,
    run: impl FnOnce() -> Result<SimResult, ModelError>,
) -> Result<SimResult, ModelError> {
    if let Some(result) = table().lock().expect("sim cache poisoned").get(&key) {
        metrics::counter(SIM_CACHE_HITS).incr();
        return Ok(result.clone());
    }
    metrics::counter(SIM_CACHE_MISSES).incr();
    let result = run()?;
    table().lock().expect("sim cache poisoned").insert(key, result.clone());
    Ok(result)
}

/// [`FlowSimulator::run`] through the memo table.
pub fn flow_run(cfg: &SimConfig) -> Result<SimResult, ModelError> {
    run_cached(format!("flow/{cfg:?}"), || FlowSimulator::run(cfg))
}

/// [`PacketSimulator::run`] through the memo table.
pub fn packet_run(cfg: &SimConfig) -> Result<SimResult, ModelError> {
    run_cached(format!("packet/{cfg:?}"), || PacketSimulator::run(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmcs_core::config::SystemConfig;
    use hmcs_core::scenario::Scenario;
    use hmcs_topology::transmission::Architecture;

    fn cfg(seed: u64) -> SimConfig {
        let system =
            SystemConfig::paper_preset(Scenario::Case1, 4, Architecture::NonBlocking).unwrap();
        SimConfig::new(system).with_messages(400).with_seed(seed)
    }

    #[test]
    fn cached_runs_are_bit_identical_to_direct_runs() {
        let c = cfg(9001);
        let direct = FlowSimulator::run(&c).unwrap();
        let first = flow_run(&c).unwrap();
        let second = flow_run(&c).unwrap();
        assert_eq!(first, direct);
        assert_eq!(second, direct);

        let direct = PacketSimulator::run(&c).unwrap();
        assert_eq!(packet_run(&c).unwrap(), direct);
        assert_eq!(packet_run(&c).unwrap(), direct);
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let a = flow_run(&cfg(9002)).unwrap();
        let b = flow_run(&cfg(9003)).unwrap();
        assert_ne!(a.mean_latency_us, b.mean_latency_us);
        // The flow and packet simulators never share entries even for
        // the same config.
        let c = cfg(9004);
        let flow = flow_run(&c).unwrap();
        let packet = packet_run(&c).unwrap();
        assert_ne!(flow.mean_latency_us, packet.mean_latency_us);
    }
}
