//! The latency-matrix topology artefact: empirical matrix → identified
//! HMCS clusters → sharded large-scale validation.
//!
//! Runs the full inverse pipeline the `latmatrix`/`identify`/`shard`
//! subsystem provides, end to end, per case:
//!
//! 1. **Generate** a synthetic WAN/LAN latency matrix with a planted
//!    cluster structure ([`hmcs_topology::latmatrix::SyntheticSpec`]);
//!    the large case is 10,000 nodes, served implicitly in O(n) memory.
//! 2. **Identify** the clusters back from latencies alone
//!    ([`hmcs_core::identify`]) and record whether the planted
//!    partition is recovered bit-exactly, plus the fit residuals.
//! 3. **Fit** an HMCS [`SystemConfig`] from the identified structure
//!    and pin λ at a controlled fraction of its saturation rate.
//! 4. **Validate** the analytical (QNA) latency of the fitted config
//!    against the per-cluster *sharded* flow simulation
//!    ([`hmcs_sim::shard`]) driven by the identified partition and
//!    modulated by the matrix's per-pair residuals, using the same
//!    agreement band as the differential fuzzer.
//!
//! The sharded simulator never consults the analytical solver (its
//! background fixed point is measured, not predicted), so step 4 is a
//! genuine differential check, now at a scale the monolithic simulator
//! cannot reach in CI.

use crate::differential::agreement_band;
use hmcs_core::error::ModelError;
use hmcs_core::identify::{self, FitOptions, IdentifyOptions};
use hmcs_core::qna;
use hmcs_core::service::ServiceTimes;
use hmcs_core::solver::saturation_lambda;
use hmcs_core::SystemConfig;
use hmcs_sim::config::SimConfig;
use hmcs_sim::replication::SimBudget;
use hmcs_sim::shard::{run_sharded_with, HopDelays, ShardOptions};
use hmcs_topology::latmatrix::{LatencyBand, LatencySource, SyntheticSpec};
use std::time::Instant;

/// Fraction of the fitted config's saturation rate the validation runs
/// at: moderate load, squarely inside the differential fuzzer's
/// validated region.
pub const VALIDATION_UTILIZATION: f64 = 0.3;

/// One topology pipeline case.
#[derive(Debug, Clone, Copy)]
pub struct TopologyCase {
    /// Case name (CSV key).
    pub name: &'static str,
    /// Planted clusters.
    pub clusters: usize,
    /// Nodes per planted cluster.
    pub nodes_per_cluster: usize,
    /// Intra-cluster band (LAN) mean, µs.
    pub intra_mean_us: f64,
    /// Inter-cluster band (WAN) mean, µs.
    pub inter_mean_us: f64,
    /// Band std/mean ratio.
    pub jitter: f64,
    /// Whether node labels are shuffled.
    pub shuffle: bool,
}

/// The committed cases: a small dense-matrix case (materialisable as
/// CSV) and the 10k-node scale case served implicitly. The intra band
/// sits on the Fast-Ethernet preset latency so the fit snaps to a named
/// technology; the inter band is a genuine WAN latency no preset
/// matches, exercising the custom-technology path.
pub const TOPOLOGY_CASES: [TopologyCase; 2] = [
    TopologyCase {
        name: "lan_8x32",
        clusters: 8,
        nodes_per_cluster: 32,
        intra_mean_us: 50.0,
        inter_mean_us: 420.0,
        jitter: 0.05,
        shuffle: true,
    },
    TopologyCase {
        name: "wan_16x625",
        clusters: 16,
        nodes_per_cluster: 625,
        intra_mean_us: 50.0,
        inter_mean_us: 420.0,
        jitter: 0.05,
        shuffle: true,
    },
];

/// Everything one case's pipeline produced.
#[derive(Debug, Clone)]
pub struct TopologyCaseResult {
    /// The case that ran.
    pub case: TopologyCase,
    /// Total nodes in the matrix.
    pub nodes: usize,
    /// Planted cluster count.
    pub planted_clusters: usize,
    /// Identified cluster count.
    pub identified_clusters: usize,
    /// Whether the identified partition equals the planted one
    /// bit-exactly.
    pub roundtrip: bool,
    /// Identified gap threshold (µs), if any.
    pub threshold_us: Option<f64>,
    /// Identified intra-band median (µs).
    pub intra_median_us: f64,
    /// Identified inter-band median (µs), if any.
    pub inter_median_us: Option<f64>,
    /// Residual score of the two-level fit.
    pub residual_score: f64,
    /// Wall-clock seconds the identification pass took.
    pub identify_wall_s: f64,
    /// Identified per-cluster sizes, in canonical cluster order.
    pub cluster_sizes: Vec<usize>,
    /// Smallest member node of each identified cluster (canonical
    /// order), a deterministic fingerprint of the partition itself.
    pub cluster_leads: Vec<usize>,
    /// The fitted configuration the validation ran on.
    pub fitted: SystemConfig,
    /// Shards the sharded simulation ran (== identified clusters).
    pub shards: usize,
    /// QNA analytical mean latency of the fitted config (ms).
    pub analysis_ms: f64,
    /// Sharded-simulation grand mean latency (ms).
    pub sim_ms: f64,
    /// 95% confidence half-width over shard means (ms).
    pub ci95_ms: f64,
    /// Allowed |analysis − sim| gap (ms): `3·CI95 + band·sim`.
    pub allowed_ms: f64,
    /// Whether analysis and sharded simulation agree.
    pub agrees: bool,
    /// Measured messages across all shards.
    pub messages: u64,
    /// Background boundary messages absorbed across shards.
    pub boundary_in: u64,
    /// Local external messages crossing the ICN2 across shards.
    pub boundary_out: u64,
    /// Wall-clock seconds the sharded simulation took.
    pub sim_wall_s: f64,
}

impl TopologyCaseResult {
    /// Background boundary messages per measured message.
    pub fn boundary_in_per_msg(&self) -> f64 {
        self.boundary_in as f64 / self.messages as f64
    }

    /// Fraction of measured messages that crossed a shard boundary.
    pub fn boundary_out_frac(&self) -> f64 {
        self.boundary_out as f64 / self.messages as f64
    }
}

/// Options for [`run_topology`].
#[derive(Debug, Clone, Copy)]
pub struct TopologyOptions {
    /// Master seed (generator and simulation).
    pub seed: u64,
    /// Simulation budget (per-shard messages/warm-up).
    pub budget: SimBudget,
}

impl Default for TopologyOptions {
    fn default() -> Self {
        TopologyOptions { seed: 2005, budget: SimBudget::Paper }
    }
}

/// Builds the generator spec for a case.
pub fn case_spec(case: &TopologyCase, seed: u64) -> Result<SyntheticSpec, ModelError> {
    let intra = LatencyBand::new(case.intra_mean_us, case.jitter * case.intra_mean_us)?;
    let inter = LatencyBand::new(case.inter_mean_us, case.jitter * case.inter_mean_us)?;
    let mut spec =
        SyntheticSpec::uniform(case.clusters, case.nodes_per_cluster, intra, inter, seed);
    spec.shuffle = case.shuffle;
    Ok(spec)
}

/// Runs one case's full pipeline.
pub fn run_case(
    case: &TopologyCase,
    options: &TopologyOptions,
) -> Result<TopologyCaseResult, ModelError> {
    let spec = case_spec(case, options.seed)?;
    let source = spec.source()?;
    let planted = source.partition();

    let identify_started = Instant::now();
    let identified = identify::identify(&source, &IdentifyOptions::default())?;
    let identify_wall_s = identify_started.elapsed().as_secs_f64();
    let roundtrip = identified.partition == planted;

    // Fit, then pin λ at a fixed fraction of the fitted saturation rate
    // so the validation load is controlled regardless of what
    // technologies the fit chose.
    let fitted = identify::fitted_config(&identified, &FitOptions::default())?;
    let service = ServiceTimes::compute(&fitted)?;
    let fitted = fitted.with_lambda(VALIDATION_UTILIZATION * saturation_lambda(&fitted, &service));
    fitted.validate()?;

    let analysis_ms = qna::evaluate(&fitted)?.latency.mean_message_latency_ms();

    let (messages, warmup) = options.budget.single_run();
    let sim_cfg =
        SimConfig::new(fitted).with_messages(messages).with_warmup(warmup).with_seed(options.seed);
    let hop = HopDelays {
        source: &source,
        intra_centre_us: identified.intra_median_us,
        inter_centre_us: identified.inter_median_us.unwrap_or(identified.intra_median_us),
    };
    let sim_started = Instant::now();
    let summary =
        run_sharded_with(&sim_cfg, &identified.partition, Some(hop), &ShardOptions::default())?;
    let sim_wall_s = sim_started.elapsed().as_secs_f64();

    let sim_ms = summary.mean_latency_us() / 1e3;
    let ci95_ms = summary.latency_ci95_us() / 1e3;
    let band = agreement_band(VALIDATION_UTILIZATION, true);
    let allowed_ms = 3.0 * ci95_ms + band * sim_ms;
    let agrees = (analysis_ms - sim_ms).abs() <= allowed_ms;
    let (boundary_in, boundary_out) = summary.boundary_totals();

    Ok(TopologyCaseResult {
        case: *case,
        nodes: source.nodes(),
        planted_clusters: planted.len(),
        identified_clusters: identified.partition.len(),
        roundtrip,
        threshold_us: identified.threshold_us,
        intra_median_us: identified.intra_median_us,
        inter_median_us: identified.inter_median_us,
        residual_score: identified.residual.score,
        identify_wall_s,
        cluster_sizes: identified.partition.iter().map(Vec::len).collect(),
        cluster_leads: identified.partition.iter().map(|m| m[0]).collect(),
        fitted,
        shards: identified.partition.len(),
        analysis_ms,
        sim_ms,
        ci95_ms,
        allowed_ms,
        agrees,
        messages: summary.total_messages(),
        boundary_in,
        boundary_out,
        sim_wall_s,
    })
}

/// Runs the full committed case list.
pub fn run_topology(options: &TopologyOptions) -> Result<Vec<TopologyCaseResult>, ModelError> {
    TOPOLOGY_CASES.iter().map(|case| run_case(case, options)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_case_pipeline_recovers_and_agrees() {
        let case = &TOPOLOGY_CASES[0];
        let r = run_case(case, &TopologyOptions { seed: 2005, budget: SimBudget::Ci }).unwrap();
        assert_eq!(r.nodes, 256);
        assert!(
            r.roundtrip,
            "identified {} of {} clusters",
            r.identified_clusters, r.planted_clusters
        );
        assert_eq!(r.identified_clusters, 8);
        assert_eq!(r.cluster_sizes, vec![32; 8]);
        // Intra median sits on the Fast-Ethernet preset latency; the
        // fit must have snapped to it.
        assert!((r.intra_median_us - 50.0).abs() / 50.0 < 0.05);
        assert_eq!(r.fitted.icn1.latency_us, 50.0);
        assert!(
            r.agrees,
            "analysis {} ms vs sharded sim {} ms (allowed {})",
            r.analysis_ms, r.sim_ms, r.allowed_ms
        );
        assert!(r.boundary_out > 0 && r.boundary_in > 0);
    }

    #[test]
    fn case_spec_is_deterministic() {
        let case = &TOPOLOGY_CASES[0];
        let a = case_spec(case, 7).unwrap().source().unwrap();
        let b = case_spec(case, 7).unwrap().source().unwrap();
        assert_eq!(a.latency_us(3, 200).to_bits(), b.latency_us(3, 200).to_bits());
        let c = case_spec(case, 8).unwrap().source().unwrap();
        assert_ne!(a.latency_us(3, 200).to_bits(), c.latency_us(3, 200).to_bits());
    }
}
