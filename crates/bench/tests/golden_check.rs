//! End-to-end tests for the golden-artefact regression harness:
//! `reproduce check`, the claims registry, the `--csv` directory
//! handling fix, and a differential-fuzz smoke run — all driven
//! through the real binary (`CARGO_BIN_EXE_reproduce`).

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn reproduce() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_reproduce"));
    // `check` resolves its default --golden directory (results/)
    // relative to the working directory.
    cmd.current_dir(workspace_root());
    cmd
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hmcs_golden_e2e_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn check_passes_on_committed_goldens() {
    // Acceptance: `reproduce check results/` must pass on a clean tree.
    // Diffing the goldens against themselves exercises the whole spec
    // (all 21 artefacts parse, every column resolves a tolerance) and
    // the claims registry does real content checks on the data.
    let output = reproduce().args(["check", "results"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "check failed on clean tree:\n{stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("golden check: 21 artefact(s), 0 diff(s) — PASS"), "{stdout}");
    assert!(stdout.contains("claims: 20 evaluated, 0 failed — PASS"), "{stdout}");
}

#[test]
fn check_fails_with_cell_diff_on_drift() {
    // Copy the goldens, nudge one analysis cell beyond its 0.5% band,
    // and expect a non-zero exit naming the exact cell.
    let dir = temp_dir("drift");
    std::fs::create_dir_all(&dir).unwrap();
    let results = workspace_root().join("results");
    for entry in std::fs::read_dir(&results).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "csv") {
            std::fs::copy(&path, dir.join(path.file_name().unwrap())).unwrap();
        }
    }
    let fig4 = dir.join("fig4.csv");
    let drifted = std::fs::read_to_string(&fig4).unwrap().replace("12.722", "12.922");
    std::fs::write(&fig4, drifted).unwrap();

    let output = reproduce().args(["check"]).arg(&dir).output().unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(!output.status.success(), "drifted artefact must fail the check:\n{stdout}");
    assert!(stdout.contains("FAIL  fig4.csv"), "{stdout}");
    assert!(
        stdout.contains("[clusters=2]") && stdout.contains("12.722"),
        "diff must name the cell and golden value:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_errors_cleanly_on_missing_candidate() {
    let output = reproduce().args(["check", "/nonexistent/candidate"]).output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error:"), "want a clean error, got:\n{stderr}");
}

#[test]
fn csv_dir_is_created_when_missing() {
    // Regression: `--csv` with a not-yet-existing nested directory must
    // create it rather than fail mid-run.
    let dir = temp_dir("create").join("nested/deeper");
    let output = reproduce().args(["table1", "--no-sim", "--csv"]).arg(&dir).output().unwrap();
    assert!(
        output.status.success(),
        "fresh nested --csv dir must work: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(dir.join("table1.csv").is_file());
    std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap()).ok();
}

#[test]
fn csv_dir_unwritable_is_a_clean_error() {
    // A path that descends through a regular file can never become a
    // directory — this stays an error even for root, unlike permission
    // bits. Expect a single clean message, not a panic or partial run.
    let base = temp_dir("unwritable");
    std::fs::create_dir_all(&base).unwrap();
    let file = base.join("occupied");
    std::fs::write(&file, b"a file, not a directory").unwrap();
    let target = file.join("sub");

    let output = reproduce().args(["table1", "--no-sim", "--csv"]).arg(&target).output().unwrap();
    assert!(!output.status.success(), "unwritable --csv path must fail");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("error:") && stderr.contains("cannot create directory"),
        "want the prepare_csv_dir message, got:\n{stderr}"
    );
    assert!(!stderr.contains("panicked"), "must not panic:\n{stderr}");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn fuzz_smoke_finds_no_disagreements() {
    // Acceptance: the fixed-seed fuzz driver finds zero disagreements.
    // A handful of cases keeps the test cheap; CI runs a larger sweep.
    let output = reproduce()
        .args(["fuzz", "--cases", "6", "--seed", "2005"])
        .env("HMCS_SIM_BUDGET", "ci")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "fuzz found disagreements:\n{stdout}");
    assert!(stdout.contains("0 disagreement(s) — PASS"), "{stdout}");
}

#[test]
fn check_rejects_flag_misuse() {
    // --golden outside `check` and --cases outside `fuzz` are refused
    // instead of silently ignored.
    let output = reproduce().args(["fig4", "--no-sim", "--golden", "results"]).output().unwrap();
    assert!(!output.status.success());
    let output = reproduce().args(["fig4", "--no-sim", "--cases", "3"]).output().unwrap();
    assert!(!output.status.success());
}
