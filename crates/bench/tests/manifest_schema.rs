//! Schema-checks the run manifest the `reproduce` binary writes next
//! to its CSVs (acceptance: `reproduce fig4 --csv results/` must emit
//! a valid `manifest_fig4.json` with solver-iteration and wall-clock
//! histograms).

use hmcs_bench::experiments::{self, RunOptions, FIG4};
use hmcs_bench::manifest::{self, JsonValue};

fn fast_opts() -> RunOptions {
    // Analysis-only keeps the test fast; the manifest content under
    // test (options, figure histograms, metrics snapshot) is identical.
    RunOptions { with_simulation: false, ..RunOptions::default() }
}

#[test]
fn fig4_manifest_validates_and_carries_solver_histograms() {
    let opts = fast_opts();
    let data = experiments::run_figure(FIG4, &opts).unwrap();
    let json = manifest::manifest_json("fig4", &opts, 4, Some(&data));
    let doc = manifest::validate(&json).expect("fig4 manifest must pass schema validation");

    assert_eq!(doc.get("artefact").unwrap().as_str(), Some("fig4"));
    assert_eq!(doc.get("workers").unwrap().as_num(), Some(4.0));

    let options = doc.get("options").unwrap();
    assert_eq!(options.get("lambda_unit_mode").unwrap().as_str(), Some("figure-scale"));
    assert_eq!(options.get("seed").unwrap().as_num(), Some(opts.seed as f64));
    assert_eq!(options.get("with_simulation"), Some(&JsonValue::Bool(false)));

    let figure = doc.get("figure").unwrap();
    assert_eq!(figure.get("rows").unwrap().as_num(), Some(data.rows.len() as f64));
    assert!(figure.get("wall_clock_us").unwrap().as_num().unwrap() > 0.0);

    // 9 cluster counts x 2 message sizes = 18 analytical points, each
    // contributing one solver-iteration and one wall-clock observation.
    let iters = figure.get("solver_iterations").unwrap();
    assert_eq!(iters.get("count").unwrap().as_num(), Some(18.0));
    assert!(iters.get("sum").unwrap().as_num().unwrap() > 0.0, "solver did iterate");
    let times = figure.get("eval_time_us").unwrap();
    assert_eq!(times.get("count").unwrap().as_num(), Some(18.0));

    // The metrics snapshot must reflect the sweep that just ran.
    let metrics = doc.get("metrics").unwrap();
    let JsonValue::Obj(counters) = metrics.get("counters").unwrap() else {
        panic!("counters must be an object");
    };
    let solves = counters
        .iter()
        .find(|(k, _)| k == "core.solver.solves")
        .map(|(_, v)| v.as_num().unwrap())
        .unwrap_or(0.0);
    assert!(solves >= 18.0, "expected >= 18 recorded solves, saw {solves}");
}

#[test]
fn write_manifest_places_file_beside_csvs() {
    let dir = std::env::temp_dir().join(format!("hmcs-manifest-test-{}", std::process::id()));
    let opts = fast_opts();
    let path = manifest::write_manifest(&dir, "table1", &opts, 2, None).unwrap();
    assert_eq!(path.file_name().unwrap(), "manifest_table1.json");
    let written = std::fs::read_to_string(&path).unwrap();
    manifest::validate(&written).expect("written manifest must validate");
    std::fs::remove_dir_all(&dir).ok();
}
