//! Shared batch-evaluation engine.
//!
//! The figure-reproduction drivers, the parameter sweeps and the
//! simulation replication harness all evaluate many independent
//! [`SystemConfig`]s. This module gives them one bounded worker pool
//! instead of three ad-hoc loops:
//!
//! * [`par_map`] — evaluate a slice on `workers` scoped threads with a
//!   lock-free claim cursor, returning results in **input order**. The
//!   mapping function runs per item with no shared mutable state, so
//!   parallel results are bit-identical to sequential ones.
//! * [`BatchOptions`] — worker-count policy: explicit, the
//!   `HMCS_POOL_WORKERS` environment variable, or
//!   [`std::thread::available_parallelism`].
//! * [`evaluate_one`] / [`evaluate_many`] — the analytical model with
//!   per-point [`EvalStats`] (wall-clock time and fixed-point solver
//!   iterations), optional reuse of precomputed λ-independent
//!   [`ServiceTimes`], and optional warm-started bisection.

use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::metrics::{self, keys};
use crate::model::{AnalyticalModel, PerformanceReport};
use crate::service::ServiceTimes;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Environment variable overriding the default worker count.
pub const WORKERS_ENV: &str = "HMCS_POOL_WORKERS";

/// Parses an `HMCS_POOL_WORKERS` value. Split out from the environment
/// lookup so operator-error handling is unit-testable without touching
/// process state.
pub(crate) fn parse_workers(raw: &str) -> Result<usize, &'static str> {
    let n: usize = raw.trim().parse().map_err(|_| "not a positive integer")?;
    if n == 0 {
        return Err("must be at least 1");
    }
    Ok(n)
}

/// Resolves `HMCS_POOL_WORKERS` once per process and caches the result.
/// An invalid value (`0`, `-2`, `"four"`) is surfaced exactly once
/// through the metrics warning channel instead of being silently
/// ignored, then treated as unset.
fn workers_from_env() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| match std::env::var(WORKERS_ENV) {
        Err(_) => None,
        Ok(raw) => match parse_workers(&raw) {
            Ok(n) => Some(n),
            Err(reason) => {
                metrics::warn_once(
                    keys::WARN_POOL_WORKERS_ENV,
                    format!(
                        "ignoring {WORKERS_ENV}={raw:?} ({reason}); \
                         falling back to available parallelism"
                    ),
                );
                None
            }
        },
    })
}

/// Worker-count policy for batch evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOptions {
    workers: Option<usize>,
}

impl BatchOptions {
    /// Forces single-threaded evaluation (no worker threads spawned).
    pub fn sequential() -> Self {
        BatchOptions { workers: Some(1) }
    }

    /// Uses exactly `workers` threads (floored at 1).
    pub fn with_workers(workers: usize) -> Self {
        BatchOptions { workers: Some(workers.max(1)) }
    }

    /// The worker count this policy resolves to: the explicit value if
    /// set, else a valid `HMCS_POOL_WORKERS`, else the machine's
    /// available parallelism.
    ///
    /// The environment variable is read and validated once per process
    /// (not per call); an invalid value is reported once through
    /// [`metrics::warn_once`] under
    /// [`keys::WARN_POOL_WORKERS_ENV`] and otherwise ignored.
    pub fn resolved_workers(&self) -> usize {
        if let Some(n) = self.workers {
            return n.max(1);
        }
        if let Some(n) = workers_from_env() {
            return n;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Maps `f` over `items` on up to `workers` scoped threads, returning
/// results in input order.
///
/// Workers claim indices from a shared atomic cursor and collect
/// `(index, result)` pairs locally; the pairs are merged after all
/// workers join, so no locks are held while `f` runs. Because `f` sees
/// exactly one item per call and nothing else is shared, the output is
/// bit-identical to `items.iter().map(f).collect()` — only the
/// wall-clock schedule differs. With one worker (or one item) no
/// threads are spawned at all.
pub fn par_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_init(items, workers, || (), |(), item| f(item))
}

/// [`par_map`] with per-worker scratch state: each worker calls `init`
/// once and threads the resulting value mutably through every item it
/// claims.
///
/// This is the hook for expensive reusable resources — e.g. a
/// simulator instance whose arenas and event list stay warm across the
/// replications one worker processes. Correctness contract on `f`: its
/// result must depend only on the item (the state may cache or reuse
/// storage but must not leak information between items), so the output
/// stays bit-identical to the sequential path regardless of worker
/// count or claim order. With one worker (or one item) no threads are
/// spawned and a single state value is used throughout.
pub fn par_map_init<T, S, U, FInit, F>(items: &[T], workers: usize, init: FInit, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    FInit: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    let workers = workers.max(1).min(items.len());
    let instrumented = metrics::enabled();
    if instrumented {
        metrics::counter(keys::BATCH_CALLS).incr();
        metrics::counter(keys::BATCH_ITEMS).add(items.len() as u64);
    }
    if workers <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // The timers below only observe the schedule (drain
                    // balance, busy vs idle); they never influence which
                    // items a worker claims or what `f` computes, so
                    // results stay bit-identical to the sequential path.
                    let spawned = Instant::now();
                    let mut busy = std::time::Duration::ZERO;
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        if instrumented {
                            let t0 = Instant::now();
                            let out = f(&mut state, &items[i]);
                            busy += t0.elapsed();
                            local.push((i, out));
                        } else {
                            local.push((i, f(&mut state, &items[i])));
                        }
                    }
                    if instrumented {
                        let total = spawned.elapsed();
                        metrics::histogram(keys::BATCH_WORKER_ITEMS).record(local.len() as u64);
                        metrics::histogram(keys::BATCH_WORKER_BUSY_US)
                            .record_f64(busy.as_secs_f64() * 1e6);
                        metrics::histogram(keys::BATCH_WORKER_IDLE_US)
                            .record_f64(total.saturating_sub(busy).as_secs_f64() * 1e6);
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("batch worker panicked")).collect()
    });

    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for bucket in buckets {
        for (i, value) in bucket {
            debug_assert!(slots[i].is_none(), "index {i} claimed twice");
            slots[i] = Some(value);
        }
    }
    slots.into_iter().map(|s| s.expect("every index claimed exactly once")).collect()
}

/// Cost of one model evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalStats {
    /// Wall-clock evaluation time (µs).
    pub eval_time_us: f64,
    /// Fixed-point function evaluations the bisection spent.
    pub solver_iterations: usize,
}

/// Aggregate of many [`EvalStats`] — what the reproduction binary
/// prints under each figure.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalStatsSummary {
    /// Number of evaluations aggregated.
    pub points: usize,
    /// Sum of per-point wall-clock times (µs).
    pub total_eval_time_us: f64,
    /// Slowest single evaluation (µs).
    pub max_eval_time_us: f64,
    /// Sum of per-point solver iterations.
    pub total_solver_iterations: usize,
}

impl EvalStatsSummary {
    /// Folds one point into the summary.
    pub fn add(&mut self, stats: EvalStats) {
        self.points += 1;
        self.total_eval_time_us += stats.eval_time_us;
        self.max_eval_time_us = self.max_eval_time_us.max(stats.eval_time_us);
        self.total_solver_iterations += stats.solver_iterations;
    }

    /// Builds a summary from an iterator of per-point stats.
    pub fn collect<I: IntoIterator<Item = EvalStats>>(stats: I) -> Self {
        let mut out = Self::default();
        for s in stats {
            out.add(s);
        }
        out
    }

    /// Mean wall-clock time per evaluation (µs); 0 when empty.
    pub fn mean_eval_time_us(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.total_eval_time_us / self.points as f64
        }
    }

    /// Mean solver iterations per evaluation; 0 when empty.
    pub fn mean_solver_iterations(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.total_solver_iterations as f64 / self.points as f64
        }
    }
}

/// Evaluates one configuration, timing the work.
///
/// `service` lets λ-sweeps reuse the λ-independent service times
/// (computed fresh when `None`); `seed` warm-starts the effective-rate
/// bisection (ignored when outside the bracket).
pub fn evaluate_one(
    config: &SystemConfig,
    service: Option<&ServiceTimes>,
    seed: Option<f64>,
) -> Result<(PerformanceReport, EvalStats), ModelError> {
    let start = Instant::now();
    config.validate()?;
    let report = match service {
        Some(s) => AnalyticalModel::evaluate_with_service_seeded(config, s, seed)?,
        None => {
            let s = ServiceTimes::compute(config)?;
            AnalyticalModel::evaluate_with_service_seeded(config, &s, seed)?
        }
    };
    let stats = EvalStats {
        eval_time_us: start.elapsed().as_secs_f64() * 1e6,
        solver_iterations: report.equilibrium.solver_iterations,
    };
    metrics::histogram(keys::BATCH_EVAL_TIME_US).record_f64(stats.eval_time_us);
    Ok((report, stats))
}

/// Evaluates a batch of configurations on the pool, in input order.
///
/// Runs on the batched structure-of-arrays kernel
/// ([`crate::kernel::BatchKernel`]): each worker advances one
/// contiguous block of lanes in lockstep. Every result is bit-identical
/// to [`evaluate_one`] on the same configuration — the scalar path
/// stays as the differential oracle the kernel is property-tested
/// against.
pub fn evaluate_many(
    configs: &[SystemConfig],
    options: BatchOptions,
) -> Vec<Result<(PerformanceReport, EvalStats), ModelError>> {
    crate::kernel::evaluate_batch(configs, options.resolved_workers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, PAPER_CLUSTER_COUNTS};
    use hmcs_topology::transmission::Architecture;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..101).collect();
        for workers in [1, 2, 4, 7] {
            let out = par_map(&items, workers, |&i| i * i);
            assert_eq!(out, items.iter().map(|&i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[42u32], 8, |&x| x + 1), vec![43]);
    }

    #[test]
    fn invalid_pool_workers_values_are_rejected_not_ignored() {
        // Regression: resolved_workers() used to swallow these silently
        // and fall through to available_parallelism with no diagnostic.
        assert_eq!(parse_workers("0"), Err("must be at least 1"));
        assert_eq!(parse_workers("-2"), Err("not a positive integer"));
        assert_eq!(parse_workers("four"), Err("not a positive integer"));
        assert_eq!(parse_workers(""), Err("not a positive integer"));
        assert_eq!(parse_workers(" 3 "), Ok(3));
        assert_eq!(parse_workers("17"), Ok(17));
    }

    #[test]
    fn invalid_pool_workers_env_warns_once_through_metrics() {
        // Drive the same path workers_from_env() takes on a bad value,
        // without mutating process env (tests share the process).
        let raw = "four";
        let reason = parse_workers(raw).unwrap_err();
        let key = "test.batch.pool_workers_env";
        let msg = format!("ignoring {WORKERS_ENV}={raw:?} ({reason})");
        assert!(metrics::warn_once(key, msg.clone()));
        assert!(!metrics::warn_once(key, msg));
        let warning = metrics::global().warning(key).unwrap();
        assert!(warning.contains("four"));
        assert!(warning.contains("not a positive integer"));
    }

    #[test]
    fn par_map_records_batch_metrics() {
        let calls_before = metrics::counter(keys::BATCH_CALLS).get();
        let items_before = metrics::counter(keys::BATCH_ITEMS).get();
        let items: Vec<u64> = (0..37).collect();
        let out = par_map(&items, 4, |&x| x * 2);
        assert_eq!(out[36], 72);
        assert_eq!(metrics::counter(keys::BATCH_CALLS).get(), calls_before + 1);
        assert_eq!(metrics::counter(keys::BATCH_ITEMS).get(), items_before + 37);
        let workers = metrics::histogram(keys::BATCH_WORKER_ITEMS).snapshot();
        assert!(workers.count >= 2, "multi-worker batch should record per-worker drain");
    }

    #[test]
    fn worker_resolution_prefers_explicit_count() {
        assert_eq!(BatchOptions::sequential().resolved_workers(), 1);
        assert_eq!(BatchOptions::with_workers(3).resolved_workers(), 3);
        assert_eq!(BatchOptions::with_workers(0).resolved_workers(), 1);
        assert!(BatchOptions::default().resolved_workers() >= 1);
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential() {
        let configs: Vec<SystemConfig> = PAPER_CLUSTER_COUNTS
            .iter()
            .map(|&c| {
                SystemConfig::paper_preset(Scenario::Case1, c, Architecture::Blocking).unwrap()
            })
            .collect();
        let seq = evaluate_many(&configs, BatchOptions::sequential());
        let par = evaluate_many(&configs, BatchOptions::with_workers(4));
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            let (sr, _) = s.as_ref().unwrap();
            let (pr, _) = p.as_ref().unwrap();
            // PerformanceReport is PartialEq over every f64 it holds:
            // this is exact, bit-level equality, not a tolerance check.
            assert_eq!(sr, pr);
        }
    }

    #[test]
    fn evaluation_errors_stay_in_their_slot() {
        let good =
            SystemConfig::paper_preset(Scenario::Case1, 4, Architecture::NonBlocking).unwrap();
        let bad = good.with_lambda(-1.0);
        let out = evaluate_many(&[good, bad, good], BatchOptions::with_workers(2));
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
    }

    #[test]
    fn par_map_init_matches_sequential_order_and_results() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for workers in [1, 2, 5, 32] {
            let out = par_map_init(
                &items,
                workers,
                // Per-worker scratch buffer standing in for a reusable
                // simulator instance.
                Vec::<u64>::new,
                |scratch, &x| {
                    scratch.push(x);
                    x * x + 1
                },
            );
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn par_map_init_builds_one_state_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        let out = par_map_init(&items, 4, || inits.fetch_add(1, Ordering::Relaxed), |_state, &x| x);
        assert_eq!(out, items);
        // One init per worker — never one per item.
        let states = inits.load(Ordering::Relaxed);
        assert!(states <= 4, "expected at most 4 states, got {states}");
    }

    #[test]
    fn stats_summary_aggregates() {
        let summary = EvalStatsSummary::collect([
            EvalStats { eval_time_us: 10.0, solver_iterations: 40 },
            EvalStats { eval_time_us: 30.0, solver_iterations: 60 },
        ]);
        assert_eq!(summary.points, 2);
        assert_eq!(summary.total_eval_time_us, 40.0);
        assert_eq!(summary.max_eval_time_us, 30.0);
        assert_eq!(summary.total_solver_iterations, 100);
        assert_eq!(summary.mean_eval_time_us(), 20.0);
        assert_eq!(summary.mean_solver_iterations(), 50.0);
    }
}
