//! Shared batch-evaluation engine.
//!
//! The figure-reproduction drivers, the parameter sweeps and the
//! simulation replication harness all evaluate many independent
//! [`SystemConfig`]s. This module gives them one bounded worker pool
//! instead of three ad-hoc loops:
//!
//! * [`par_map`] — evaluate a slice on `workers` scoped threads with a
//!   lock-free claim cursor, returning results in **input order**. The
//!   mapping function runs per item with no shared mutable state, so
//!   parallel results are bit-identical to sequential ones.
//! * [`BatchOptions`] — worker-count policy: explicit, the
//!   `HMCS_POOL_WORKERS` environment variable, or
//!   [`std::thread::available_parallelism`].
//! * [`evaluate_one`] / [`evaluate_many`] — the analytical model with
//!   per-point [`EvalStats`] (wall-clock time and fixed-point solver
//!   iterations), optional reuse of precomputed λ-independent
//!   [`ServiceTimes`], and optional warm-started bisection.

use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::model::{AnalyticalModel, PerformanceReport};
use crate::service::ServiceTimes;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Environment variable overriding the default worker count.
pub const WORKERS_ENV: &str = "HMCS_POOL_WORKERS";

/// Worker-count policy for batch evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOptions {
    workers: Option<usize>,
}

impl BatchOptions {
    /// Forces single-threaded evaluation (no worker threads spawned).
    pub fn sequential() -> Self {
        BatchOptions { workers: Some(1) }
    }

    /// Uses exactly `workers` threads (floored at 1).
    pub fn with_workers(workers: usize) -> Self {
        BatchOptions { workers: Some(workers.max(1)) }
    }

    /// The worker count this policy resolves to: the explicit value if
    /// set, else a positive `HMCS_POOL_WORKERS`, else the machine's
    /// available parallelism.
    pub fn resolved_workers(&self) -> usize {
        if let Some(n) = self.workers {
            return n.max(1);
        }
        if let Ok(v) = std::env::var(WORKERS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Maps `f` over `items` on up to `workers` scoped threads, returning
/// results in input order.
///
/// Workers claim indices from a shared atomic cursor and collect
/// `(index, result)` pairs locally; the pairs are merged after all
/// workers join, so no locks are held while `f` runs. Because `f` sees
/// exactly one item per call and nothing else is shared, the output is
/// bit-identical to `items.iter().map(f).collect()` — only the
/// wall-clock schedule differs. With one worker (or one item) no
/// threads are spawned at all.
pub fn par_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("batch worker panicked")).collect()
    });

    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for bucket in buckets {
        for (i, value) in bucket {
            debug_assert!(slots[i].is_none(), "index {i} claimed twice");
            slots[i] = Some(value);
        }
    }
    slots.into_iter().map(|s| s.expect("every index claimed exactly once")).collect()
}

/// Cost of one model evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalStats {
    /// Wall-clock evaluation time (µs).
    pub eval_time_us: f64,
    /// Fixed-point function evaluations the bisection spent.
    pub solver_iterations: usize,
}

/// Aggregate of many [`EvalStats`] — what the reproduction binary
/// prints under each figure.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalStatsSummary {
    /// Number of evaluations aggregated.
    pub points: usize,
    /// Sum of per-point wall-clock times (µs).
    pub total_eval_time_us: f64,
    /// Slowest single evaluation (µs).
    pub max_eval_time_us: f64,
    /// Sum of per-point solver iterations.
    pub total_solver_iterations: usize,
}

impl EvalStatsSummary {
    /// Folds one point into the summary.
    pub fn add(&mut self, stats: EvalStats) {
        self.points += 1;
        self.total_eval_time_us += stats.eval_time_us;
        self.max_eval_time_us = self.max_eval_time_us.max(stats.eval_time_us);
        self.total_solver_iterations += stats.solver_iterations;
    }

    /// Builds a summary from an iterator of per-point stats.
    pub fn collect<I: IntoIterator<Item = EvalStats>>(stats: I) -> Self {
        let mut out = Self::default();
        for s in stats {
            out.add(s);
        }
        out
    }

    /// Mean wall-clock time per evaluation (µs); 0 when empty.
    pub fn mean_eval_time_us(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.total_eval_time_us / self.points as f64
        }
    }

    /// Mean solver iterations per evaluation; 0 when empty.
    pub fn mean_solver_iterations(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.total_solver_iterations as f64 / self.points as f64
        }
    }
}

/// Evaluates one configuration, timing the work.
///
/// `service` lets λ-sweeps reuse the λ-independent service times
/// (computed fresh when `None`); `seed` warm-starts the effective-rate
/// bisection (ignored when outside the bracket).
pub fn evaluate_one(
    config: &SystemConfig,
    service: Option<&ServiceTimes>,
    seed: Option<f64>,
) -> Result<(PerformanceReport, EvalStats), ModelError> {
    let start = Instant::now();
    config.validate()?;
    let report = match service {
        Some(s) => AnalyticalModel::evaluate_with_service_seeded(config, s, seed)?,
        None => {
            let s = ServiceTimes::compute(config)?;
            AnalyticalModel::evaluate_with_service_seeded(config, &s, seed)?
        }
    };
    let stats = EvalStats {
        eval_time_us: start.elapsed().as_secs_f64() * 1e6,
        solver_iterations: report.equilibrium.solver_iterations,
    };
    Ok((report, stats))
}

/// Evaluates a batch of configurations on the pool, in input order.
pub fn evaluate_many(
    configs: &[SystemConfig],
    options: BatchOptions,
) -> Vec<Result<(PerformanceReport, EvalStats), ModelError>> {
    par_map(configs, options.resolved_workers(), |cfg| evaluate_one(cfg, None, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, PAPER_CLUSTER_COUNTS};
    use hmcs_topology::transmission::Architecture;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..101).collect();
        for workers in [1, 2, 4, 7] {
            let out = par_map(&items, workers, |&i| i * i);
            assert_eq!(out, items.iter().map(|&i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[42u32], 8, |&x| x + 1), vec![43]);
    }

    #[test]
    fn worker_resolution_prefers_explicit_count() {
        assert_eq!(BatchOptions::sequential().resolved_workers(), 1);
        assert_eq!(BatchOptions::with_workers(3).resolved_workers(), 3);
        assert_eq!(BatchOptions::with_workers(0).resolved_workers(), 1);
        assert!(BatchOptions::default().resolved_workers() >= 1);
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential() {
        let configs: Vec<SystemConfig> = PAPER_CLUSTER_COUNTS
            .iter()
            .map(|&c| {
                SystemConfig::paper_preset(Scenario::Case1, c, Architecture::Blocking).unwrap()
            })
            .collect();
        let seq = evaluate_many(&configs, BatchOptions::sequential());
        let par = evaluate_many(&configs, BatchOptions::with_workers(4));
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            let (sr, _) = s.as_ref().unwrap();
            let (pr, _) = p.as_ref().unwrap();
            // PerformanceReport is PartialEq over every f64 it holds:
            // this is exact, bit-level equality, not a tolerance check.
            assert_eq!(sr, pr);
        }
    }

    #[test]
    fn evaluation_errors_stay_in_their_slot() {
        let good =
            SystemConfig::paper_preset(Scenario::Case1, 4, Architecture::NonBlocking).unwrap();
        let bad = good.with_lambda(-1.0);
        let out = evaluate_many(&[good, bad, good], BatchOptions::with_workers(2));
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
    }

    #[test]
    fn stats_summary_aggregates() {
        let summary = EvalStatsSummary::collect([
            EvalStats { eval_time_us: 10.0, solver_iterations: 40 },
            EvalStats { eval_time_us: 30.0, solver_iterations: 60 },
        ]);
        assert_eq!(summary.points, 2);
        assert_eq!(summary.total_eval_time_us, 40.0);
        assert_eq!(summary.max_eval_time_us, 30.0);
        assert_eq!(summary.total_solver_iterations, 100);
        assert_eq!(summary.mean_eval_time_us(), 20.0);
        assert_eq!(summary.mean_solver_iterations(), 50.0);
    }
}
