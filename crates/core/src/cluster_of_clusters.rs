//! The Cluster-of-Clusters generalisation — the paper's future work
//! (§7), implemented.
//!
//! A Cluster-of-Clusters system interconnects *heterogeneous* single
//! clusters: cluster `i` has its own node count `Nᵢ` and its own ICN1 /
//! ECN1 technologies. The derivation follows the paper's method with
//! per-cluster quantities:
//!
//! * External probability from cluster `i` under uniform destinations:
//!   `Pᵢ = (N − Nᵢ)/(N − 1)` with `N = ΣNᵢ`.
//! * Traffic: `λ_I1ᵢ = Nᵢ(1−Pᵢ)λ`; the forward ECN1ᵢ rate is
//!   `NᵢPᵢλ`, and — a pleasant symmetry of uniform traffic — the
//!   feedback rate into cluster `i` (traffic addressed to it from
//!   everywhere else) is also `NᵢPᵢλ`, so `λ_E1ᵢ = 2NᵢPᵢλ` exactly as in
//!   the homogeneous eq. 5. The global rate is `λ_I2 = Σᵢ NᵢPᵢλ`.
//! * The effective-rate fixed point (eqs. 6–7) carries over with
//!   `L = Σᵢ(w·L_E1ᵢ + L_I1ᵢ) + L_I2`.
//! * Mean latency averages over source clusters (weight `Nᵢ/N`) and, for
//!   external messages, over destination clusters (weight
//!   `Nⱼ/(N−Nᵢ)`):
//!   `T_W = Σᵢ (Nᵢ/N)·[(1−Pᵢ)W_I1ᵢ + Pᵢ·(W_E1ᵢ + W_I2 + Σ_{j≠i} Nⱼ·W_E1ⱼ/(N−Nᵢ))]`.
//!
//! The homogeneous special case reduces *exactly* to the Super-Cluster
//! model of [`crate::model`]; a test pins that down.

use crate::config::{QueueAccounting, ServiceTimeModel};
use crate::error::ModelError;
use hmcs_queueing::fixed_point::{bisect, SolverOptions};
use hmcs_queueing::mg1::MG1;
use hmcs_topology::switch::SwitchFabric;
use hmcs_topology::technology::NetworkTechnology;
use hmcs_topology::transmission::{Architecture, TransmissionModel};

/// One heterogeneous cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Processors in this cluster.
    pub nodes: usize,
    /// Intra-communication network technology.
    pub icn1: NetworkTechnology,
    /// Inter-communication network technology.
    pub ecn1: NetworkTechnology,
}

/// Configuration of a Cluster-of-Clusters system.
#[derive(Debug, Clone, PartialEq)]
pub struct CocConfig {
    /// The member clusters (at least one; at least two nodes total).
    pub clusters: Vec<ClusterSpec>,
    /// Technology of the global second-stage network.
    pub icn2: NetworkTechnology,
    /// Switch fabric used by every network.
    pub switch: SwitchFabric,
    /// Interconnect architecture of every network.
    pub architecture: Architecture,
    /// Fixed message length in bytes.
    pub message_bytes: u64,
    /// Per-processor generation rate (messages/µs), identical across
    /// clusters.
    pub lambda_per_us: f64,
    /// ECN occupancy accounting (see [`QueueAccounting`]).
    pub accounting: QueueAccounting,
    /// Service-time randomness.
    pub service_model: ServiceTimeModel,
}

impl CocConfig {
    /// Total node count `N`.
    pub fn total_nodes(&self) -> usize {
        self.clusters.iter().map(|c| c.nodes).sum()
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.clusters.is_empty() {
            return Err(ModelError::InvalidConfig {
                name: "clusters",
                reason: "need at least one cluster",
            });
        }
        if self.clusters.iter().any(|c| c.nodes == 0) {
            return Err(ModelError::InvalidConfig {
                name: "clusters",
                reason: "every cluster needs at least one node",
            });
        }
        if self.total_nodes() < 2 {
            return Err(ModelError::InvalidConfig {
                name: "total_nodes",
                reason: "a single-node system generates no traffic",
            });
        }
        if self.message_bytes == 0 {
            return Err(ModelError::InvalidConfig {
                name: "message_bytes",
                reason: "messages must carry at least one byte",
            });
        }
        if !self.lambda_per_us.is_finite() || self.lambda_per_us <= 0.0 {
            return Err(ModelError::InvalidConfig {
                name: "lambda_per_us",
                reason: "generation rate must be positive and finite",
            });
        }
        Ok(())
    }
}

/// Per-cluster converged state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CocClusterState {
    /// External probability `Pᵢ`.
    pub external_probability: f64,
    /// ICN1ᵢ sojourn time (µs).
    pub icn1_sojourn_us: f64,
    /// ECN1ᵢ per-pass sojourn time (µs).
    pub ecn1_sojourn_us: f64,
    /// ICN1ᵢ utilization.
    pub icn1_utilization: f64,
    /// ECN1ᵢ utilization.
    pub ecn1_utilization: f64,
}

/// Output of a Cluster-of-Clusters evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CocReport {
    /// Effective per-processor rate after flow-blocking throttling.
    pub lambda_eff: f64,
    /// Per-cluster states.
    pub clusters: Vec<CocClusterState>,
    /// ICN2 sojourn time (µs).
    pub icn2_sojourn_us: f64,
    /// ICN2 utilization.
    pub icn2_utilization: f64,
    /// Mean message latency (µs), averaged over sources and
    /// destinations.
    pub mean_message_latency_us: f64,
    /// Total waiting processors at equilibrium.
    pub total_waiting: f64,
}

/// Per-tier mean service times of a Cluster-of-Clusters system (µs).
/// Shared with the CoC simulator so analysis and simulation always use
/// identical service parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CocServiceTimes {
    /// Mean ICN1 service time per cluster.
    pub icn1_us: Vec<f64>,
    /// Mean ECN1 service time per cluster.
    pub ecn1_us: Vec<f64>,
    /// Mean ICN2 service time.
    pub icn2_us: f64,
}

type TierTimes = CocServiceTimes;

/// Computes the per-tier service times from the topology models.
pub fn tier_service_times(cfg: &CocConfig) -> Result<CocServiceTimes, ModelError> {
    tier_times(cfg)
}

fn tier_times(cfg: &CocConfig) -> Result<TierTimes, ModelError> {
    let mut icn1_us = Vec::with_capacity(cfg.clusters.len());
    let mut ecn1_us = Vec::with_capacity(cfg.clusters.len());
    for c in &cfg.clusters {
        icn1_us.push(
            TransmissionModel::new(c.icn1, cfg.switch, c.nodes, cfg.architecture)?
                .mean_time_us(cfg.message_bytes),
        );
        ecn1_us.push(
            TransmissionModel::new(c.ecn1, cfg.switch, c.nodes, cfg.architecture)?
                .mean_time_us(cfg.message_bytes),
        );
    }
    let icn2_us =
        TransmissionModel::new(cfg.icn2, cfg.switch, cfg.clusters.len().max(2), cfg.architecture)?
            .mean_time_us(cfg.message_bytes);
    Ok(TierTimes { icn1_us, ecn1_us, icn2_us })
}

fn center_metrics(cfg: &CocConfig, lambda: f64, service_us: f64) -> Option<(f64, f64, f64)> {
    // (L, W, rho); None when unstable.
    if lambda <= 0.0 {
        return Some((0.0, service_us, 0.0));
    }
    let dist = cfg.service_model.distribution(service_us);
    MG1::new(lambda, dist)
        .ok()
        .map(|q| (q.mean_number_in_system(), q.mean_sojourn_time(), q.utilization()))
}

fn total_waiting(cfg: &CocConfig, times: &TierTimes, lambda_eff: f64) -> Option<f64> {
    let n = cfg.total_nodes() as f64;
    let w = match cfg.accounting {
        QueueAccounting::PaperLiteral => 2.0,
        QueueAccounting::SingleQueue => 1.0,
    };
    let mut total = 0.0;
    let mut icn2_rate = 0.0;
    for (i, c) in cfg.clusters.iter().enumerate() {
        let ni = c.nodes as f64;
        let pi = if n > 1.0 { (n - ni) / (n - 1.0) } else { 0.0 };
        let (l_i1, _, _) = center_metrics(cfg, ni * (1.0 - pi) * lambda_eff, times.icn1_us[i])?;
        let (l_e1, _, _) = center_metrics(cfg, 2.0 * ni * pi * lambda_eff, times.ecn1_us[i])?;
        total += w * l_e1 + l_i1;
        icn2_rate += ni * pi * lambda_eff;
    }
    let (l_i2, _, _) = center_metrics(cfg, icn2_rate, times.icn2_us)?;
    Some(total + l_i2)
}

/// Evaluates the Cluster-of-Clusters model.
pub fn evaluate(cfg: &CocConfig) -> Result<CocReport, ModelError> {
    cfg.validate()?;
    let times = tier_times(cfg)?;
    let lambda = cfg.lambda_per_us;
    let n = cfg.total_nodes() as f64;

    let g = |x: f64| -> f64 {
        let l = total_waiting(cfg, &times, x).unwrap_or(f64::INFINITY);
        lambda * (n - l.min(n)) / n
    };
    // Bracket the root just inside the closed-form saturation boundary:
    // every centre's arrival rate is linear in lambda_eff, so the
    // smallest saturating rate is exact. At hi the bottleneck queue
    // length exceeds N, so f(hi) = g(hi) - hi < 0 while f(0) = lambda > 0.
    let mut sat = f64::INFINITY;
    for (i, c) in cfg.clusters.iter().enumerate() {
        let ni = c.nodes as f64;
        let pi = (n - ni) / (n - 1.0);
        let coeff_i1 = ni * (1.0 - pi);
        let coeff_e1 = 2.0 * ni * pi;
        if coeff_i1 > 0.0 {
            sat = sat.min(1.0 / (coeff_i1 * times.icn1_us[i]));
        }
        if coeff_e1 > 0.0 {
            sat = sat.min(1.0 / (coeff_e1 * times.ecn1_us[i]));
        }
    }
    let coeff_i2: f64 = cfg
        .clusters
        .iter()
        .map(|c| {
            let ni = c.nodes as f64;
            ni * (n - ni) / (n - 1.0)
        })
        .sum();
    if coeff_i2 > 0.0 {
        sat = sat.min(1.0 / (coeff_i2 * times.icn2_us));
    }
    let hi = lambda.min(sat * (1.0 - 1e-12));
    let opts = SolverOptions {
        tolerance: (lambda * 1e-12).max(1e-300),
        max_iterations: 500,
        damping: 0.5,
    };
    let sol = bisect(|x| g(x) - x, 0.0, hi, opts).map_err(|e| match e {
        hmcs_queueing::QueueingError::NoConvergence { residual, .. } => {
            ModelError::SolverFailed { residual }
        }
        other => ModelError::Queueing(other),
    })?;
    let lambda_eff = sol.value;

    // Final metrics.
    let mut clusters = Vec::with_capacity(cfg.clusters.len());
    let mut icn2_rate = 0.0;
    for (i, c) in cfg.clusters.iter().enumerate() {
        let ni = c.nodes as f64;
        let pi = (n - ni) / (n - 1.0);
        let (_, w_i1, rho_i1) = center_metrics(cfg, ni * (1.0 - pi) * lambda_eff, times.icn1_us[i])
            .ok_or(ModelError::SolverFailed { residual: f64::INFINITY })?;
        let (_, w_e1, rho_e1) = center_metrics(cfg, 2.0 * ni * pi * lambda_eff, times.ecn1_us[i])
            .ok_or(ModelError::SolverFailed { residual: f64::INFINITY })?;
        clusters.push(CocClusterState {
            external_probability: pi,
            icn1_sojourn_us: w_i1,
            ecn1_sojourn_us: w_e1,
            icn1_utilization: rho_i1,
            ecn1_utilization: rho_e1,
        });
        icn2_rate += ni * pi * lambda_eff;
    }
    let (_, w_i2, rho_i2) = center_metrics(cfg, icn2_rate, times.icn2_us)
        .ok_or(ModelError::SolverFailed { residual: f64::INFINITY })?;

    // Latency: average over source clusters and destinations.
    let mut latency = 0.0;
    for (i, c) in cfg.clusters.iter().enumerate() {
        let ni = c.nodes as f64;
        let pi = clusters[i].external_probability;
        // Destination-side ECN1 sojourn, weighted by Nj/(N - Ni).
        let mut dest_ecn1 = 0.0;
        if n - ni > 0.0 {
            for (j, cj) in cfg.clusters.iter().enumerate() {
                if j != i {
                    dest_ecn1 += cj.nodes as f64 * clusters[j].ecn1_sojourn_us;
                }
            }
            dest_ecn1 /= n - ni;
        }
        let external = clusters[i].ecn1_sojourn_us + w_i2 + dest_ecn1;
        latency += ni / n * ((1.0 - pi) * clusters[i].icn1_sojourn_us + pi * external);
    }

    let total = total_waiting(cfg, &times, lambda_eff)
        .ok_or(ModelError::SolverFailed { residual: f64::INFINITY })?;
    Ok(CocReport {
        lambda_eff,
        clusters,
        icn2_sojourn_us: w_i2,
        icn2_utilization: rho_i2,
        mean_message_latency_us: latency,
        total_waiting: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::model::AnalyticalModel;
    use crate::scenario::{Scenario, PAPER_LAMBDA_PER_US};

    fn homogeneous(clusters: usize, nodes: usize) -> CocConfig {
        CocConfig {
            clusters: vec![
                ClusterSpec {
                    nodes,
                    icn1: NetworkTechnology::GIGABIT_ETHERNET,
                    ecn1: NetworkTechnology::FAST_ETHERNET,
                };
                clusters
            ],
            icn2: NetworkTechnology::FAST_ETHERNET,
            switch: SwitchFabric::paper_default(),
            architecture: Architecture::NonBlocking,
            message_bytes: 1024,
            lambda_per_us: PAPER_LAMBDA_PER_US,
            accounting: QueueAccounting::SingleQueue,
            service_model: ServiceTimeModel::Exponential,
        }
    }

    #[test]
    fn homogeneous_case_reduces_to_super_cluster_model() {
        for c in [2usize, 8, 32] {
            let coc = evaluate(&homogeneous(c, 256 / c)).unwrap();
            let sc_cfg =
                SystemConfig::paper_preset(Scenario::Case1, c, Architecture::NonBlocking).unwrap();
            let sc = AnalyticalModel::evaluate(&sc_cfg).unwrap();
            let rel = (coc.mean_message_latency_us - sc.latency.mean_message_latency_us).abs()
                / sc.latency.mean_message_latency_us;
            assert!(
                rel < 1e-6,
                "C={c}: CoC {} vs SC {}",
                coc.mean_message_latency_us,
                sc.latency.mean_message_latency_us
            );
            assert!(
                (coc.lambda_eff - sc.equilibrium.lambda_eff).abs()
                    < 1e-6 * sc.equilibrium.lambda_eff
            );
        }
    }

    #[test]
    fn heterogeneous_sizes_produce_asymmetric_p() {
        let mut cfg = homogeneous(2, 64);
        cfg.clusters[0].nodes = 192;
        // N = 256; P0 = 64/255, P1 = 192/255.
        let r = evaluate(&cfg).unwrap();
        assert!((r.clusters[0].external_probability - 64.0 / 255.0).abs() < 1e-12);
        assert!((r.clusters[1].external_probability - 192.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn upgrading_one_cluster_reduces_latency() {
        let slow = {
            let mut c = homogeneous(4, 64);
            for s in &mut c.clusters {
                s.icn1 = NetworkTechnology::FAST_ETHERNET;
            }
            c
        };
        let upgraded = {
            let mut c = slow.clone();
            c.clusters[0].icn1 = NetworkTechnology::INFINIBAND;
            c
        };
        let l_slow = evaluate(&slow).unwrap().mean_message_latency_us;
        let l_up = evaluate(&upgraded).unwrap().mean_message_latency_us;
        assert!(l_up < l_slow);
    }

    #[test]
    fn llnl_like_four_cluster_system_evaluates() {
        // A four-cluster Cluster-of-Clusters sketch in the spirit of the
        // paper's LLNL example (MCR / ALC / Thunder / PVC): different
        // sizes and mixed technologies.
        let cfg = CocConfig {
            clusters: vec![
                ClusterSpec {
                    nodes: 128,
                    icn1: NetworkTechnology::MYRINET,
                    ecn1: NetworkTechnology::GIGABIT_ETHERNET,
                },
                ClusterSpec {
                    nodes: 96,
                    icn1: NetworkTechnology::MYRINET,
                    ecn1: NetworkTechnology::GIGABIT_ETHERNET,
                },
                ClusterSpec {
                    nodes: 64,
                    icn1: NetworkTechnology::INFINIBAND,
                    ecn1: NetworkTechnology::GIGABIT_ETHERNET,
                },
                ClusterSpec {
                    nodes: 16,
                    icn1: NetworkTechnology::FAST_ETHERNET,
                    ecn1: NetworkTechnology::FAST_ETHERNET,
                },
            ],
            icn2: NetworkTechnology::GIGABIT_ETHERNET,
            switch: SwitchFabric::paper_default(),
            architecture: Architecture::NonBlocking,
            message_bytes: 1024,
            lambda_per_us: PAPER_LAMBDA_PER_US,
            accounting: QueueAccounting::SingleQueue,
            service_model: ServiceTimeModel::Exponential,
        };
        let r = evaluate(&cfg).unwrap();
        assert!(r.mean_message_latency_us > 0.0);
        assert_eq!(r.clusters.len(), 4);
        assert!(r.lambda_eff > 0.0 && r.lambda_eff <= cfg.lambda_per_us);
        // The small FE cluster has the slowest intra-cluster sojourn.
        assert!(r.clusters[3].icn1_sojourn_us > r.clusters[0].icn1_sojourn_us);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = homogeneous(2, 4);
        cfg.clusters.clear();
        assert!(evaluate(&cfg).is_err());
        let mut cfg = homogeneous(2, 4);
        cfg.clusters[0].nodes = 0;
        assert!(evaluate(&cfg).is_err());
        let mut cfg = homogeneous(2, 4);
        cfg.message_bytes = 0;
        assert!(evaluate(&cfg).is_err());
        let mut cfg = homogeneous(2, 4);
        cfg.lambda_per_us = -1.0;
        assert!(evaluate(&cfg).is_err());
    }

    #[test]
    fn fixed_point_property_holds() {
        let cfg = homogeneous(8, 32);
        let r = evaluate(&cfg).unwrap();
        let n = cfg.total_nodes() as f64;
        let rhs = cfg.lambda_per_us * (n - r.total_waiting) / n;
        assert!((r.lambda_eff - rhs).abs() < 1e-6 * cfg.lambda_per_us);
    }
}
