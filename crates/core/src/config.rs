//! System configuration for the HMSCS model.
//!
//! A [`SystemConfig`] fully describes one multi-cluster system: its
//! shape (`C` clusters × `N₀` processors), its workload (message size
//! `M`, per-processor generation rate λ), the technology of each network
//! tier and the interconnect architecture. Both the analytical model
//! (`hmcs-core`) and the simulators (`hmcs-sim`) consume the same
//! configuration, which is what makes the validation comparison
//! meaningful.

use crate::error::ModelError;
use crate::scenario::{Scenario, PAPER_LAMBDA_PER_US, PAPER_TOTAL_NODES};
use hmcs_queueing::mg1::ServiceDistribution;
use hmcs_topology::switch::SwitchFabric;
use hmcs_topology::technology::NetworkTechnology;
use hmcs_topology::transmission::{Architecture, HopModel};

/// How eq. 6 counts the waiting processors held at each cluster's ECN1.
///
/// The paper writes `L = C·(2·L_E1 + L_I1) + L_I2` while defining the
/// ECN1 arrival rate as the *combined* forward+feedback rate
/// `λ_E1 = 2·N₀·P·λ` (eq. 5). Counting the occupancy of that single
/// queue twice double-books the processors waiting there and breaks the
/// Little's-law self-consistency between eq. 7 and eq. 15: validated
/// against simulation, the literal reading diverges by up to ~50% at
/// cluster counts where the ECN1 queues carry significant load
/// (C ∈ {2, 4, 8} on the paper platform), while the single-count
/// reading matches within ~2% everywhere (`ablation-accounting`
/// experiment). Since the paper's own figures show analysis ≈
/// simulation, the authors almost certainly computed the single-count
/// form; it is therefore the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueAccounting {
    /// Count `2·L_E1` per cluster, exactly as printed in eq. 6.
    PaperLiteral,
    /// Count the physical ECN1 queue once:
    /// `L = C·(L_E1 + L_I1) + L_I2` (default; simulation-validated).
    #[default]
    SingleQueue,
}

/// Service-time randomness at the communication networks.
///
/// The paper assumes exponential service (§5.2). The alternatives let
/// the `ablation-service` experiment test that assumption: with a fixed
/// message length, real transmission times are nearly deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ServiceTimeModel {
    /// Exponential with the topology-model mean (the paper's choice).
    #[default]
    Exponential,
    /// Deterministic at the topology-model mean.
    Deterministic,
    /// Erlang-k with the topology-model mean.
    Erlang(u32),
    /// Two-phase hyper-exponential with the given SCV ≥ 1.
    HyperExponential(f64),
}

impl ServiceTimeModel {
    /// The matching two-moment service distribution with mean
    /// `mean_us`.
    pub fn distribution(&self, mean_us: f64) -> ServiceDistribution {
        match *self {
            ServiceTimeModel::Exponential => ServiceDistribution::Exponential(mean_us),
            ServiceTimeModel::Deterministic => ServiceDistribution::Deterministic(mean_us),
            ServiceTimeModel::Erlang(k) => ServiceDistribution::Erlang { mean: mean_us, phases: k },
            ServiceTimeModel::HyperExponential(scv) => {
                ServiceDistribution::HyperExponential { mean: mean_us, scv }
            }
        }
    }

    /// Squared coefficient of variation of this service model.
    pub fn scv(&self) -> f64 {
        self.distribution(1.0).scv()
    }
}

/// Complete description of one HMSCS system plus its workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Number of clusters `C`.
    pub clusters: usize,
    /// Processors per cluster `N₀` (homogeneous across clusters,
    /// assumption 5).
    pub nodes_per_cluster: usize,
    /// Fixed message length `M` in bytes (assumption 6).
    pub message_bytes: u64,
    /// Per-processor message generation rate λ in messages/µs
    /// (assumption 1).
    pub lambda_per_us: f64,
    /// Technology of every cluster's intra-communication network.
    pub icn1: NetworkTechnology,
    /// Technology of every cluster's inter-communication network.
    pub ecn1: NetworkTechnology,
    /// Technology of the global second-stage network.
    pub icn2: NetworkTechnology,
    /// The switch fabric building block (Pr ports, α_sw).
    pub switch: SwitchFabric,
    /// Interconnect architecture of all networks.
    pub architecture: Architecture,
    /// ECN1 occupancy accounting for eq. 6.
    pub accounting: QueueAccounting,
    /// Hop-count model for the blocking architecture.
    pub hop_model: HopModel,
    /// Service-time randomness at the networks.
    pub service_model: ServiceTimeModel,
}

impl SystemConfig {
    /// Creates a configuration with the paper's Table-2 defaults for
    /// everything except the explicit shape arguments.
    pub fn new(
        clusters: usize,
        nodes_per_cluster: usize,
        message_bytes: u64,
        lambda_per_us: f64,
        scenario: Scenario,
        architecture: Architecture,
    ) -> Result<Self, ModelError> {
        let cfg = SystemConfig {
            clusters,
            nodes_per_cluster,
            message_bytes,
            lambda_per_us,
            icn1: scenario.icn1(),
            ecn1: scenario.ecn1(),
            icn2: scenario.icn2(),
            switch: SwitchFabric::paper_default(),
            architecture,
            accounting: QueueAccounting::default(),
            hop_model: HopModel::default(),
            service_model: ServiceTimeModel::default(),
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// The paper's evaluation platform: 256 total nodes split into
    /// `clusters` clusters, 1024-byte messages, λ = 0.25 msg/ms, Table-2
    /// constants, the given scenario and architecture.
    ///
    /// # Errors
    ///
    /// `clusters` must divide 256.
    pub fn paper_preset(
        scenario: Scenario,
        clusters: usize,
        architecture: Architecture,
    ) -> Result<Self, ModelError> {
        if clusters == 0 || !PAPER_TOTAL_NODES.is_multiple_of(clusters) {
            return Err(ModelError::InvalidConfig {
                name: "clusters",
                reason: "must divide the paper's 256-node platform",
            });
        }
        SystemConfig::new(
            clusters,
            PAPER_TOTAL_NODES / clusters,
            1024,
            PAPER_LAMBDA_PER_US,
            scenario,
            architecture,
        )
    }

    /// Returns a copy with a different message size.
    pub fn with_message_bytes(mut self, message_bytes: u64) -> Self {
        self.message_bytes = message_bytes;
        self
    }

    /// Returns a copy with a different generation rate.
    pub fn with_lambda(mut self, lambda_per_us: f64) -> Self {
        self.lambda_per_us = lambda_per_us;
        self
    }

    /// Returns a copy with a different accounting rule.
    pub fn with_accounting(mut self, accounting: QueueAccounting) -> Self {
        self.accounting = accounting;
        self
    }

    /// Returns a copy with a different service-time model.
    pub fn with_service_model(mut self, service_model: ServiceTimeModel) -> Self {
        self.service_model = service_model;
        self
    }

    /// Returns a copy with a different hop model.
    pub fn with_hop_model(mut self, hop_model: HopModel) -> Self {
        self.hop_model = hop_model;
        self
    }

    /// Returns a copy with a different switch fabric.
    pub fn with_switch(mut self, switch: SwitchFabric) -> Self {
        self.switch = switch;
        self
    }

    /// Returns a copy with a different architecture.
    pub fn with_architecture(mut self, architecture: Architecture) -> Self {
        self.architecture = architecture;
        self
    }

    /// Total node count `N = C·N₀`.
    #[inline]
    pub fn total_nodes(&self) -> usize {
        self.clusters * self.nodes_per_cluster
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.clusters == 0 {
            return Err(ModelError::InvalidConfig {
                name: "clusters",
                reason: "need at least one cluster",
            });
        }
        if self.nodes_per_cluster == 0 {
            return Err(ModelError::InvalidConfig {
                name: "nodes_per_cluster",
                reason: "need at least one processor per cluster",
            });
        }
        if self.total_nodes() < 2 {
            return Err(ModelError::InvalidConfig {
                name: "total_nodes",
                reason: "a single-node system generates no traffic (assumption 3)",
            });
        }
        if self.message_bytes == 0 {
            return Err(ModelError::InvalidConfig {
                name: "message_bytes",
                reason: "messages must carry at least one byte",
            });
        }
        if !self.lambda_per_us.is_finite() || self.lambda_per_us <= 0.0 {
            return Err(ModelError::InvalidConfig {
                name: "lambda_per_us",
                reason: "generation rate must be positive and finite",
            });
        }
        if let ServiceTimeModel::Erlang(k) = self.service_model {
            if k == 0 {
                return Err(ModelError::InvalidConfig {
                    name: "service_model",
                    reason: "Erlang phase count must be >= 1",
                });
            }
        }
        if let ServiceTimeModel::HyperExponential(scv) = self.service_model {
            if !(scv.is_finite() && scv >= 1.0) {
                return Err(ModelError::InvalidConfig {
                    name: "service_model",
                    reason: "hyper-exponential SCV must be >= 1",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_shape() {
        let cfg =
            SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking).unwrap();
        assert_eq!(cfg.clusters, 8);
        assert_eq!(cfg.nodes_per_cluster, 32);
        assert_eq!(cfg.total_nodes(), 256);
        assert_eq!(cfg.message_bytes, 1024);
        assert_eq!(cfg.switch.ports(), 24);
        assert_eq!(cfg.icn1.name, "Gigabit Ethernet");
        assert_eq!(cfg.ecn1.name, "Fast Ethernet");
    }

    #[test]
    fn preset_rejects_non_divisors() {
        assert!(SystemConfig::paper_preset(Scenario::Case1, 3, Architecture::Blocking).is_err());
        assert!(SystemConfig::paper_preset(Scenario::Case1, 0, Architecture::Blocking).is_err());
        for c in crate::scenario::PAPER_CLUSTER_COUNTS {
            assert!(SystemConfig::paper_preset(Scenario::Case2, c, Architecture::Blocking).is_ok());
        }
    }

    #[test]
    fn builders_compose() {
        let cfg = SystemConfig::paper_preset(Scenario::Case1, 4, Architecture::NonBlocking)
            .unwrap()
            .with_message_bytes(512)
            .with_lambda(1e-4)
            .with_accounting(QueueAccounting::SingleQueue)
            .with_service_model(ServiceTimeModel::Deterministic);
        assert_eq!(cfg.message_bytes, 512);
        assert_eq!(cfg.lambda_per_us, 1e-4);
        assert_eq!(cfg.accounting, QueueAccounting::SingleQueue);
        assert_eq!(cfg.service_model, ServiceTimeModel::Deterministic);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_systems() {
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 1, Architecture::NonBlocking).unwrap();
        let mut one_node = base;
        one_node.nodes_per_cluster = 1;
        assert!(one_node.validate().is_err());
        let mut no_msg = base;
        no_msg.message_bytes = 0;
        assert!(no_msg.validate().is_err());
        let mut bad_lambda = base;
        bad_lambda.lambda_per_us = 0.0;
        assert!(bad_lambda.validate().is_err());
        let mut bad_lambda2 = base;
        bad_lambda2.lambda_per_us = f64::NAN;
        assert!(bad_lambda2.validate().is_err());
        assert!(base.with_service_model(ServiceTimeModel::Erlang(0)).validate().is_err());
        assert!(base
            .with_service_model(ServiceTimeModel::HyperExponential(0.5))
            .validate()
            .is_err());
    }

    #[test]
    fn service_models_expose_scv() {
        assert_eq!(ServiceTimeModel::Exponential.scv(), 1.0);
        assert_eq!(ServiceTimeModel::Deterministic.scv(), 0.0);
        assert_eq!(ServiceTimeModel::Erlang(4).scv(), 0.25);
        assert_eq!(ServiceTimeModel::HyperExponential(3.0).scv(), 3.0);
    }

    #[test]
    fn single_cluster_is_valid() {
        // C=1 collapses to a classic single-cluster system; the paper's
        // x-axis starts there.
        let cfg =
            SystemConfig::paper_preset(Scenario::Case1, 1, Architecture::NonBlocking).unwrap();
        assert_eq!(cfg.nodes_per_cluster, 256);
        assert!(cfg.validate().is_ok());
    }
}
