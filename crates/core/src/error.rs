//! Error type for the analytical model.

use hmcs_queueing::QueueingError;
use hmcs_topology::latmatrix::MatrixError;
use hmcs_topology::TopologyError;
use std::fmt;

/// Errors reported by the analytical model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: &'static str,
    },
    /// A queueing computation failed (e.g. an unstable centre outside
    /// the solver's control).
    Queueing(QueueingError),
    /// A topology could not be constructed.
    Topology(TopologyError),
    /// A latency matrix could not be parsed or generated.
    Matrix(MatrixError),
    /// The effective-rate fixed point could not be solved.
    SolverFailed {
        /// Residual at the last iterate.
        residual: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration {name}: {reason}")
            }
            ModelError::Queueing(e) => write!(f, "queueing error: {e}"),
            ModelError::Topology(e) => write!(f, "topology error: {e}"),
            ModelError::Matrix(e) => write!(f, "latency-matrix error: {e}"),
            ModelError::SolverFailed { residual } => {
                write!(f, "effective-rate solver failed (residual {residual:e})")
            }
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Queueing(e) => Some(e),
            ModelError::Topology(e) => Some(e),
            ModelError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueueingError> for ModelError {
    fn from(e: QueueingError) -> Self {
        ModelError::Queueing(e)
    }
}

impl From<TopologyError> for ModelError {
    fn from(e: TopologyError) -> Self {
        ModelError::Topology(e)
    }
}

impl From<MatrixError> for ModelError {
    fn from(e: MatrixError) -> Self {
        ModelError::Matrix(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let q: ModelError = QueueingError::Unstable { rho: 1.2 }.into();
        assert!(format!("{q}").contains("rho"));
        let t: ModelError = TopologyError::InvalidParameter { name: "x", reason: "y" }.into();
        assert!(format!("{t}").contains("topology"));
        let m: ModelError = MatrixError::TooSmall { nodes: 1 }.into();
        assert!(format!("{m}").contains("matrix"));
        let c = ModelError::InvalidConfig { name: "clusters", reason: "must divide N" };
        assert!(format!("{c}").contains("clusters"));
        let s = ModelError::SolverFailed { residual: 1e-3 };
        assert!(format!("{s}").contains("solver"));
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error;
        let q: ModelError = QueueingError::SingularSystem.into();
        assert!(q.source().is_some());
        let c = ModelError::InvalidConfig { name: "x", reason: "y" };
        assert!(c.source().is_none());
    }
}
