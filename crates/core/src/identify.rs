//! Cluster identification: latency matrix → HMCS `(C, N₀)` model.
//!
//! The paper assumes the cluster structure is *known*. Real deployments
//! expose only a measured node-to-node latency matrix; this module
//! inverts the paper's setup, in the spirit of the
//! logical-homogeneous-clusters methodology: partition the matrix into
//! logical clusters by a latency-gap threshold, fit the paper's
//! `(C, N₀, ICN1, ECN1/ICN2)` parameters from the identified bands, and
//! report a residual quantifying how far the matrix is from the ideal
//! two-level HMCS the analytical solver assumes.
//!
//! ## Threshold rule
//!
//! Off-diagonal latencies are sampled (all pairs for small systems, a
//! seeded deterministic subsample above [`IdentifyOptions::exhaustive_limit`])
//! and sorted. The split threshold is placed in the **largest relative
//! gap** between consecutive distinct values: if
//! `max_i v[i+1]/v[i] ≥ min_gap_ratio`, the threshold is the geometric
//! midpoint `√(v[i]·v[i+1])`; otherwise the matrix is declared a single
//! cluster. A two-band (LAN/WAN) matrix produces exactly one dominant
//! gap, so the rule is parameter-light and scale-free.
//!
//! ## Clustering pass
//!
//! Nodes are scanned in index order and greedily merged: node `i` joins
//! the first existing cluster where the majority of (up to
//! [`IdentifyOptions::reference_members`]) reference members lie within
//! the threshold, else it founds a new cluster. For a matrix whose
//! intra band lies entirely below the threshold and inter band entirely
//! above it, this is exact (every member agrees), runs in `O(n·C)`
//! latency probes, and never materialises the matrix — 100k-node
//! implicit sources identify in milliseconds.
//!
//! ## Residual
//!
//! [`Residual`] reports the relative median-absolute-deviation of each
//! identified band, the coefficient of variation of cluster sizes, and
//! their sum as a single *non-HMCS score*: 0 for an ideal equal-size,
//! zero-jitter two-level system, growing as heterogeneity makes the
//! fitted `(C, N₀)` model a worse description of the measured matrix.

use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::scenario::{Scenario, PAPER_LAMBDA_PER_US};
use hmcs_topology::latmatrix::LatencySource;
use hmcs_topology::transmission::Architecture;
use hmcs_topology::NetworkTechnology;

/// Tuning knobs of the identification pass. `Default` matches the
/// goldens and the round-trip fuzz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdentifyOptions {
    /// Minimum ratio between consecutive sorted latencies for a gap to
    /// count as a band split (below it the matrix is one cluster).
    pub min_gap_ratio: f64,
    /// Number of off-diagonal pairs sampled for the threshold and the
    /// band medians when the system exceeds `exhaustive_limit`.
    pub sample_pairs: usize,
    /// Node count up to which *all* pairs are used instead of a sample.
    pub exhaustive_limit: usize,
    /// Members per existing cluster probed when assigning a node.
    pub reference_members: usize,
    /// Seed of the deterministic pair subsample.
    pub sample_seed: u64,
}

impl Default for IdentifyOptions {
    fn default() -> Self {
        IdentifyOptions {
            min_gap_ratio: 1.8,
            sample_pairs: 4096,
            exhaustive_limit: 512,
            reference_members: 3,
            sample_seed: 0x1DE7_71F1,
        }
    }
}

/// How non-HMCS the measured matrix is (0 = ideal two-level system).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Residual {
    /// Relative median absolute deviation of the intra band
    /// (`median(|x−med|)/med`).
    pub intra_rel_mad: f64,
    /// Relative median absolute deviation of the inter band; 0 when
    /// there is no inter band (single cluster).
    pub inter_rel_mad: f64,
    /// Coefficient of variation of identified cluster sizes.
    pub size_cv: f64,
    /// `intra_rel_mad + inter_rel_mad + size_cv` — the non-HMCS score.
    pub score: f64,
}

/// Result of identifying a latency matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentifiedSystem {
    /// Clusters in canonical form: members ascending, clusters ordered
    /// by smallest member.
    pub partition: Vec<Vec<usize>>,
    /// The gap threshold (µs); `None` when no qualifying gap was found
    /// and the matrix collapsed to a single cluster.
    pub threshold_us: Option<f64>,
    /// Median of the identified intra-cluster band (µs).
    pub intra_median_us: f64,
    /// Median of the identified inter-cluster band (µs); `None` for a
    /// single cluster.
    pub inter_median_us: Option<f64>,
    /// Separation `inter_median / intra_median`; `None` for a single
    /// cluster.
    pub separation: Option<f64>,
    /// The non-HMCS residual report.
    pub residual: Residual,
}

impl IdentifiedSystem {
    /// Number of identified clusters.
    pub fn clusters(&self) -> usize {
        self.partition.len()
    }

    /// Total nodes covered by the partition.
    pub fn total_nodes(&self) -> usize {
        self.partition.iter().map(Vec::len).sum()
    }
}

/// Workload parameters for [`fitted_config`]; the fit supplies the
/// topology side, these supply the paper's workload side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitOptions {
    /// Message size in bytes.
    pub message_bytes: u64,
    /// Per-node message generation rate (messages/µs).
    pub lambda_per_us: f64,
    /// Interconnect architecture assumed for the fitted switches.
    pub architecture: Architecture,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            message_bytes: 1024,
            lambda_per_us: PAPER_LAMBDA_PER_US,
            architecture: Architecture::NonBlocking,
        }
    }
}

/// Static names of the fitted effective technologies
/// (`NetworkTechnology::name` is `&'static str`).
pub const IDENTIFIED_INTRA_NAME: &str = "identified intra";
/// See [`IDENTIFIED_INTRA_NAME`].
pub const IDENTIFIED_INTER_NAME: &str = "identified inter";

/// Relative latency slack within which a fitted band snaps to a known
/// preset technology (keeping its measured bandwidth) instead of
/// becoming a custom effective technology.
pub const PRESET_SNAP_TOLERANCE: f64 = 0.05;

/// Identifies the logical cluster structure of a latency source.
///
/// # Errors
///
/// `InvalidConfig` when the source has fewer than two nodes or a
/// nonsensical option (zero samples / references).
pub fn identify<S: LatencySource + ?Sized>(
    source: &S,
    options: &IdentifyOptions,
) -> Result<IdentifiedSystem, ModelError> {
    let n = source.nodes();
    if n < 2 {
        return Err(ModelError::InvalidConfig {
            name: "nodes",
            reason: "identification needs at least two nodes",
        });
    }
    if options.sample_pairs == 0 || options.reference_members == 0 {
        return Err(ModelError::InvalidConfig {
            name: "options",
            reason: "sample_pairs and reference_members must be positive",
        });
    }

    // 1. Sampled latency spectrum → gap threshold.
    let mut sample = sample_latencies(source, options);
    sample.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let threshold = gap_threshold(&sample, options.min_gap_ratio);

    // 2. Greedy leader clustering under the threshold.
    let partition = match threshold {
        Some(t) => cluster_by_threshold(source, t, options.reference_members),
        None => vec![(0..n).collect::<Vec<usize>>()],
    };

    // 3. Band medians + residual from the sampled spectrum, classified
    //    by the identified partition.
    let mut cluster_of = vec![0u32; n];
    for (c, members) in partition.iter().enumerate() {
        for &m in members {
            cluster_of[m] = c as u32;
        }
    }
    let (mut intra, mut inter) = (Vec::new(), Vec::new());
    for_sampled_pairs(n, options, |i, j| {
        let v = source.latency_us(i, j);
        if cluster_of[i] == cluster_of[j] {
            intra.push(v);
        } else {
            inter.push(v);
        }
    });
    // All-singleton partitions have no intra pairs; fall back to the
    // smallest sampled latency so the fit stays defined.
    let intra_median =
        if intra.is_empty() { sample.first().copied().unwrap_or(1.0) } else { median(&mut intra) };
    let inter_median =
        if partition.len() > 1 && !inter.is_empty() { Some(median(&mut inter)) } else { None };

    let intra_rel_mad = if intra.is_empty() { 0.0 } else { rel_mad(&mut intra, intra_median) };
    let inter_rel_mad = match inter_median {
        Some(m) if !inter.is_empty() => rel_mad(&mut inter, m),
        _ => 0.0,
    };
    let size_cv = size_cv(&partition);
    let residual = Residual {
        intra_rel_mad,
        inter_rel_mad,
        size_cv,
        score: intra_rel_mad + inter_rel_mad + size_cv,
    };

    Ok(IdentifiedSystem {
        partition,
        threshold_us: threshold,
        intra_median_us: intra_median,
        inter_median_us: inter_median,
        separation: inter_median.map(|m| m / intra_median),
        residual,
    })
}

/// Fits the paper's `SystemConfig` from an identified system: `C` =
/// identified clusters, `N₀` = rounded mean cluster size, ICN1 from the
/// intra band median, ECN1/ICN2 from the inter band median (each
/// snapping to a preset technology within [`PRESET_SNAP_TOLERANCE`],
/// otherwise becoming a custom effective technology carrying the
/// nearest preset's bandwidth).
pub fn fitted_config(
    identified: &IdentifiedSystem,
    options: &FitOptions,
) -> Result<SystemConfig, ModelError> {
    let clusters = identified.clusters();
    if clusters == 0 {
        return Err(ModelError::InvalidConfig {
            name: "partition",
            reason: "identified system has no clusters",
        });
    }
    let total = identified.total_nodes();
    let n0 = ((total as f64 / clusters as f64).round() as usize).max(1);
    let mut cfg = SystemConfig::new(
        clusters,
        n0,
        options.message_bytes,
        options.lambda_per_us,
        Scenario::Case1,
        options.architecture,
    )?;
    cfg.icn1 = effective_technology(identified.intra_median_us, IDENTIFIED_INTRA_NAME)?;
    if let Some(inter) = identified.inter_median_us {
        let tech = effective_technology(inter, IDENTIFIED_INTER_NAME)?;
        cfg.ecn1 = tech;
        cfg.icn2 = tech;
    }
    cfg.validate()?;
    Ok(cfg)
}

/// Maps a measured band median onto an effective technology.
fn effective_technology(
    median_us: f64,
    name: &'static str,
) -> Result<NetworkTechnology, ModelError> {
    let nearest = NetworkTechnology::PRESETS
        .iter()
        .min_by(|a, b| {
            let da = (a.latency_us - median_us).abs();
            let db = (b.latency_us - median_us).abs();
            da.partial_cmp(&db).expect("finite preset latencies")
        })
        .expect("PRESETS is non-empty");
    if (nearest.latency_us - median_us).abs() <= PRESET_SNAP_TOLERANCE * nearest.latency_us {
        return Ok(*nearest);
    }
    Ok(NetworkTechnology::new(name, median_us, nearest.bandwidth_mb_s)?)
}

/// Collects the sampled off-diagonal latency spectrum.
fn sample_latencies<S: LatencySource + ?Sized>(source: &S, options: &IdentifyOptions) -> Vec<f64> {
    let mut out = Vec::new();
    for_sampled_pairs(source.nodes(), options, |i, j| out.push(source.latency_us(i, j)));
    out
}

/// Visits either every off-diagonal pair (small systems) or a seeded
/// deterministic subsample of `sample_pairs` pairs.
fn for_sampled_pairs<F: FnMut(usize, usize)>(n: usize, options: &IdentifyOptions, mut f: F) {
    if n <= options.exhaustive_limit {
        for i in 0..n {
            for j in (i + 1)..n {
                f(i, j);
            }
        }
        return;
    }
    let mut state = options.sample_seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut drawn = 0usize;
    while drawn < options.sample_pairs {
        let i = (((next() as u128) * (n as u128)) >> 64) as usize;
        let j = (((next() as u128) * (n as u128)) >> 64) as usize;
        if i == j {
            continue;
        }
        f(i.min(j), i.max(j));
        drawn += 1;
    }
}

/// The largest-relative-gap threshold over a sorted latency sample.
fn gap_threshold(sorted: &[f64], min_gap_ratio: f64) -> Option<f64> {
    let mut best_ratio = 1.0;
    let mut best_split = None;
    for w in sorted.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if lo <= 0.0 || hi <= lo {
            continue;
        }
        let ratio = hi / lo;
        if ratio > best_ratio {
            best_ratio = ratio;
            best_split = Some((lo * hi).sqrt());
        }
    }
    if best_ratio >= min_gap_ratio {
        best_split
    } else {
        None
    }
}

/// Greedy leader clustering: `O(n · C · reference_members)` probes.
fn cluster_by_threshold<S: LatencySource + ?Sized>(
    source: &S,
    threshold: f64,
    reference_members: usize,
) -> Vec<Vec<usize>> {
    let n = source.nodes();
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for node in 0..n {
        let mut joined = false;
        for cluster in clusters.iter_mut() {
            let refs = cluster.len().min(reference_members);
            let below = cluster[..refs]
                .iter()
                .filter(|&&m| source.latency_us(node, m) <= threshold)
                .count();
            if 2 * below > refs {
                cluster.push(node);
                joined = true;
                break;
            }
        }
        if !joined {
            clusters.push(vec![node]);
        }
    }
    // Scan order is index order, so members are ascending and clusters
    // are already ordered by smallest member — canonical by
    // construction.
    clusters
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// Relative median absolute deviation around a given centre.
fn rel_mad(values: &mut [f64], centre: f64) -> f64 {
    let mut devs: Vec<f64> = values.iter().map(|v| (v - centre).abs()).collect();
    median(&mut devs) / centre
}

fn size_cv(partition: &[Vec<usize>]) -> f64 {
    let c = partition.len();
    if c <= 1 {
        return 0.0;
    }
    let mean = partition.iter().map(Vec::len).sum::<usize>() as f64 / c as f64;
    let var = partition
        .iter()
        .map(|m| {
            let d = m.len() as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / c as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmcs_topology::latmatrix::{LatencyBand, SyntheticSpec};

    fn spec(clusters: usize, size: usize, seed: u64) -> SyntheticSpec {
        SyntheticSpec::uniform(
            clusters,
            size,
            LatencyBand::new(50.0, 3.0).unwrap(),
            LatencyBand::new(400.0, 24.0).unwrap(),
            seed,
        )
    }

    #[test]
    fn recovers_planted_partition_exactly() {
        let spec = spec(4, 16, 2005);
        let src = spec.source().unwrap();
        let id = identify(&src, &IdentifyOptions::default()).unwrap();
        assert_eq!(id.partition, src.partition());
        assert!(id.threshold_us.is_some());
        let sep = id.separation.unwrap();
        assert!((6.0..11.0).contains(&sep), "separation {sep}");
    }

    #[test]
    fn single_band_matrix_collapses_to_one_cluster() {
        let band = LatencyBand::new(100.0, 5.0).unwrap();
        // Both bands identical means there is no gap to find; build via
        // struct literal because validate() rejects inter == intra.
        let spec = SyntheticSpec {
            seed: 7,
            cluster_sizes: vec![8, 8],
            intra: band,
            inter: LatencyBand::new(100.0000001, 5.0).unwrap(),
            shuffle: true,
        };
        let src = spec.source().unwrap();
        let id = identify(&src, &IdentifyOptions::default()).unwrap();
        assert_eq!(id.clusters(), 1);
        assert!(id.threshold_us.is_none());
        assert!(id.inter_median_us.is_none());
        assert_eq!(id.residual.size_cv, 0.0);
    }

    #[test]
    fn residual_grows_with_jitter_and_skew() {
        let tight = spec(4, 16, 1).source().unwrap();
        let loose = SyntheticSpec::skewed(
            4,
            16,
            0.5,
            LatencyBand::new(50.0, 12.0).unwrap(),
            LatencyBand::new(400.0, 90.0).unwrap(),
            1,
        )
        .unwrap()
        .source()
        .unwrap();
        let tight_id = identify(&tight, &IdentifyOptions::default()).unwrap();
        let loose_id = identify(&loose, &IdentifyOptions::default()).unwrap();
        assert!(loose_id.residual.score > tight_id.residual.score);
        assert!(loose_id.residual.size_cv > 0.0);
    }

    #[test]
    fn fit_produces_valid_config_with_band_medians() {
        let spec = spec(8, 32, 3);
        let src = spec.source().unwrap();
        let id = identify(&src, &IdentifyOptions::default()).unwrap();
        let cfg = fitted_config(&id, &FitOptions::default()).unwrap();
        assert_eq!(cfg.clusters, 8);
        assert_eq!(cfg.nodes_per_cluster, 32);
        // Intra median ≈ 50 µs → snaps to the Fast Ethernet preset.
        assert_eq!(cfg.icn1, NetworkTechnology::FAST_ETHERNET);
        // Inter median ≈ 400 µs → custom effective technology.
        assert_eq!(cfg.ecn1.name, IDENTIFIED_INTER_NAME);
        assert!((cfg.ecn1.latency_us - 400.0).abs() < 20.0);
        assert_eq!(cfg.ecn1, cfg.icn2);
        cfg.validate().unwrap();
    }

    #[test]
    fn identification_scales_implicitly_past_the_dense_limit() {
        let spec = spec(16, 625, 2005); // 10,000 nodes, implicit only
        let src = spec.source().unwrap();
        let id = identify(&src, &IdentifyOptions::default()).unwrap();
        assert_eq!(id.partition, src.partition());
        assert_eq!(id.total_nodes(), 10_000);
    }

    #[test]
    fn rejects_tiny_sources_and_bad_options() {
        let spec = spec(2, 4, 5);
        let src = spec.source().unwrap();
        let opts = IdentifyOptions { sample_pairs: 0, ..Default::default() };
        assert!(identify(&src, &opts).is_err());

        struct OneNode;
        impl LatencySource for OneNode {
            fn nodes(&self) -> usize {
                1
            }
            fn latency_us(&self, _: usize, _: usize) -> f64 {
                unreachable!()
            }
        }
        assert!(identify(&OneNode, &IdentifyOptions::default()).is_err());
    }
}
