//! A minimal shared JSON implementation (RFC 8259 subset).
//!
//! The workspace builds offline with no crate-registry access, so
//! everything that speaks JSON — the run manifests in `hmcs-bench`, the
//! `hmcs-serve` evaluation daemon, the bench gate — shares this one
//! hand-rolled writer/parser pair instead of growing private copies.
//!
//! * [`json_str`] / [`json_num`] — escaping writer primitives. Every
//!   string that ends up inside a JSON document **must** pass through
//!   [`json_str`]; in particular error messages that echo request
//!   content, where an unescaped quote or control byte would corrupt
//!   the document (or worse, let a caller inject structure).
//! * [`parse_json`] — a strict recursive-descent parser. It rejects
//!   trailing garbage, bare `NaN`/`Infinity` tokens, truncated
//!   documents, and — going beyond what RFC 8259 requires — duplicate
//!   object keys, which in this workspace always indicate a writer bug.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if this is a number with no
    /// fractional part that fits in a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs in document order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Renders `s` as a quoted JSON string, escaping quotes, backslashes
/// and control characters.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Rust's `{}` float formatting never emits exponents, NaN excepted —
/// map non-finite values to null so the document stays valid JSON. The
/// rendering is the shortest string that round-trips to the same bits,
/// so a reader that parses it back recovers the f64 exactly.
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Parses a JSON document.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a &str,
                    // so boundaries are well-formed).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            // RFC 8259 leaves duplicate-key behaviour implementation-
            // defined; in this workspace a duplicate always means a
            // writer bug, so reject rather than silently keep one.
            if pairs.iter().any(|(existing, _)| *existing == key) {
                return Err(format!("duplicate key {key:?} at byte {}", self.pos));
            }
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_escapes_and_nesting() {
        let doc =
            parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y\\z\n"},"d":null,"e":true}"#).unwrap();
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y\\z\n"));
        assert_eq!(
            doc.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.5),
                JsonValue::Num(-300.0)
            ]))
        );
        assert_eq!(doc.get("d"), Some(&JsonValue::Null));
        assert_eq!(doc.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} garbage").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn parser_rejects_nan_and_bare_tokens() {
        // JSON has no NaN/Infinity literals; a writer that leaks one
        // (e.g. formatting an uninitialised f64) must not validate.
        assert!(parse_json("{\"x\": NaN}").is_err());
        assert!(parse_json("{\"x\": -Infinity}").is_err());
        assert!(parse_json("{\"x\": nan}").is_err());
        assert!(parse_json("NaN").is_err());
    }

    #[test]
    fn parser_rejects_duplicate_keys() {
        assert!(parse_json("{\"a\":1,\"a\":2}").is_err());
        // Nested objects are checked too, and the error names the key.
        let err = parse_json("{\"outer\":{\"k\":1,\"k\":1}}").unwrap_err();
        assert!(err.contains("duplicate key \"k\""), "unexpected error: {err}");
        // Same key at different depths is fine.
        assert!(parse_json("{\"a\":{\"a\":1},\"b\":{\"a\":2}}").is_ok());
    }

    #[test]
    fn escaper_neutralises_quotes_and_control_bytes() {
        let hostile = "a\"b\\c\u{01}d\ne";
        let escaped = json_str(hostile);
        assert_eq!(escaped, "\"a\\\"b\\\\c\\u0001d\\ne\"");
        // The escaped form embeds into a document that parses back to
        // the original string — nothing leaks through as structure.
        let doc = parse_json(&format!("{{\"msg\":{escaped}}}")).unwrap();
        assert_eq!(doc.get("msg").unwrap().as_str(), Some(hostile));
    }

    #[test]
    fn json_num_round_trips_and_rejects_non_finite() {
        for x in [0.25e-3, 1.0 / 3.0, f64::MIN_POSITIVE, 12_345.678_9] {
            let parsed: f64 = json_num(x).parse().unwrap();
            assert_eq!(parsed.to_bits(), x.to_bits(), "{x} must round-trip exactly");
        }
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }

    #[test]
    fn integer_accessor_is_strict() {
        assert_eq!(JsonValue::Num(8.0).as_u64(), Some(8));
        assert_eq!(JsonValue::Num(8.5).as_u64(), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Str("8".into()).as_u64(), None);
    }
}
