//! Batched structure-of-arrays fixed-point kernel.
//!
//! The figure drivers, the parameter sweeps, `/v1/sweep` and the
//! optimizer all evaluate *grids* of configurations, yet the scalar
//! path ([`crate::batch::evaluate_one`]) re-derives everything per
//! point: it validates the config, rebuilds the topology service
//! times, and every one of the ~45 bisection probes re-runs the
//! traffic equations (eqs. 1–5), re-constructs the three service
//! distributions and re-validates an [`MG1`](hmcs_queueing::mg1::MG1)
//! per centre.
//!
//! [`BatchKernel`] hoists everything λ-independent out of the loop
//! once per *lane* (one lane = one configuration) into flat `f64`
//! arrays — traffic coefficients, per-tier service moments, bracket
//! state — and then advances the bisection of **all** lanes in
//! lockstep with per-lane convergence masking: one pass over the
//! fixed-point loop moves the whole sweep forward by one probe. The
//! inner evaluation reduces to ~20 flops and three stability branches
//! per lane.
//!
//! ## Bit-identity contract
//!
//! The kernel is an *optimisation*, not a re-derivation: it replicates
//! the scalar solver's floating-point operation sequence exactly —
//! same association, same branch structure, same probe ordering, same
//! degenerate-bracket conventions — so every lane's
//! [`PerformanceReport`] equals [`crate::batch::evaluate_one`]'s
//! output to `f64::to_bits`, including the solver iteration count and
//! every error variant. The scalar path is kept as the differential
//! oracle: `tests/kernel_properties.rs` fuzzes lane-vs-scalar equality
//! over the 16–512-processor validity region and the `kernel_grid`
//! bench asserts it on the figure lambda grid.

use crate::batch::{self, EvalStats};
use crate::config::{QueueAccounting, SystemConfig};
use crate::error::ModelError;
use crate::metrics::{self, keys};
use crate::model::{AnalyticalModel, PerformanceReport};
use crate::service::ServiceTimes;
use crate::solver;
use hmcs_queueing::fixed_point::SEEDED_REL_TOL;
use hmcs_queueing::QueueingError;
use std::time::Instant;

/// Mirrors `SolverOptions::max_iterations` in the scalar solver: the
/// cap on fixed-point function evaluations per lane.
const MAX_EVALS: usize = 500;

/// Mean number in system of an M/G/1 centre from precomputed moments,
/// or `f64::INFINITY` when unstable — the lane-local replica of the
/// scalar `center_l` (`None` becomes `INFINITY`, which is what the
/// scalar caller substitutes anyway). `mean`/`m2` are `f64::INFINITY`
/// for tiers whose service distribution failed validation, which makes
/// any positive arrival read as unstable, exactly like the scalar
/// path's `MG1::new(..).ok()`.
///
/// Written select-style (both arms computed, conditionally chosen) so
/// the lockstep loop's evaluations stay straight-line: the speculative
/// division is IEEE-safe (a non-positive denominator yields ±inf/nan,
/// discarded by the select) and the chosen value is bit-identical to
/// the scalar branch.
#[inline(always)]
fn center_l_fast(lambda: f64, mean: f64, m2: f64) -> f64 {
    let rho = lambda * mean;
    let wq = lambda * m2 / (2.0 * (1.0 - rho));
    let l = lambda * (wq + mean);
    if lambda <= 0.0 {
        0.0
    } else if rho >= 1.0 {
        f64::INFINITY
    } else {
        l
    }
}

/// The `Option` form of [`center_l_fast`], for the solve tail where the
/// scalar path's `None`-vs-`Some` distinction is observable (the
/// back-off stability predicate asks "were all centres stable", not
/// "was the sum finite").
#[inline]
fn center_l_checked(lambda: f64, mean: f64, m2: f64) -> Option<f64> {
    if lambda <= 0.0 {
        return Some(0.0);
    }
    let rho = lambda * mean;
    if rho >= 1.0 {
        return None;
    }
    let wq = lambda * m2 / (2.0 * (1.0 - rho));
    Some(lambda * (wq + mean))
}

/// Eq. 7 root function `g(x) − x` for lane `$i`, expanded over the SoA
/// columns named at the call site. Every probe in the kernel expands
/// from this one macro, so the endpoint pass and the lockstep passes
/// share a single floating-point op sequence — the bit-identity
/// contract reduced to one definition. (A macro rather than a helper
/// function: the math must land *textually* inside each probe loop for
/// the autovectoriser to see straight-line code; an out-of-line call
/// defeats it.)
macro_rules! eval_f {
    (
        $i:expr, $x:expr;
        $a_icn1:ident, $a_fwd:ident, $a_icn2:ident, $c:ident, $w_e1:ident,
        $mean_i1:ident, $m2_i1:ident, $mean_e1:ident, $m2_e1:ident,
        $mean_i2:ident, $m2_i2:ident, $lambda:ident, $n:ident
    ) => {{
        let i = $i;
        let x = $x;
        let icn1 = $a_icn1[i] * x;
        let fwd = $a_fwd[i] * x;
        let icn2 = $a_icn2[i] * x;
        let ecn1_total = fwd + icn2 / $c[i];
        let l_i1 = center_l_fast(icn1, $mean_i1[i], $m2_i1[i]);
        let l_e1 = center_l_fast(ecn1_total, $mean_e1[i], $m2_e1[i]);
        let l_i2 = center_l_fast(icn2, $mean_i2[i], $m2_i2[i]);
        let l = $c[i] * ($w_e1[i] * l_e1 + l_i1) + l_i2;
        $lambda[i] * ($n[i] - l.min($n[i])) / $n[i] - x
    }};
}

/// Evaluates `out[i] = f(x[i])` branchless over every lane — the
/// endpoint probes at the head of the scalar `bisect_seeded`, run as
/// one data-parallel pass.
///
/// The probe loops live in free functions because Rust attaches
/// `noalias` to reference *parameters* only. Reborrowed as locals
/// inside `solve`, the ~15 columns would force the autovectoriser to
/// prove disjointness with runtime overlap checks — more than LLVM
/// will emit ("loop not vectorized: too many memory checks needed") —
/// and the pass would silently run scalar, forfeiting most of the
/// kernel's speedup. `inline(never)` keeps the parameter attributes
/// load-bearing instead of relying on the inliner to preserve the
/// aliasing scopes.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn probe_pass(
    out: &mut [f64],
    x: &[f64],
    a_icn1: &[f64],
    a_fwd: &[f64],
    a_icn2: &[f64],
    c: &[f64],
    w_e1: &[f64],
    mean_i1: &[f64],
    m2_i1: &[f64],
    mean_e1: &[f64],
    m2_e1: &[f64],
    mean_i2: &[f64],
    m2_i2: &[f64],
    lambda: &[f64],
    n: &[f64],
) {
    let len = out.len();
    // Pre-slice every column to the shared length so the per-index
    // bounds checks fold away (a reachable panic edge inside the loop
    // would also defeat vectorisation).
    let (x, a_icn1, a_fwd, a_icn2, c, w_e1) =
        (&x[..len], &a_icn1[..len], &a_fwd[..len], &a_icn2[..len], &c[..len], &w_e1[..len]);
    let (mean_i1, m2_i1, mean_e1, m2_e1, mean_i2, m2_i2, lambda, n) = (
        &mean_i1[..len],
        &m2_i1[..len],
        &mean_e1[..len],
        &m2_e1[..len],
        &mean_i2[..len],
        &m2_i2[..len],
        &lambda[..len],
        &n[..len],
    );
    macro_rules! f {
        ($i:expr, $x:expr) => {
            eval_f!(
                $i, $x;
                a_icn1, a_fwd, a_icn2, c, w_e1,
                mean_i1, m2_i1, mean_e1, m2_e1, mean_i2, m2_i2, lambda, n
            )
        };
    }
    for i in 0..len {
        out[i] = f!(i, x[i]);
    }
}

/// One lockstep bisection pass over every lane: probe the midpoint,
/// record the convergence verdict and residual, and advance the
/// bracket select-style — the bisection's inherently unpredictable
/// sign branch becomes a blend, and the loop body straight-line SIMD.
/// Terminal lanes hold degenerate brackets (`lo == hi == v` gives
/// `mid == v` exactly), so their convergence mask holds and nothing
/// moves. See [`probe_pass`] for why this is a free function.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn lockstep_pass(
    lo: &mut [f64],
    hi: &mut [f64],
    flo: &mut [f64],
    mids: &mut [f64],
    fms: &mut [f64],
    convf: &mut [f64],
    a_icn1: &[f64],
    a_fwd: &[f64],
    a_icn2: &[f64],
    c: &[f64],
    w_e1: &[f64],
    mean_i1: &[f64],
    m2_i1: &[f64],
    mean_e1: &[f64],
    m2_e1: &[f64],
    mean_i2: &[f64],
    m2_i2: &[f64],
    lambda: &[f64],
    n: &[f64],
) {
    let len = lo.len();
    let (hi, flo, mids, fms, convf) =
        (&mut hi[..len], &mut flo[..len], &mut mids[..len], &mut fms[..len], &mut convf[..len]);
    let (a_icn1, a_fwd, a_icn2, c, w_e1) =
        (&a_icn1[..len], &a_fwd[..len], &a_icn2[..len], &c[..len], &w_e1[..len]);
    let (mean_i1, m2_i1, mean_e1, m2_e1, mean_i2, m2_i2, lambda, n) = (
        &mean_i1[..len],
        &m2_i1[..len],
        &mean_e1[..len],
        &m2_e1[..len],
        &mean_i2[..len],
        &m2_i2[..len],
        &lambda[..len],
        &n[..len],
    );
    macro_rules! f {
        ($i:expr, $x:expr) => {
            eval_f!(
                $i, $x;
                a_icn1, a_fwd, a_icn2, c, w_e1,
                mean_i1, m2_i1, mean_e1, m2_e1, mean_i2, m2_i2, lambda, n
            )
        };
    }
    for i in 0..len {
        let lane_lo = lo[i];
        let lane_hi = hi[i];
        let mid = 0.5 * (lane_lo + lane_hi);
        let conv =
            mid <= lane_lo || mid >= lane_hi || (lane_hi - lane_lo) <= SEEDED_REL_TOL * mid.abs();
        let fm = f!(i, mid);
        // Scalar: `fmid.signum() == flo.signum()` moves the low edge,
        // else the high edge. Both are non-zero and non-NaN when the
        // update mask is live (an exact zero parks the lane in the
        // bookkeeping sweep before the next pass; `f` is finite for
        // validated lanes), so comparing signs via `> 0` is
        // equivalent.
        let upd = !conv && fm != 0.0;
        let same_sign = (fm > 0.0) == (flo[i] > 0.0);
        let up_lo = upd && same_sign;
        let up_hi = upd && !same_sign;
        mids[i] = mid;
        fms[i] = fm;
        convf[i] = if conv { 1.0 } else { 0.0 };
        lo[i] = if up_lo { mid } else { lane_lo };
        flo[i] = if up_lo { fm } else { flo[i] };
        hi[i] = if up_hi { mid } else { lane_hi };
    }
}

/// Per-lane solver outcome, tracked alongside the SoA state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LaneState {
    /// Still bisecting.
    Active,
    /// Bisection converged at `value` after `iterations` evaluations.
    Done,
    /// Preparation or solving failed; the error is in `errors[i]`.
    Failed,
}

/// A batch of fixed-point solves advanced in lockstep.
///
/// Build one with [`BatchKernel::new`] (per-lane service times, the
/// general heterogeneous-shape case) or [`BatchKernel::with_service`]
/// (one shared shape swept over λ), then call [`BatchKernel::solve`].
/// Results come back in lane order, each lane bit-identical to
/// [`crate::batch::evaluate_one`] on the same configuration.
#[derive(Debug)]
pub struct BatchKernel {
    configs: Vec<SystemConfig>,
    service: Vec<ServiceTimes>,
    // --- per-lane λ-independent constants (structure of arrays) ---
    lambda: Vec<f64>,
    n: Vec<f64>,
    c: Vec<f64>,
    a_icn1: Vec<f64>,
    a_fwd: Vec<f64>,
    a_icn2: Vec<f64>,
    w_e1: Vec<f64>,
    mean_i1: Vec<f64>,
    m2_i1: Vec<f64>,
    mean_e1: Vec<f64>,
    m2_e1: Vec<f64>,
    mean_i2: Vec<f64>,
    m2_i2: Vec<f64>,
    hi0: Vec<f64>,
    // --- per-lane bracket / convergence state ---
    lo: Vec<f64>,
    hi: Vec<f64>,
    flo: Vec<f64>,
    evals: Vec<usize>,
    value: Vec<f64>,
    iterations: Vec<usize>,
    state: Vec<LaneState>,
    errors: Vec<Option<ModelError>>,
}

impl BatchKernel {
    /// Prepares one lane per configuration, computing each lane's
    /// service times from its own topology (the scalar
    /// `evaluate_one(cfg, None, None)` contract).
    pub fn new(configs: &[SystemConfig]) -> Self {
        Self::build(configs, None)
    }

    /// Prepares one lane per configuration reusing one precomputed
    /// (λ-independent) [`ServiceTimes`] for every lane — the λ-grid
    /// case where all lanes share a shape.
    pub fn with_service(configs: &[SystemConfig], shared: &ServiceTimes) -> Self {
        Self::build(configs, Some(shared))
    }

    fn build(configs: &[SystemConfig], shared: Option<&ServiceTimes>) -> Self {
        let lanes = configs.len();
        let mut k = BatchKernel {
            configs: configs.to_vec(),
            service: vec![ServiceTimes { icn1_us: 0.0, ecn1_us: 0.0, icn2_us: 0.0 }; lanes],
            lambda: vec![0.0; lanes],
            n: vec![0.0; lanes],
            c: vec![0.0; lanes],
            a_icn1: vec![0.0; lanes],
            a_fwd: vec![0.0; lanes],
            a_icn2: vec![0.0; lanes],
            w_e1: vec![0.0; lanes],
            mean_i1: vec![0.0; lanes],
            m2_i1: vec![0.0; lanes],
            mean_e1: vec![0.0; lanes],
            m2_e1: vec![0.0; lanes],
            mean_i2: vec![0.0; lanes],
            m2_i2: vec![0.0; lanes],
            hi0: vec![0.0; lanes],
            lo: vec![0.0; lanes],
            hi: vec![0.0; lanes],
            flo: vec![0.0; lanes],
            evals: vec![0; lanes],
            value: vec![0.0; lanes],
            iterations: vec![0; lanes],
            state: vec![LaneState::Active; lanes],
            errors: vec![None; lanes],
        };
        for (i, config) in configs.iter().enumerate() {
            if let Err(e) = config.validate() {
                k.fail(i, e);
                continue;
            }
            let service = match shared {
                Some(s) => *s,
                None => match ServiceTimes::compute(config) {
                    Ok(s) => s,
                    Err(e) => {
                        k.fail(i, e);
                        continue;
                    }
                },
            };
            k.service[i] = service;
            k.lambda[i] = config.lambda_per_us;
            k.n[i] = config.total_nodes() as f64;
            let p = crate::routing::external_probability(config.clusters, config.nodes_per_cluster);
            let n0 = config.nodes_per_cluster as f64;
            let c = config.clusters as f64;
            k.c[i] = c;
            // Traffic-equation coefficients (eqs. 1–5): the scalar path
            // computes `n0 * (1.0 - p) * x` etc. per probe; hoisting the
            // full left-associated prefix keeps the bits identical.
            k.a_icn1[i] = n0 * (1.0 - p);
            k.a_fwd[i] = n0 * p;
            k.a_icn2[i] = c * n0 * p;
            k.w_e1[i] = match config.accounting {
                QueueAccounting::PaperLiteral => 2.0,
                QueueAccounting::SingleQueue => 1.0,
            };
            let moments = |service_us: f64| -> (f64, f64) {
                let dist = config.service_model.distribution(service_us);
                if dist.validate().is_err() {
                    // A positive arrival at an invalid tier must read as
                    // unstable, like the scalar `MG1::new(..).ok()`.
                    return (f64::INFINITY, f64::INFINITY);
                }
                (dist.mean(), dist.second_moment())
            };
            (k.mean_i1[i], k.m2_i1[i]) = moments(service.icn1_us);
            (k.mean_e1[i], k.m2_e1[i]) = moments(service.ecn1_us);
            (k.mean_i2[i], k.m2_i2[i]) = moments(service.icn2_us);
            let sat = solver::saturation_lambda(config, &service);
            k.hi0[i] = config.lambda_per_us.min(sat * (1.0 - 1e-12));
            k.hi[i] = k.hi0[i];
        }
        k
    }

    fn fail(&mut self, i: usize, e: ModelError) {
        self.state[i] = LaneState::Failed;
        self.errors[i] = Some(e);
    }

    /// Eq. 6 at offered rate `x` for lane `i`; `None` when any centre
    /// is unstable at that rate. Replicates the scalar `total_waiting`
    /// operation for operation — the tail's stability predicate needs
    /// the scalar's `None`, not the loop's propagated infinity.
    #[inline]
    fn total_waiting_lane(&self, i: usize, x: f64) -> Option<f64> {
        let icn1 = self.a_icn1[i] * x;
        let fwd = self.a_fwd[i] * x;
        let icn2 = self.a_icn2[i] * x;
        let feedback = icn2 / self.c[i];
        let ecn1_total = fwd + feedback;
        let l_i1 = center_l_checked(icn1, self.mean_i1[i], self.m2_i1[i])?;
        let l_e1 = center_l_checked(ecn1_total, self.mean_e1[i], self.m2_e1[i])?;
        let l_i2 = center_l_checked(icn2, self.mean_i2[i], self.m2_i2[i])?;
        Some(self.c[i] * (self.w_e1[i] * l_e1 + l_i1) + l_i2)
    }

    /// Runs the cold-start bisection of every lane in lockstep, then
    /// assembles one result per lane in input order.
    ///
    /// Per-lane `EvalStats::eval_time_us` is the batch wall clock
    /// divided evenly over the lanes (the lockstep loop has no
    /// meaningful per-lane clock); `solver_iterations` is exact.
    pub fn solve(mut self) -> Vec<Result<(PerformanceReport, EvalStats), ModelError>> {
        let start = Instant::now();
        let lanes = self.configs.len();

        {
            // Distinct `&mut` slices of the bracket state: the disjoint
            // borrows carry noalias guarantees that field accesses
            // through `self` do not, and pre-slicing to a shared length
            // lets the bounds checks fold away.
            let lo = &mut self.lo[..lanes];
            let hi = &mut self.hi[..lanes];
            let flo = &mut self.flo[..lanes];
            let evals = &mut self.evals[..lanes];
            let value = &mut self.value[..lanes];
            let iterations = &mut self.iterations[..lanes];
            let state = &mut self.state[..lanes];
            let errors = &mut self.errors[..lanes];
            let a_icn1 = &self.a_icn1[..lanes];
            let a_fwd = &self.a_fwd[..lanes];
            let a_icn2 = &self.a_icn2[..lanes];
            let c = &self.c[..lanes];
            let w_e1 = &self.w_e1[..lanes];
            let mean_i1 = &self.mean_i1[..lanes];
            let m2_i1 = &self.m2_i1[..lanes];
            let mean_e1 = &self.mean_e1[..lanes];
            let m2_e1 = &self.m2_e1[..lanes];
            let mean_i2 = &self.mean_i2[..lanes];
            let m2_i2 = &self.m2_i2[..lanes];
            let lambda = &self.lambda[..lanes];
            let n = &self.n[..lanes];

            // Endpoint probes — the head of the scalar `bisect_seeded`
            // with no seed (the path every golden artefact takes) —
            // run branchless over every lane so they vectorise like the
            // main passes. Lanes that failed preparation hold a
            // degenerate `lo == hi == 0` bracket: their probes compute
            // garbage that the triage below never reads.
            let mut f_los = vec![0.0f64; lanes];
            let mut f_his = vec![0.0f64; lanes];
            probe_pass(
                &mut f_los, lo, a_icn1, a_fwd, a_icn2, c, w_e1, mean_i1, m2_i1, mean_e1, m2_e1,
                mean_i2, m2_i2, lambda, n,
            );
            probe_pass(
                &mut f_his, hi, a_icn1, a_fwd, a_icn2, c, w_e1, mean_i1, m2_i1, mean_e1, m2_e1,
                mean_i2, m2_i2, lambda, n,
            );

            // Triage: the scalar head's decision order per lane.
            // Terminal lanes collapse their bracket to a fixed point of
            // the bisection (`lo == hi == v` gives `mid == v` exactly),
            // which keeps them inert through the branchless passes
            // below without a per-lane mask.
            let mut active_count = 0usize;
            for i in 0..lanes {
                if state[i] != LaneState::Active {
                    continue;
                }
                let f_lo = f_los[i];
                let f_hi = f_his[i];
                evals[i] = 2;
                if f_lo == 0.0 {
                    value[i] = lo[i];
                    iterations[i] = evals[i];
                    state[i] = LaneState::Done;
                    hi[i] = lo[i];
                } else if f_hi == 0.0 {
                    value[i] = hi[i];
                    iterations[i] = evals[i];
                    state[i] = LaneState::Done;
                    lo[i] = hi[i];
                } else if f_lo.signum() == f_hi.signum() {
                    state[i] = LaneState::Failed;
                    errors[i] = Some(ModelError::Queueing(QueueingError::InvalidParameter {
                        name: "bracket",
                        reason: "f(lo) and f(hi) must have opposite signs",
                    }));
                    lo[i] = 0.0;
                    hi[i] = 0.0;
                } else {
                    flo[i] = f_lo;
                    active_count += 1;
                }
            }

            // Lockstep bisection, two sub-steps per pass:
            //
            //  1. [`lockstep_pass`] — a branchless data-parallel sweep
            //     over *all* lanes that probes the midpoint, records
            //     the convergence verdict and residual, and advances
            //     the bracket select-style.
            //
            //  2. a scalar bookkeeping sweep that replays the scalar
            //     solver's per-iteration decision order — max-evals
            //     failure, relative convergence, exact root — on the
            //     recorded verdicts. Only state transitions happen
            //     here, at most once per lane per pass.
            let mut mids = vec![0.0f64; lanes];
            let mut fms = vec![0.0f64; lanes];
            let mut convf = vec![0.0f64; lanes];
            while active_count > 0 {
                lockstep_pass(
                    lo, hi, flo, &mut mids, &mut fms, &mut convf, a_icn1, a_fwd, a_icn2, c, w_e1,
                    mean_i1, m2_i1, mean_e1, m2_e1, mean_i2, m2_i2, lambda, n,
                );
                for i in 0..lanes {
                    if state[i] != LaneState::Active {
                        continue;
                    }
                    if evals[i] >= MAX_EVALS {
                        // The scalar solver checks the evaluation budget
                        // before the convergence test; `fms[i]` is the
                        // residual at exactly the midpoint it would have
                        // probed.
                        state[i] = LaneState::Failed;
                        errors[i] = Some(ModelError::SolverFailed { residual: fms[i].abs() });
                        lo[i] = 0.0;
                        hi[i] = 0.0;
                        active_count -= 1;
                        continue;
                    }
                    if convf[i] != 0.0 {
                        // Relative convergence. The scalar solver spends
                        // one extra evaluation probing the residual here;
                        // `f` is pure and the residual is discarded
                        // downstream, so the kernel skips the probe but
                        // still counts it in `iterations` to keep the
                        // reported count identical.
                        value[i] = mids[i];
                        iterations[i] = evals[i] + 1;
                        state[i] = LaneState::Done;
                        lo[i] = mids[i];
                        hi[i] = mids[i];
                        active_count -= 1;
                        continue;
                    }
                    evals[i] += 1;
                    if fms[i] == 0.0 {
                        value[i] = mids[i];
                        iterations[i] = evals[i];
                        state[i] = LaneState::Done;
                        lo[i] = mids[i];
                        hi[i] = mids[i];
                        active_count -= 1;
                    }
                }
            }
        }

        // Per-lane tail: saturation back-off, equilibrium assembly and
        // the same solver metrics the scalar path records. Metric
        // values accumulate in plain locals and merge into the shared
        // registry once at the end — each registry lookup is a
        // mutex-guarded name walk and each shared record is four
        // atomics, per lane — and only when something was recorded, so
        // a batch that records nothing also registers nothing, like
        // the scalar path.
        let mut solves = 0u64;
        let mut iter_batch = metrics::HistogramBatch::new();
        let mut bracket_batch = metrics::HistogramBatch::new();
        let mut backoff_activations = 0u64;
        let mut backoff_batch = metrics::HistogramBatch::new();
        let mut out: Vec<Result<(PerformanceReport, EvalStats), ModelError>> =
            Vec::with_capacity(lanes);
        for i in 0..lanes {
            if self.state[i] == LaneState::Failed {
                out.push(Err(self.errors[i].clone().expect("failed lane carries its error")));
                continue;
            }
            // `solver::back_off_to_stable` with its stability probe and
            // the subsequent eq.-6 evaluation fused: the probe at each
            // candidate rate *is* that evaluation, and the function is
            // pure, so keeping the successful probe's value gives the
            // exact bits the scalar path's recompute produces.
            let mut lambda_eff = self.value[i];
            let mut backoff_steps = 0u32;
            let mut total = self.total_waiting_lane(i, lambda_eff);
            if total.is_none() {
                let mut step = 1e-9;
                while step < 1.0 {
                    lambda_eff *= 1.0 - step;
                    backoff_steps += 1;
                    total = self.total_waiting_lane(i, lambda_eff);
                    if total.is_some() {
                        break;
                    }
                    step *= 2.0;
                }
            }
            let Some(total) = total else {
                out.push(Err(ModelError::SolverFailed { residual: f64::INFINITY }));
                continue;
            };
            solves += 1;
            iter_batch.record(self.iterations[i] as u64);
            if self.lambda[i] > 0.0 {
                bracket_batch.record_f64(self.hi0[i] / self.lambda[i] * 1e6);
            }
            if backoff_steps > 0 {
                backoff_activations += 1;
                backoff_batch.record(backoff_steps as u64);
            }
            match solver::assemble_equilibrium(
                &self.configs[i],
                &self.service[i],
                lambda_eff,
                total,
                self.iterations[i],
            ) {
                Ok(eq) => {
                    let report = AnalyticalModel::report_from_equilibrium(
                        &self.configs[i],
                        &self.service[i],
                        eq,
                    );
                    let stats =
                        EvalStats { eval_time_us: 0.0, solver_iterations: self.iterations[i] };
                    out.push(Ok((report, stats)));
                }
                Err(e) => out.push(Err(e)),
            }
        }
        if solves > 0 {
            metrics::counter(keys::SOLVER_SOLVES).add(solves);
            iter_batch.flush_into(metrics::histogram(keys::SOLVER_ITERATIONS));
            bracket_batch.flush_into(metrics::histogram(keys::SOLVER_BRACKET_PPM));
        }
        if backoff_activations > 0 {
            metrics::counter(keys::SOLVER_BACKOFF_ACTIVATIONS).add(backoff_activations);
            backoff_batch.flush_into(metrics::histogram(keys::SOLVER_BACKOFF_STEPS));
        }

        let per_lane_us =
            if lanes == 0 { 0.0 } else { start.elapsed().as_secs_f64() * 1e6 / lanes as f64 };
        let mut eval_time_batch = metrics::HistogramBatch::new();
        for r in out.iter_mut().flatten() {
            r.1.eval_time_us = per_lane_us;
            eval_time_batch.record_f64(per_lane_us);
        }
        if !eval_time_batch.is_empty() {
            eval_time_batch.flush_into(metrics::histogram(keys::BATCH_EVAL_TIME_US));
        }
        out
    }
}

/// Evaluates a batch of configurations through [`BatchKernel`], split
/// into one contiguous lane block per worker on the shared pool.
///
/// This is the engine behind [`crate::batch::evaluate_many`]: results
/// arrive in input order and every lane is bit-identical to the scalar
/// [`crate::batch::evaluate_one`] — chunking cannot change bits
/// because lanes never exchange information.
pub fn evaluate_batch(
    configs: &[SystemConfig],
    workers: usize,
) -> Vec<Result<(PerformanceReport, EvalStats), ModelError>> {
    if configs.is_empty() {
        return Vec::new();
    }
    let workers = workers.max(1).min(configs.len());
    let chunk = configs.len().div_ceil(workers);
    let chunks: Vec<&[SystemConfig]> = configs.chunks(chunk).collect();
    // `par_map` counts one item per chunk; top the batch-items counter
    // up to the per-configuration count the scalar path reported so
    // operator dashboards keep their meaning.
    if metrics::enabled() && configs.len() > chunks.len() {
        metrics::counter(keys::BATCH_ITEMS).add((configs.len() - chunks.len()) as u64);
    }
    let nested = batch::par_map(&chunks, workers, |block| BatchKernel::new(block).solve());
    nested.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceTimeModel;
    use crate::scenario::{Scenario, PAPER_CLUSTER_COUNTS};
    use hmcs_topology::transmission::Architecture;

    fn cfg(clusters: usize, arch: Architecture) -> SystemConfig {
        SystemConfig::paper_preset(Scenario::Case1, clusters, arch).unwrap()
    }

    fn assert_bitwise_eq(kernel: &PerformanceReport, scalar: &PerformanceReport) {
        assert_eq!(
            kernel.equilibrium.lambda_eff.to_bits(),
            scalar.equilibrium.lambda_eff.to_bits(),
            "lambda_eff bits diverge"
        );
        assert_eq!(
            kernel.latency.mean_message_latency_us.to_bits(),
            scalar.latency.mean_message_latency_us.to_bits(),
            "latency bits diverge"
        );
        assert_eq!(
            kernel.equilibrium.solver_iterations, scalar.equilibrium.solver_iterations,
            "solver iteration counts diverge"
        );
        // PartialEq over PerformanceReport covers every remaining field.
        assert_eq!(kernel, scalar);
    }

    #[test]
    fn kernel_matches_scalar_on_the_paper_grid() {
        let mut configs = Vec::new();
        for scenario in [Scenario::Case1, Scenario::Case2] {
            for arch in [Architecture::NonBlocking, Architecture::Blocking] {
                for &c in &PAPER_CLUSTER_COUNTS {
                    configs.push(
                        SystemConfig::paper_preset(scenario, c, arch)
                            .unwrap()
                            .with_message_bytes(1024),
                    );
                }
            }
        }
        let batch = BatchKernel::new(&configs).solve();
        for (cfg, lane) in configs.iter().zip(&batch) {
            let (scalar, sstats) = batch::evaluate_one(cfg, None, None).unwrap();
            let (kernel, kstats) = lane.as_ref().unwrap();
            assert_bitwise_eq(kernel, &scalar);
            assert_eq!(kstats.solver_iterations, sstats.solver_iterations);
        }
    }

    #[test]
    fn kernel_matches_scalar_on_a_lambda_grid() {
        let base = cfg(16, Architecture::Blocking);
        let service = ServiceTimes::compute(&base).unwrap();
        let lambdas: Vec<f64> = (0..64).map(|i| 1e-6 * 1.12f64.powi(i)).collect();
        let configs: Vec<SystemConfig> = lambdas.iter().map(|&l| base.with_lambda(l)).collect();
        let lanes = BatchKernel::with_service(&configs, &service).solve();
        for (cfg, lane) in configs.iter().zip(&lanes) {
            let (scalar, _) = batch::evaluate_one(cfg, Some(&service), None).unwrap();
            let (kernel, _) = lane.as_ref().unwrap();
            assert_bitwise_eq(kernel, &scalar);
        }
    }

    #[test]
    fn kernel_matches_scalar_through_backoff_and_overload() {
        // Deep saturation exercises the back-off retreat; the kernel
        // must walk the identical path.
        for lambda in [2.5e-3, 2.5e-2] {
            let config = cfg(256, Architecture::Blocking).with_lambda(lambda);
            let lane = BatchKernel::new(std::slice::from_ref(&config)).solve().remove(0);
            let (scalar, _) = batch::evaluate_one(&config, None, None).unwrap();
            assert_bitwise_eq(&lane.unwrap().0, &scalar);
        }
    }

    #[test]
    fn kernel_matches_scalar_across_service_models() {
        for model in [
            ServiceTimeModel::Deterministic,
            ServiceTimeModel::Erlang(4),
            ServiceTimeModel::HyperExponential(4.0),
        ] {
            let config = cfg(8, Architecture::NonBlocking).with_service_model(model);
            let lane = BatchKernel::new(std::slice::from_ref(&config)).solve().remove(0);
            let (scalar, _) = batch::evaluate_one(&config, None, None).unwrap();
            assert_bitwise_eq(&lane.unwrap().0, &scalar);
        }
    }

    #[test]
    fn error_lanes_match_the_scalar_errors_in_place() {
        let good = cfg(4, Architecture::NonBlocking);
        let bad = good.with_lambda(-1.0);
        let lanes = BatchKernel::new(&[good, bad, good]).solve();
        assert!(lanes[0].is_ok());
        assert!(lanes[2].is_ok());
        let scalar_err = batch::evaluate_one(&bad, None, None).unwrap_err();
        assert_eq!(lanes[1].as_ref().unwrap_err(), &scalar_err);
    }

    #[test]
    fn evaluate_batch_is_chunking_invariant() {
        let configs: Vec<SystemConfig> =
            PAPER_CLUSTER_COUNTS.iter().map(|&c| cfg(c, Architecture::NonBlocking)).collect();
        let one = evaluate_batch(&configs, 1);
        for workers in [2, 3, 8, 32] {
            let many = evaluate_batch(&configs, workers);
            assert_eq!(one.len(), many.len());
            for (a, b) in one.iter().zip(&many) {
                assert_eq!(a.as_ref().unwrap().0, b.as_ref().unwrap().0, "workers={workers}");
            }
        }
    }

    #[test]
    fn evaluate_batch_handles_empty_input() {
        assert!(evaluate_batch(&[], 8).is_empty());
    }

    #[test]
    fn lane_stats_report_exact_iterations_and_positive_time() {
        let configs = [cfg(8, Architecture::NonBlocking)];
        let lanes = BatchKernel::new(&configs).solve();
        let (report, stats) = lanes[0].as_ref().unwrap();
        assert_eq!(stats.solver_iterations, report.equilibrium.solver_iterations);
        assert!(stats.eval_time_us > 0.0);
    }
}
