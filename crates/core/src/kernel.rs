//! Batched structure-of-arrays fixed-point kernel.
//!
//! The figure drivers, the parameter sweeps, `/v1/sweep` and the
//! optimizer all evaluate *grids* of configurations, yet the scalar
//! path ([`crate::batch::evaluate_one`]) re-derives everything per
//! point: it validates the config, rebuilds the topology service
//! times, and every one of the ~45 bisection probes re-runs the
//! traffic equations (eqs. 1–5), re-constructs the three service
//! distributions and re-validates an [`MG1`](hmcs_queueing::mg1::MG1)
//! per centre.
//!
//! [`BatchKernel`] hoists everything λ-independent out of the loop
//! once per *lane* (one lane = one configuration) into flat `f64`
//! arrays — traffic coefficients, per-tier service moments, bracket
//! state — and then advances the bisection of **all** lanes in
//! lockstep with per-lane convergence masking: one pass over the
//! fixed-point loop moves the whole sweep forward by one probe. The
//! inner evaluation reduces to ~20 flops and three stability branches
//! per lane.
//!
//! ## Bit-identity contract
//!
//! The kernel is an *optimisation*, not a re-derivation: it replicates
//! the scalar solver's floating-point operation sequence exactly —
//! same association, same branch structure, same probe ordering, same
//! degenerate-bracket conventions — so every lane's
//! [`PerformanceReport`] equals [`crate::batch::evaluate_one`]'s
//! output to `f64::to_bits`, including the solver iteration count and
//! every error variant. The scalar path is kept as the differential
//! oracle: `tests/kernel_properties.rs` fuzzes lane-vs-scalar equality
//! over the 16–512-processor validity region and the `kernel_grid`
//! bench asserts it on the figure lambda grid.

use crate::batch::{self, EvalStats};
use crate::config::{QueueAccounting, SystemConfig};
use crate::error::ModelError;
use crate::metrics::{self, keys};
use crate::model::{AnalyticalModel, PerformanceReport};
use crate::service::ServiceTimes;
use crate::solver;
use hmcs_queueing::fixed_point::SEEDED_REL_TOL;
use hmcs_queueing::QueueingError;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Mirrors `SolverOptions::max_iterations` in the scalar solver: the
/// cap on fixed-point function evaluations per lane.
const MAX_EVALS: usize = 500;

/// Mean number in system of an M/G/1 centre from precomputed moments,
/// or `f64::INFINITY` when unstable — the lane-local replica of the
/// scalar `center_l` (`None` becomes `INFINITY`, which is what the
/// scalar caller substitutes anyway). `mean`/`m2` are `f64::INFINITY`
/// for tiers whose service distribution failed validation, which makes
/// any positive arrival read as unstable, exactly like the scalar
/// path's `MG1::new(..).ok()`.
///
/// Written select-style (both arms computed, conditionally chosen) so
/// the lockstep loop's evaluations stay straight-line: the speculative
/// division is IEEE-safe (a non-positive denominator yields ±inf/nan,
/// discarded by the select) and the chosen value is bit-identical to
/// the scalar branch.
#[inline(always)]
fn center_l_fast(lambda: f64, mean: f64, m2: f64) -> f64 {
    let rho = lambda * mean;
    let wq = lambda * m2 / (2.0 * (1.0 - rho));
    let l = lambda * (wq + mean);
    if lambda <= 0.0 {
        0.0
    } else if rho >= 1.0 {
        f64::INFINITY
    } else {
        l
    }
}

/// The `Option` form of [`center_l_fast`], for the solve tail where the
/// scalar path's `None`-vs-`Some` distinction is observable (the
/// back-off stability predicate asks "were all centres stable", not
/// "was the sum finite").
#[inline]
fn center_l_checked(lambda: f64, mean: f64, m2: f64) -> Option<f64> {
    if lambda <= 0.0 {
        return Some(0.0);
    }
    let rho = lambda * mean;
    if rho >= 1.0 {
        return None;
    }
    let wq = lambda * m2 / (2.0 * (1.0 - rho));
    Some(lambda * (wq + mean))
}

/// Eq. 7 root function `g(x) − x` for lane `$i`, expanded over the SoA
/// columns named at the call site. Every probe in the kernel expands
/// from this one macro, so the endpoint pass and the lockstep passes
/// share a single floating-point op sequence — the bit-identity
/// contract reduced to one definition. (A macro rather than a helper
/// function: the math must land *textually* inside each probe loop for
/// the autovectoriser to see straight-line code; an out-of-line call
/// defeats it.)
macro_rules! eval_f {
    (
        $i:expr, $x:expr;
        $a_icn1:ident, $a_fwd:ident, $a_icn2:ident, $c:ident, $w_e1:ident,
        $mean_i1:ident, $m2_i1:ident, $mean_e1:ident, $m2_e1:ident,
        $mean_i2:ident, $m2_i2:ident, $lambda:ident, $n:ident
    ) => {{
        let i = $i;
        let x = $x;
        let icn1 = $a_icn1[i] * x;
        let fwd = $a_fwd[i] * x;
        let icn2 = $a_icn2[i] * x;
        let ecn1_total = fwd + icn2 / $c[i];
        let l_i1 = center_l_fast(icn1, $mean_i1[i], $m2_i1[i]);
        let l_e1 = center_l_fast(ecn1_total, $mean_e1[i], $m2_e1[i]);
        let l_i2 = center_l_fast(icn2, $mean_i2[i], $m2_i2[i]);
        let l = $c[i] * ($w_e1[i] * l_e1 + l_i1) + l_i2;
        $lambda[i] * ($n[i] - l.min($n[i])) / $n[i] - x
    }};
}

/// Evaluates `out[i] = f(x[i])` branchless over every lane — the
/// endpoint probes at the head of the scalar `bisect_seeded`, run as
/// one data-parallel pass.
///
/// The probe loops live in free functions because Rust attaches
/// `noalias` to reference *parameters* only. Reborrowed as locals
/// inside `solve`, the ~15 columns would force the autovectoriser to
/// prove disjointness with runtime overlap checks — more than LLVM
/// will emit ("loop not vectorized: too many memory checks needed") —
/// and the pass would silently run scalar, forfeiting most of the
/// kernel's speedup. `inline(never)` keeps the parameter attributes
/// load-bearing instead of relying on the inliner to preserve the
/// aliasing scopes.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn probe_pass(
    out: &mut [f64],
    x: &[f64],
    a_icn1: &[f64],
    a_fwd: &[f64],
    a_icn2: &[f64],
    c: &[f64],
    w_e1: &[f64],
    mean_i1: &[f64],
    m2_i1: &[f64],
    mean_e1: &[f64],
    m2_e1: &[f64],
    mean_i2: &[f64],
    m2_i2: &[f64],
    lambda: &[f64],
    n: &[f64],
) {
    let len = out.len();
    // Pre-slice every column to the shared length so the per-index
    // bounds checks fold away (a reachable panic edge inside the loop
    // would also defeat vectorisation).
    let (x, a_icn1, a_fwd, a_icn2, c, w_e1) =
        (&x[..len], &a_icn1[..len], &a_fwd[..len], &a_icn2[..len], &c[..len], &w_e1[..len]);
    let (mean_i1, m2_i1, mean_e1, m2_e1, mean_i2, m2_i2, lambda, n) = (
        &mean_i1[..len],
        &m2_i1[..len],
        &mean_e1[..len],
        &m2_e1[..len],
        &mean_i2[..len],
        &m2_i2[..len],
        &lambda[..len],
        &n[..len],
    );
    macro_rules! f {
        ($i:expr, $x:expr) => {
            eval_f!(
                $i, $x;
                a_icn1, a_fwd, a_icn2, c, w_e1,
                mean_i1, m2_i1, mean_e1, m2_e1, mean_i2, m2_i2, lambda, n
            )
        };
    }
    for i in 0..len {
        out[i] = f!(i, x[i]);
    }
}

/// One lockstep bisection pass over every lane: probe the midpoint,
/// record the convergence verdict and residual, and advance the
/// bracket select-style — the bisection's inherently unpredictable
/// sign branch becomes a blend, and the loop body straight-line SIMD.
/// Terminal lanes hold degenerate brackets (`lo == hi == v` gives
/// `mid == v` exactly), so their convergence mask holds and nothing
/// moves. See [`probe_pass`] for why this is a free function.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn lockstep_pass(
    lo: &mut [f64],
    hi: &mut [f64],
    flo: &mut [f64],
    mids: &mut [f64],
    fms: &mut [f64],
    convf: &mut [f64],
    a_icn1: &[f64],
    a_fwd: &[f64],
    a_icn2: &[f64],
    c: &[f64],
    w_e1: &[f64],
    mean_i1: &[f64],
    m2_i1: &[f64],
    mean_e1: &[f64],
    m2_e1: &[f64],
    mean_i2: &[f64],
    m2_i2: &[f64],
    lambda: &[f64],
    n: &[f64],
) {
    let len = lo.len();
    let (hi, flo, mids, fms, convf) =
        (&mut hi[..len], &mut flo[..len], &mut mids[..len], &mut fms[..len], &mut convf[..len]);
    let (a_icn1, a_fwd, a_icn2, c, w_e1) =
        (&a_icn1[..len], &a_fwd[..len], &a_icn2[..len], &c[..len], &w_e1[..len]);
    let (mean_i1, m2_i1, mean_e1, m2_e1, mean_i2, m2_i2, lambda, n) = (
        &mean_i1[..len],
        &m2_i1[..len],
        &mean_e1[..len],
        &m2_e1[..len],
        &mean_i2[..len],
        &m2_i2[..len],
        &lambda[..len],
        &n[..len],
    );
    macro_rules! f {
        ($i:expr, $x:expr) => {
            eval_f!(
                $i, $x;
                a_icn1, a_fwd, a_icn2, c, w_e1,
                mean_i1, m2_i1, mean_e1, m2_e1, mean_i2, m2_i2, lambda, n
            )
        };
    }
    for i in 0..len {
        let lane_lo = lo[i];
        let lane_hi = hi[i];
        let mid = 0.5 * (lane_lo + lane_hi);
        let conv =
            mid <= lane_lo || mid >= lane_hi || (lane_hi - lane_lo) <= SEEDED_REL_TOL * mid.abs();
        let fm = f!(i, mid);
        // Scalar: `fmid.signum() == flo.signum()` moves the low edge,
        // else the high edge. Both are non-zero and non-NaN when the
        // update mask is live (an exact zero parks the lane in the
        // bookkeeping sweep before the next pass; `f` is finite for
        // validated lanes), so comparing signs via `> 0` is
        // equivalent.
        let upd = !conv && fm != 0.0;
        let same_sign = (fm > 0.0) == (flo[i] > 0.0);
        let up_lo = upd && same_sign;
        let up_hi = upd && !same_sign;
        mids[i] = mid;
        fms[i] = fm;
        convf[i] = if conv { 1.0 } else { 0.0 };
        lo[i] = if up_lo { mid } else { lane_lo };
        flo[i] = if up_lo { fm } else { flo[i] };
        hi[i] = if up_hi { mid } else { lane_hi };
    }
}

/// Per-lane solver outcome, tracked alongside the SoA state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LaneState {
    /// Still bisecting.
    Active,
    /// Bisection converged at `value` after `iterations` evaluations.
    Done,
    /// Preparation or solving failed; the error is in `errors[i]`.
    Failed,
    /// A bounded solve certified mid-flight that this lane's latency
    /// cannot beat its prune threshold; the certified lower bound is in
    /// `pruned_lb[i]`.
    Pruned,
}

/// Per-lane prune thresholds for [`BatchKernel::evaluate_bounded`].
/// `f64::INFINITY` disables the corresponding bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneBounds {
    /// Prune the lane once its latency is certified strictly above this
    /// SLO (the lane would be `above_slo` in an exhaustive pass).
    pub slo_us: f64,
    /// Prune the lane once its latency is certified at or above this
    /// value (a strictly cheaper feasible design already achieved it,
    /// so the lane would be Pareto-dominated in an exhaustive pass).
    pub dominated_at_us: f64,
}

impl LaneBounds {
    /// No bounds: the lane solves to completion like [`BatchKernel::solve`].
    pub const NONE: LaneBounds =
        LaneBounds { slo_us: f64::INFINITY, dominated_at_us: f64::INFINITY };
}

/// One lane's outcome from a bounded solve.
// `Solved` dominates the size, but outcomes are consumed immediately from a
// per-wave Vec on the optimizer hot path; boxing the report would add one
// heap allocation per evaluated lane to shave bytes off pruned lanes.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum LaneOutcome {
    /// The lane solved to completion, bit-identical to an unbounded solve.
    Solved(PerformanceReport, EvalStats),
    /// Preparation or solving failed, bit-identical to an unbounded solve.
    Failed(ModelError),
    /// The lane was abandoned after its mean latency was certified to be
    /// at least `latency_lb_us`, which crossed a [`LaneBounds`] threshold.
    Pruned {
        /// A certified lower bound on the latency the full solve would
        /// have reported.
        latency_lb_us: f64,
    },
}

/// Mean-sojourn form of [`center_l_fast`]: the M/G/1 sojourn `W = S +
/// Wq` from precomputed moments, `f64::INFINITY` when unstable. Used by
/// the mid-flight prune check, which needs latency (a sojourn mix)
/// rather than population.
#[inline]
fn sojourn_fast(arrival: f64, mean: f64, m2: f64) -> f64 {
    if arrival <= 0.0 {
        return mean;
    }
    let rho = arrival * mean;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    mean + arrival * m2 / (2.0 * (1.0 - rho))
}

/// A batch of fixed-point solves advanced in lockstep.
///
/// Build one with [`BatchKernel::new`] (per-lane service times, the
/// general heterogeneous-shape case) or [`BatchKernel::with_service`]
/// (one shared shape swept over λ), then call [`BatchKernel::solve`].
/// Results come back in lane order, each lane bit-identical to
/// [`crate::batch::evaluate_one`] on the same configuration.
///
/// A kernel is also a reusable *arena*: [`BatchKernel::reset`] rewinds
/// every column to the exact state a fresh build would produce without
/// releasing capacity, so steady-state callers ([`evaluate_batch`]'s
/// worker pool, the optimizer's wave loop, the serve micro-batcher)
/// solve batch after batch without touching the allocator. The
/// convenience wrappers [`BatchKernel::evaluate`] /
/// [`BatchKernel::evaluate_with_service`] are `reset` + solve-in-place.
#[derive(Debug, Default)]
pub struct BatchKernel {
    configs: Vec<SystemConfig>,
    service: Vec<ServiceTimes>,
    // --- per-lane λ-independent constants (structure of arrays) ---
    lambda: Vec<f64>,
    n: Vec<f64>,
    c: Vec<f64>,
    p_ext: Vec<f64>,
    a_icn1: Vec<f64>,
    a_fwd: Vec<f64>,
    a_icn2: Vec<f64>,
    w_e1: Vec<f64>,
    mean_i1: Vec<f64>,
    m2_i1: Vec<f64>,
    mean_e1: Vec<f64>,
    m2_e1: Vec<f64>,
    mean_i2: Vec<f64>,
    m2_i2: Vec<f64>,
    hi0: Vec<f64>,
    // --- per-lane bracket / convergence state ---
    lo: Vec<f64>,
    hi: Vec<f64>,
    flo: Vec<f64>,
    evals: Vec<usize>,
    value: Vec<f64>,
    iterations: Vec<usize>,
    state: Vec<LaneState>,
    errors: Vec<Option<ModelError>>,
    // --- bounded-solve thresholds and certificates ---
    bound_active: bool,
    thr_slo: Vec<f64>,
    thr_dom: Vec<f64>,
    pruned_lb: Vec<f64>,
    // --- solve-scratch columns (endpoint residuals, midpoints,
    //     convergence flags), retained across resets ---
    f_los: Vec<f64>,
    f_his: Vec<f64>,
    mids: Vec<f64>,
    fms: Vec<f64>,
    convf: Vec<f64>,
}

impl BatchKernel {
    /// Prepares one lane per configuration, computing each lane's
    /// service times from its own topology (the scalar
    /// `evaluate_one(cfg, None, None)` contract).
    pub fn new(configs: &[SystemConfig]) -> Self {
        Self::build(configs, None)
    }

    /// Prepares one lane per configuration reusing one precomputed
    /// (λ-independent) [`ServiceTimes`] for every lane — the λ-grid
    /// case where all lanes share a shape.
    pub fn with_service(configs: &[SystemConfig], shared: &ServiceTimes) -> Self {
        Self::build(configs, Some(shared))
    }

    fn build(configs: &[SystemConfig], shared: Option<&ServiceTimes>) -> Self {
        let mut k = BatchKernel::default();
        k.reset_impl(configs, shared);
        k
    }

    /// Rewinds the arena to the state [`BatchKernel::new`] would build
    /// for `configs`, reusing every column's capacity. Solving after a
    /// reset is bit-identical to solving a freshly built kernel.
    pub fn reset(&mut self, configs: &[SystemConfig]) {
        self.reset_impl(configs, None);
    }

    /// [`BatchKernel::reset`] for the shared-service (λ-grid) case,
    /// mirroring [`BatchKernel::with_service`].
    pub fn reset_with_service(&mut self, configs: &[SystemConfig], shared: &ServiceTimes) {
        self.reset_impl(configs, Some(shared));
    }

    /// `reset` + solve in place: one batch through a reusable arena.
    pub fn evaluate(
        &mut self,
        configs: &[SystemConfig],
    ) -> Vec<Result<(PerformanceReport, EvalStats), ModelError>> {
        self.reset(configs);
        self.solve_in_place()
    }

    /// `reset_with_service` + solve in place.
    pub fn evaluate_with_service(
        &mut self,
        configs: &[SystemConfig],
        shared: &ServiceTimes,
    ) -> Vec<Result<(PerformanceReport, EvalStats), ModelError>> {
        self.reset_with_service(configs, shared);
        self.solve_in_place()
    }

    /// Bounded solve: lanes whose latency is certified (mid-flight, via
    /// the monotone lower bound at the bracket's stable low edge) to
    /// cross their [`LaneBounds`] threshold abandon the bisection early
    /// and come back as [`LaneOutcome::Pruned`]. Lanes that solve to
    /// completion are bit-identical to an unbounded solve: the check
    /// only reads bracket state, never writes it.
    ///
    /// The certificate is conservative and float-safe: it only fires
    /// once the bracket's high edge has moved strictly inside the
    /// saturation clamp (so the final rate is provably `≥ lo` with no
    /// back-off), and the bound carries a `1e-9` relative safety margin
    /// against rounding, so a pruned lane's true latency provably
    /// crosses the threshold.
    pub fn evaluate_bounded(
        &mut self,
        configs: &[SystemConfig],
        bounds: &[LaneBounds],
    ) -> Vec<LaneOutcome> {
        assert_eq!(configs.len(), bounds.len(), "one LaneBounds per lane");
        self.reset(configs);
        let mut any = false;
        for (i, b) in bounds.iter().enumerate() {
            self.thr_slo[i] = b.slo_us;
            self.thr_dom[i] = b.dominated_at_us;
            any |= b.slo_us.is_finite() || b.dominated_at_us.is_finite();
        }
        self.bound_active = any;
        self.run()
    }

    fn reset_impl(&mut self, configs: &[SystemConfig], shared: Option<&ServiceTimes>) {
        let lanes = configs.len();
        self.configs.clear();
        self.configs.extend_from_slice(configs);
        fn refill<T: Clone>(v: &mut Vec<T>, lanes: usize, zero: T) {
            v.clear();
            v.resize(lanes, zero);
        }
        refill(&mut self.service, lanes, ServiceTimes { icn1_us: 0.0, ecn1_us: 0.0, icn2_us: 0.0 });
        for col in [
            &mut self.lambda,
            &mut self.n,
            &mut self.c,
            &mut self.p_ext,
            &mut self.a_icn1,
            &mut self.a_fwd,
            &mut self.a_icn2,
            &mut self.w_e1,
            &mut self.mean_i1,
            &mut self.m2_i1,
            &mut self.mean_e1,
            &mut self.m2_e1,
            &mut self.mean_i2,
            &mut self.m2_i2,
            &mut self.hi0,
            &mut self.lo,
            &mut self.hi,
            &mut self.flo,
            &mut self.value,
            &mut self.pruned_lb,
        ] {
            refill(col, lanes, 0.0);
        }
        refill(&mut self.evals, lanes, 0);
        refill(&mut self.iterations, lanes, 0);
        refill(&mut self.state, lanes, LaneState::Active);
        refill(&mut self.errors, lanes, None);
        self.bound_active = false;
        refill(&mut self.thr_slo, lanes, f64::INFINITY);
        refill(&mut self.thr_dom, lanes, f64::INFINITY);
        let k = self;
        for (i, config) in configs.iter().enumerate() {
            if let Err(e) = config.validate() {
                k.fail(i, e);
                continue;
            }
            let service = match shared {
                Some(s) => *s,
                None => match ServiceTimes::compute(config) {
                    Ok(s) => s,
                    Err(e) => {
                        k.fail(i, e);
                        continue;
                    }
                },
            };
            k.service[i] = service;
            k.lambda[i] = config.lambda_per_us;
            k.n[i] = config.total_nodes() as f64;
            let p = crate::routing::external_probability(config.clusters, config.nodes_per_cluster);
            let n0 = config.nodes_per_cluster as f64;
            let c = config.clusters as f64;
            k.c[i] = c;
            k.p_ext[i] = p;
            // Traffic-equation coefficients (eqs. 1–5): the scalar path
            // computes `n0 * (1.0 - p) * x` etc. per probe; hoisting the
            // full left-associated prefix keeps the bits identical.
            k.a_icn1[i] = n0 * (1.0 - p);
            k.a_fwd[i] = n0 * p;
            k.a_icn2[i] = c * n0 * p;
            k.w_e1[i] = match config.accounting {
                QueueAccounting::PaperLiteral => 2.0,
                QueueAccounting::SingleQueue => 1.0,
            };
            let moments = |service_us: f64| -> (f64, f64) {
                let dist = config.service_model.distribution(service_us);
                if dist.validate().is_err() {
                    // A positive arrival at an invalid tier must read as
                    // unstable, like the scalar `MG1::new(..).ok()`.
                    return (f64::INFINITY, f64::INFINITY);
                }
                (dist.mean(), dist.second_moment())
            };
            (k.mean_i1[i], k.m2_i1[i]) = moments(service.icn1_us);
            (k.mean_e1[i], k.m2_e1[i]) = moments(service.ecn1_us);
            (k.mean_i2[i], k.m2_i2[i]) = moments(service.icn2_us);
            let sat = solver::saturation_lambda(config, &service);
            k.hi0[i] = config.lambda_per_us.min(sat * (1.0 - 1e-12));
            k.hi[i] = k.hi0[i];
        }
    }

    fn fail(&mut self, i: usize, e: ModelError) {
        self.state[i] = LaneState::Failed;
        self.errors[i] = Some(e);
    }

    /// Eq. 6 at offered rate `x` for lane `i`; `None` when any centre
    /// is unstable at that rate. Replicates the scalar `total_waiting`
    /// operation for operation — the tail's stability predicate needs
    /// the scalar's `None`, not the loop's propagated infinity.
    #[inline]
    fn total_waiting_lane(&self, i: usize, x: f64) -> Option<f64> {
        let icn1 = self.a_icn1[i] * x;
        let fwd = self.a_fwd[i] * x;
        let icn2 = self.a_icn2[i] * x;
        let feedback = icn2 / self.c[i];
        let ecn1_total = fwd + feedback;
        let l_i1 = center_l_checked(icn1, self.mean_i1[i], self.m2_i1[i])?;
        let l_e1 = center_l_checked(ecn1_total, self.mean_e1[i], self.m2_e1[i])?;
        let l_i2 = center_l_checked(icn2, self.mean_i2[i], self.m2_i2[i])?;
        Some(self.c[i] * (self.w_e1[i] * l_e1 + l_i1) + l_i2)
    }

    /// Runs the cold-start bisection of every lane in lockstep, then
    /// assembles one result per lane in input order.
    ///
    /// Per-lane `EvalStats::eval_time_us` is the batch wall clock
    /// divided evenly over the lanes (the lockstep loop has no
    /// meaningful per-lane clock); `solver_iterations` is exact.
    pub fn solve(mut self) -> Vec<Result<(PerformanceReport, EvalStats), ModelError>> {
        self.solve_in_place()
    }

    /// [`BatchKernel::solve`] without consuming the arena; only called
    /// on a freshly built or freshly reset batch.
    fn solve_in_place(&mut self) -> Vec<Result<(PerformanceReport, EvalStats), ModelError>> {
        self.run()
            .into_iter()
            .map(|lane| match lane {
                LaneOutcome::Solved(report, stats) => Ok((report, stats)),
                LaneOutcome::Failed(e) => Err(e),
                LaneOutcome::Pruned { .. } => {
                    unreachable!("an unbounded solve never prunes a lane")
                }
            })
            .collect()
    }

    fn run(&mut self) -> Vec<LaneOutcome> {
        let start = Instant::now();
        let lanes = self.configs.len();
        let bound_active = self.bound_active;

        {
            // Distinct `&mut` slices of the bracket state: the disjoint
            // borrows carry noalias guarantees that field accesses
            // through `self` do not, and pre-slicing to a shared length
            // lets the bounds checks fold away.
            let lo = &mut self.lo[..lanes];
            let hi = &mut self.hi[..lanes];
            let flo = &mut self.flo[..lanes];
            let evals = &mut self.evals[..lanes];
            let value = &mut self.value[..lanes];
            let iterations = &mut self.iterations[..lanes];
            let state = &mut self.state[..lanes];
            let errors = &mut self.errors[..lanes];
            let a_icn1 = &self.a_icn1[..lanes];
            let a_fwd = &self.a_fwd[..lanes];
            let a_icn2 = &self.a_icn2[..lanes];
            let c = &self.c[..lanes];
            let w_e1 = &self.w_e1[..lanes];
            let mean_i1 = &self.mean_i1[..lanes];
            let m2_i1 = &self.m2_i1[..lanes];
            let mean_e1 = &self.mean_e1[..lanes];
            let m2_e1 = &self.m2_e1[..lanes];
            let mean_i2 = &self.mean_i2[..lanes];
            let m2_i2 = &self.m2_i2[..lanes];
            let lambda = &self.lambda[..lanes];
            let n = &self.n[..lanes];
            let hi0 = &self.hi0[..lanes];
            let p_ext = &self.p_ext[..lanes];
            let thr_slo = &self.thr_slo[..lanes];
            let thr_dom = &self.thr_dom[..lanes];
            let pruned_lb = &mut self.pruned_lb[..lanes];

            // Scratch columns live in the arena so steady-state reuse
            // stays allocation-free; every slot is overwritten by the
            // probe passes before it is read.
            for scratch in
                [&mut self.f_los, &mut self.f_his, &mut self.mids, &mut self.fms, &mut self.convf]
            {
                scratch.clear();
                scratch.resize(lanes, 0.0);
            }
            let f_los = &mut self.f_los[..lanes];
            let f_his = &mut self.f_his[..lanes];
            let mids = &mut self.mids[..lanes];
            let fms = &mut self.fms[..lanes];
            let convf = &mut self.convf[..lanes];

            // Endpoint probes — the head of the scalar `bisect_seeded`
            // with no seed (the path every golden artefact takes) —
            // run branchless over every lane so they vectorise like the
            // main passes. Lanes that failed preparation hold a
            // degenerate `lo == hi == 0` bracket: their probes compute
            // garbage that the triage below never reads.
            probe_pass(
                f_los, lo, a_icn1, a_fwd, a_icn2, c, w_e1, mean_i1, m2_i1, mean_e1, m2_e1, mean_i2,
                m2_i2, lambda, n,
            );
            probe_pass(
                f_his, hi, a_icn1, a_fwd, a_icn2, c, w_e1, mean_i1, m2_i1, mean_e1, m2_e1, mean_i2,
                m2_i2, lambda, n,
            );

            // Triage: the scalar head's decision order per lane.
            // Terminal lanes collapse their bracket to a fixed point of
            // the bisection (`lo == hi == v` gives `mid == v` exactly),
            // which keeps them inert through the branchless passes
            // below without a per-lane mask.
            let mut active_count = 0usize;
            for i in 0..lanes {
                if state[i] != LaneState::Active {
                    continue;
                }
                let f_lo = f_los[i];
                let f_hi = f_his[i];
                evals[i] = 2;
                if f_lo == 0.0 {
                    value[i] = lo[i];
                    iterations[i] = evals[i];
                    state[i] = LaneState::Done;
                    hi[i] = lo[i];
                } else if f_hi == 0.0 {
                    value[i] = hi[i];
                    iterations[i] = evals[i];
                    state[i] = LaneState::Done;
                    lo[i] = hi[i];
                } else if f_lo.signum() == f_hi.signum() {
                    state[i] = LaneState::Failed;
                    errors[i] = Some(ModelError::Queueing(QueueingError::InvalidParameter {
                        name: "bracket",
                        reason: "f(lo) and f(hi) must have opposite signs",
                    }));
                    lo[i] = 0.0;
                    hi[i] = 0.0;
                } else {
                    flo[i] = f_lo;
                    active_count += 1;
                }
            }

            // Lockstep bisection, two sub-steps per pass:
            //
            //  1. [`lockstep_pass`] — a branchless data-parallel sweep
            //     over *all* lanes that probes the midpoint, records
            //     the convergence verdict and residual, and advances
            //     the bracket select-style.
            //
            //  2. a scalar bookkeeping sweep that replays the scalar
            //     solver's per-iteration decision order — max-evals
            //     failure, relative convergence, exact root — on the
            //     recorded verdicts. Only state transitions happen
            //     here, at most once per lane per pass. In bounded
            //     solves the sweep ends with the prune certificate
            //     check; it reads bracket state without writing it, so
            //     surviving lanes keep the unbounded bit pattern.
            while active_count > 0 {
                lockstep_pass(
                    lo, hi, flo, mids, fms, convf, a_icn1, a_fwd, a_icn2, c, w_e1, mean_i1, m2_i1,
                    mean_e1, m2_e1, mean_i2, m2_i2, lambda, n,
                );
                for i in 0..lanes {
                    if state[i] != LaneState::Active {
                        continue;
                    }
                    if evals[i] >= MAX_EVALS {
                        // The scalar solver checks the evaluation budget
                        // before the convergence test; `fms[i]` is the
                        // residual at exactly the midpoint it would have
                        // probed.
                        state[i] = LaneState::Failed;
                        errors[i] = Some(ModelError::SolverFailed { residual: fms[i].abs() });
                        lo[i] = 0.0;
                        hi[i] = 0.0;
                        active_count -= 1;
                        continue;
                    }
                    if convf[i] != 0.0 {
                        // Relative convergence. The scalar solver spends
                        // one extra evaluation probing the residual here;
                        // `f` is pure and the residual is discarded
                        // downstream, so the kernel skips the probe but
                        // still counts it in `iterations` to keep the
                        // reported count identical.
                        value[i] = mids[i];
                        iterations[i] = evals[i] + 1;
                        state[i] = LaneState::Done;
                        lo[i] = mids[i];
                        hi[i] = mids[i];
                        active_count -= 1;
                        continue;
                    }
                    evals[i] += 1;
                    if fms[i] == 0.0 {
                        value[i] = mids[i];
                        iterations[i] = evals[i];
                        state[i] = LaneState::Done;
                        lo[i] = mids[i];
                        hi[i] = mids[i];
                        active_count -= 1;
                        continue;
                    }
                    if !bound_active {
                        continue;
                    }
                    // Prune certificate. Valid only once the high edge
                    // sits strictly inside the saturation clamp: then
                    // every rate in `[lo, hi]` is stable with margin
                    // (no back-off can fire), the final `lambda_eff`
                    // lands in `[lo, hi]`, and mean latency is
                    // monotone increasing in the effective rate — so
                    // the sojourn mix at `lo` lower-bounds the latency
                    // the completed solve would report. The `1e-6` /
                    // `1e-9` margins keep the certificate sound under
                    // floating-point rounding.
                    let t_slo = thr_slo[i];
                    let t_dom = thr_dom[i];
                    if (t_slo.is_finite() || t_dom.is_finite()) && hi[i] <= hi0[i] * (1.0 - 1e-6) {
                        let x = lo[i];
                        let icn1 = a_icn1[i] * x;
                        let icn2 = a_icn2[i] * x;
                        let ecn1_total = a_fwd[i] * x + icn2 / c[i];
                        let w_i1 = sojourn_fast(icn1, mean_i1[i], m2_i1[i]);
                        let w_ecn1 = sojourn_fast(ecn1_total, mean_e1[i], m2_e1[i]);
                        let w_i2 = sojourn_fast(icn2, mean_i2[i], m2_i2[i]);
                        let p = p_ext[i];
                        let t_lo = (1.0 - p) * w_i1 + p * (w_i2 + 2.0 * w_ecn1);
                        let certified = t_lo * (1.0 - 1e-9);
                        if certified > t_slo || certified >= t_dom {
                            state[i] = LaneState::Pruned;
                            pruned_lb[i] = certified;
                            lo[i] = 0.0;
                            hi[i] = 0.0;
                            active_count -= 1;
                        }
                    }
                }
            }
        }

        // Per-lane tail: saturation back-off, equilibrium assembly and
        // the same solver metrics the scalar path records. Metric
        // values accumulate in plain locals and merge into the shared
        // registry once at the end — each registry lookup is a
        // mutex-guarded name walk and each shared record is four
        // atomics, per lane — and only when something was recorded, so
        // a batch that records nothing also registers nothing, like
        // the scalar path.
        let mut solves = 0u64;
        let mut iter_batch = metrics::HistogramBatch::new();
        let mut bracket_batch = metrics::HistogramBatch::new();
        let mut backoff_activations = 0u64;
        let mut backoff_batch = metrics::HistogramBatch::new();
        let mut out: Vec<LaneOutcome> = Vec::with_capacity(lanes);
        for i in 0..lanes {
            match self.state[i] {
                LaneState::Failed => {
                    out.push(LaneOutcome::Failed(
                        self.errors[i].clone().expect("failed lane carries its error"),
                    ));
                    continue;
                }
                LaneState::Pruned => {
                    out.push(LaneOutcome::Pruned { latency_lb_us: self.pruned_lb[i] });
                    continue;
                }
                LaneState::Active | LaneState::Done => {}
            }
            // `solver::back_off_to_stable` with its stability probe and
            // the subsequent eq.-6 evaluation fused: the probe at each
            // candidate rate *is* that evaluation, and the function is
            // pure, so keeping the successful probe's value gives the
            // exact bits the scalar path's recompute produces.
            let mut lambda_eff = self.value[i];
            let mut backoff_steps = 0u32;
            let mut total = self.total_waiting_lane(i, lambda_eff);
            if total.is_none() {
                let mut step = 1e-9;
                while step < 1.0 {
                    lambda_eff *= 1.0 - step;
                    backoff_steps += 1;
                    total = self.total_waiting_lane(i, lambda_eff);
                    if total.is_some() {
                        break;
                    }
                    step *= 2.0;
                }
            }
            let Some(total) = total else {
                out.push(LaneOutcome::Failed(ModelError::SolverFailed { residual: f64::INFINITY }));
                continue;
            };
            solves += 1;
            iter_batch.record(self.iterations[i] as u64);
            if self.lambda[i] > 0.0 {
                bracket_batch.record_f64(self.hi0[i] / self.lambda[i] * 1e6);
            }
            if backoff_steps > 0 {
                backoff_activations += 1;
                backoff_batch.record(backoff_steps as u64);
            }
            match solver::assemble_equilibrium(
                &self.configs[i],
                &self.service[i],
                lambda_eff,
                total,
                self.iterations[i],
            ) {
                Ok(eq) => {
                    let report = AnalyticalModel::report_from_equilibrium(
                        &self.configs[i],
                        &self.service[i],
                        eq,
                    );
                    let stats =
                        EvalStats { eval_time_us: 0.0, solver_iterations: self.iterations[i] };
                    out.push(LaneOutcome::Solved(report, stats));
                }
                Err(e) => out.push(LaneOutcome::Failed(e)),
            }
        }
        if solves > 0 {
            metrics::counter(keys::SOLVER_SOLVES).add(solves);
            iter_batch.flush_into(metrics::histogram(keys::SOLVER_ITERATIONS));
            bracket_batch.flush_into(metrics::histogram(keys::SOLVER_BRACKET_PPM));
        }
        if backoff_activations > 0 {
            metrics::counter(keys::SOLVER_BACKOFF_ACTIVATIONS).add(backoff_activations);
            backoff_batch.flush_into(metrics::histogram(keys::SOLVER_BACKOFF_STEPS));
        }

        let per_lane_us =
            if lanes == 0 { 0.0 } else { start.elapsed().as_secs_f64() * 1e6 / lanes as f64 };
        let mut eval_time_batch = metrics::HistogramBatch::new();
        for lane in out.iter_mut() {
            if let LaneOutcome::Solved(_, stats) = lane {
                stats.eval_time_us = per_lane_us;
                eval_time_batch.record_f64(per_lane_us);
            }
        }
        if !eval_time_batch.is_empty() {
            eval_time_batch.flush_into(metrics::histogram(keys::BATCH_EVAL_TIME_US));
        }
        out
    }
}

/// Process-wide arena cache: finished workers park their
/// [`BatchKernel`] here and the next batch's workers pick them back
/// up, so steady-state serving and optimizer loops stop paying the
/// ~28-column rebuild allocation per call. Bounded by the peak number
/// of concurrent workers ever live.
struct ArenaPool {
    arenas: Mutex<Vec<BatchKernel>>,
}

impl ArenaPool {
    fn take(&self) -> BatchKernel {
        self.arenas.lock().expect("arena pool poisoned").pop().unwrap_or_default()
    }

    fn put(&self, kernel: BatchKernel) {
        self.arenas.lock().expect("arena pool poisoned").push(kernel);
    }
}

fn arena_pool() -> &'static ArenaPool {
    static POOL: OnceLock<ArenaPool> = OnceLock::new();
    POOL.get_or_init(|| ArenaPool { arenas: Mutex::new(Vec::new()) })
}

/// Checked-out arena that returns itself to the pool on drop (worker
/// panic included).
struct PooledKernel {
    kernel: Option<BatchKernel>,
}

impl PooledKernel {
    fn checkout() -> Self {
        PooledKernel { kernel: Some(arena_pool().take()) }
    }

    fn get(&mut self) -> &mut BatchKernel {
        self.kernel.as_mut().expect("pooled kernel present until drop")
    }
}

impl Drop for PooledKernel {
    fn drop(&mut self) {
        if let Some(kernel) = self.kernel.take() {
            arena_pool().put(kernel);
        }
    }
}

/// Evaluates a batch of configurations through [`BatchKernel`], split
/// into one contiguous lane block per worker on the shared pool.
///
/// This is the engine behind [`crate::batch::evaluate_many`]: results
/// arrive in input order and every lane is bit-identical to the scalar
/// [`crate::batch::evaluate_one`] — chunking cannot change bits
/// because lanes never exchange information. Each worker solves its
/// block in a pooled arena ([`BatchKernel::reset`] reuse), so repeated
/// calls are allocation-free once the pool is warm.
pub fn evaluate_batch(
    configs: &[SystemConfig],
    workers: usize,
) -> Vec<Result<(PerformanceReport, EvalStats), ModelError>> {
    if configs.is_empty() {
        return Vec::new();
    }
    let workers = workers.max(1).min(configs.len());
    let chunk = configs.len().div_ceil(workers);
    let chunks: Vec<&[SystemConfig]> = configs.chunks(chunk).collect();
    // `par_map_init` counts one item per chunk; top the batch-items
    // counter up to the per-configuration count the scalar path
    // reported so operator dashboards keep their meaning.
    if metrics::enabled() && configs.len() > chunks.len() {
        metrics::counter(keys::BATCH_ITEMS).add((configs.len() - chunks.len()) as u64);
    }
    let nested = batch::par_map_init(&chunks, workers, PooledKernel::checkout, |arena, block| {
        arena.get().evaluate(block)
    });
    nested.into_iter().flatten().collect()
}

/// [`evaluate_batch`] with per-lane prune thresholds: the bounded
/// analogue used by the optimizer's gradient-guided pass. `bounds`
/// must be lane-aligned with `configs`. Lanes that survive are
/// bit-identical to [`evaluate_batch`]; pruned lanes carry their
/// certified latency lower bound.
pub fn evaluate_batch_bounded(
    configs: &[SystemConfig],
    bounds: &[LaneBounds],
    workers: usize,
) -> Vec<LaneOutcome> {
    assert_eq!(configs.len(), bounds.len(), "one LaneBounds per lane");
    if configs.is_empty() {
        return Vec::new();
    }
    let workers = workers.max(1).min(configs.len());
    let chunk = configs.len().div_ceil(workers);
    let chunks: Vec<(&[SystemConfig], &[LaneBounds])> =
        configs.chunks(chunk).zip(bounds.chunks(chunk)).collect();
    if metrics::enabled() && configs.len() > chunks.len() {
        metrics::counter(keys::BATCH_ITEMS).add((configs.len() - chunks.len()) as u64);
    }
    let nested =
        batch::par_map_init(&chunks, workers, PooledKernel::checkout, |arena, &(block, bb)| {
            arena.get().evaluate_bounded(block, bb)
        });
    nested.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceTimeModel;
    use crate::scenario::{Scenario, PAPER_CLUSTER_COUNTS};
    use hmcs_topology::transmission::Architecture;

    fn cfg(clusters: usize, arch: Architecture) -> SystemConfig {
        SystemConfig::paper_preset(Scenario::Case1, clusters, arch).unwrap()
    }

    fn assert_bitwise_eq(kernel: &PerformanceReport, scalar: &PerformanceReport) {
        assert_eq!(
            kernel.equilibrium.lambda_eff.to_bits(),
            scalar.equilibrium.lambda_eff.to_bits(),
            "lambda_eff bits diverge"
        );
        assert_eq!(
            kernel.latency.mean_message_latency_us.to_bits(),
            scalar.latency.mean_message_latency_us.to_bits(),
            "latency bits diverge"
        );
        assert_eq!(
            kernel.equilibrium.solver_iterations, scalar.equilibrium.solver_iterations,
            "solver iteration counts diverge"
        );
        // PartialEq over PerformanceReport covers every remaining field.
        assert_eq!(kernel, scalar);
    }

    #[test]
    fn kernel_matches_scalar_on_the_paper_grid() {
        let mut configs = Vec::new();
        for scenario in [Scenario::Case1, Scenario::Case2] {
            for arch in [Architecture::NonBlocking, Architecture::Blocking] {
                for &c in &PAPER_CLUSTER_COUNTS {
                    configs.push(
                        SystemConfig::paper_preset(scenario, c, arch)
                            .unwrap()
                            .with_message_bytes(1024),
                    );
                }
            }
        }
        let batch = BatchKernel::new(&configs).solve();
        for (cfg, lane) in configs.iter().zip(&batch) {
            let (scalar, sstats) = batch::evaluate_one(cfg, None, None).unwrap();
            let (kernel, kstats) = lane.as_ref().unwrap();
            assert_bitwise_eq(kernel, &scalar);
            assert_eq!(kstats.solver_iterations, sstats.solver_iterations);
        }
    }

    #[test]
    fn kernel_matches_scalar_on_a_lambda_grid() {
        let base = cfg(16, Architecture::Blocking);
        let service = ServiceTimes::compute(&base).unwrap();
        let lambdas: Vec<f64> = (0..64).map(|i| 1e-6 * 1.12f64.powi(i)).collect();
        let configs: Vec<SystemConfig> = lambdas.iter().map(|&l| base.with_lambda(l)).collect();
        let lanes = BatchKernel::with_service(&configs, &service).solve();
        for (cfg, lane) in configs.iter().zip(&lanes) {
            let (scalar, _) = batch::evaluate_one(cfg, Some(&service), None).unwrap();
            let (kernel, _) = lane.as_ref().unwrap();
            assert_bitwise_eq(kernel, &scalar);
        }
    }

    #[test]
    fn kernel_matches_scalar_through_backoff_and_overload() {
        // Deep saturation exercises the back-off retreat; the kernel
        // must walk the identical path.
        for lambda in [2.5e-3, 2.5e-2] {
            let config = cfg(256, Architecture::Blocking).with_lambda(lambda);
            let lane = BatchKernel::new(std::slice::from_ref(&config)).solve().remove(0);
            let (scalar, _) = batch::evaluate_one(&config, None, None).unwrap();
            assert_bitwise_eq(&lane.unwrap().0, &scalar);
        }
    }

    #[test]
    fn kernel_matches_scalar_across_service_models() {
        for model in [
            ServiceTimeModel::Deterministic,
            ServiceTimeModel::Erlang(4),
            ServiceTimeModel::HyperExponential(4.0),
        ] {
            let config = cfg(8, Architecture::NonBlocking).with_service_model(model);
            let lane = BatchKernel::new(std::slice::from_ref(&config)).solve().remove(0);
            let (scalar, _) = batch::evaluate_one(&config, None, None).unwrap();
            assert_bitwise_eq(&lane.unwrap().0, &scalar);
        }
    }

    #[test]
    fn error_lanes_match_the_scalar_errors_in_place() {
        let good = cfg(4, Architecture::NonBlocking);
        let bad = good.with_lambda(-1.0);
        let lanes = BatchKernel::new(&[good, bad, good]).solve();
        assert!(lanes[0].is_ok());
        assert!(lanes[2].is_ok());
        let scalar_err = batch::evaluate_one(&bad, None, None).unwrap_err();
        assert_eq!(lanes[1].as_ref().unwrap_err(), &scalar_err);
    }

    #[test]
    fn evaluate_batch_is_chunking_invariant() {
        let configs: Vec<SystemConfig> =
            PAPER_CLUSTER_COUNTS.iter().map(|&c| cfg(c, Architecture::NonBlocking)).collect();
        let one = evaluate_batch(&configs, 1);
        for workers in [2, 3, 8, 32] {
            let many = evaluate_batch(&configs, workers);
            assert_eq!(one.len(), many.len());
            for (a, b) in one.iter().zip(&many) {
                assert_eq!(a.as_ref().unwrap().0, b.as_ref().unwrap().0, "workers={workers}");
            }
        }
    }

    #[test]
    fn evaluate_batch_handles_empty_input() {
        assert!(evaluate_batch(&[], 8).is_empty());
    }

    #[test]
    fn lane_stats_report_exact_iterations_and_positive_time() {
        let configs = [cfg(8, Architecture::NonBlocking)];
        let lanes = BatchKernel::new(&configs).solve();
        let (report, stats) = lanes[0].as_ref().unwrap();
        assert_eq!(stats.solver_iterations, report.equilibrium.solver_iterations);
        assert!(stats.eval_time_us > 0.0);
    }

    #[test]
    fn one_arena_cycled_through_batches_matches_fresh_builds() {
        // Grow, shrink, and re-grow one arena across batches with
        // error lanes in the mix: every pass must be bit-identical to
        // a fresh build of the same batch.
        let mut arena = BatchKernel::default();
        let batches: Vec<Vec<SystemConfig>> = vec![
            PAPER_CLUSTER_COUNTS.iter().map(|&c| cfg(c, Architecture::NonBlocking)).collect(),
            vec![cfg(4, Architecture::Blocking).with_lambda(-1.0)],
            vec![
                cfg(256, Architecture::Blocking).with_lambda(2.5e-2),
                cfg(2, Architecture::NonBlocking),
                cfg(16, Architecture::Blocking).with_lambda(-1.0),
                cfg(16, Architecture::Blocking),
            ],
            Vec::new(),
            PAPER_CLUSTER_COUNTS.iter().map(|&c| cfg(c, Architecture::Blocking)).collect(),
        ];
        for batch_cfgs in &batches {
            let reused = arena.evaluate(batch_cfgs);
            let fresh = BatchKernel::new(batch_cfgs).solve();
            assert_eq!(reused.len(), fresh.len());
            for (a, b) in reused.iter().zip(&fresh) {
                match (a, b) {
                    (Ok((ra, sa)), Ok((rb, sb))) => {
                        assert_bitwise_eq(ra, rb);
                        assert_eq!(sa.solver_iterations, sb.solver_iterations);
                    }
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                    _ => panic!("reused arena and fresh build disagree on lane outcome"),
                }
            }
        }
    }

    #[test]
    fn arena_reuse_matches_fresh_builds_on_the_shared_service_path() {
        let base = cfg(16, Architecture::Blocking);
        let service = ServiceTimes::compute(&base).unwrap();
        let mut arena = BatchKernel::default();
        for count in [7usize, 64, 3] {
            let configs: Vec<SystemConfig> =
                (0..count).map(|i| base.with_lambda(1e-6 * 1.3f64.powi(i as i32))).collect();
            let reused = arena.evaluate_with_service(&configs, &service);
            let fresh = BatchKernel::with_service(&configs, &service).solve();
            for (a, b) in reused.iter().zip(&fresh) {
                assert_bitwise_eq(&a.as_ref().unwrap().0, &b.as_ref().unwrap().0);
            }
        }
    }

    #[test]
    fn bounded_solve_without_bounds_matches_the_unbounded_solve() {
        let configs: Vec<SystemConfig> =
            PAPER_CLUSTER_COUNTS.iter().map(|&c| cfg(c, Architecture::Blocking)).collect();
        let bounds = vec![LaneBounds::NONE; configs.len()];
        let outcomes = BatchKernel::default().evaluate_bounded(&configs, &bounds);
        let plain = BatchKernel::new(&configs).solve();
        for (o, p) in outcomes.iter().zip(&plain) {
            match (o, p) {
                (LaneOutcome::Solved(ro, _), Ok((rp, _))) => assert_bitwise_eq(ro, rp),
                (LaneOutcome::Failed(eo), Err(ep)) => assert_eq!(eo, ep),
                _ => panic!("bounded solve without bounds changed a lane outcome"),
            }
        }
    }

    #[test]
    fn bounded_solve_certificates_are_sound_and_survivors_identical() {
        // Heavily throttled lanes: their latency is far above the
        // threshold, so the certificate must fire, and its certified
        // bound must sit at or below the true latency. The unbounded
        // lane in the same batch must keep its exact bits.
        let throttled = cfg(256, Architecture::Blocking).with_lambda(2.5e-3);
        let light = cfg(4, Architecture::NonBlocking);
        let true_latency = BatchKernel::new(std::slice::from_ref(&throttled))
            .solve()
            .remove(0)
            .unwrap()
            .0
            .latency
            .mean_message_latency_us;
        let threshold = true_latency * 0.5;
        let configs = [throttled, light];
        let bounds =
            [LaneBounds { slo_us: f64::INFINITY, dominated_at_us: threshold }, LaneBounds::NONE];
        let outcomes = BatchKernel::default().evaluate_bounded(&configs, &bounds);
        match &outcomes[0] {
            LaneOutcome::Pruned { latency_lb_us } => {
                assert!(*latency_lb_us >= threshold, "prune fired below its threshold");
                assert!(*latency_lb_us <= true_latency, "certificate overshot the true latency");
            }
            other => panic!("expected the throttled lane to prune, got {other:?}"),
        }
        let (light_report, _) = batch::evaluate_one(&configs[1], None, None).unwrap();
        match &outcomes[1] {
            LaneOutcome::Solved(report, _) => assert_bitwise_eq(report, &light_report),
            other => panic!("expected the light lane to solve, got {other:?}"),
        }
    }

    #[test]
    fn evaluate_batch_bounded_is_chunking_invariant() {
        let configs: Vec<SystemConfig> = PAPER_CLUSTER_COUNTS
            .iter()
            .map(|&c| cfg(c, Architecture::Blocking).with_lambda(1e-3))
            .collect();
        let bounds =
            vec![LaneBounds { slo_us: 2e4, dominated_at_us: f64::INFINITY }; configs.len()];
        let one = evaluate_batch_bounded(&configs, &bounds, 1);
        for workers in [2, 3, 8] {
            let many = evaluate_batch_bounded(&configs, &bounds, workers);
            assert_eq!(one, many, "workers={workers}");
        }
    }
}
