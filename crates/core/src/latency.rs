//! Mean message latency — eqs. 9, 15, 16.
//!
//! An internal message (probability `1−P`) crosses its cluster's ICN1
//! once; an external message (probability `P`) crosses its ECN1, the
//! global ICN2, and the destination ECN1 (two ECN1 passes in the
//! symmetric model). Each crossing costs the centre's mean sojourn time
//! `W = 1/(µ−λ)` (eq. 16 under exponential service; the M/G/1
//! generalisation applies under the other service models):
//!
//! ```text
//! T_W = (1−P)·W_I1 + P·(W_I2 + 2·W_E1)     (eq. 15)
//! ```

use crate::solver::Equilibrium;

/// Mean-latency report in µs (helpers convert to ms for the figures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyReport {
    /// Probability a message is external (eq. 8).
    pub external_probability: f64,
    /// Latency of an intra-cluster message: `W_I1`.
    pub internal_latency_us: f64,
    /// Latency of an inter-cluster message: `W_I2 + 2·W_E1`.
    pub external_latency_us: f64,
    /// Mean message latency `T_W` (eq. 15).
    pub mean_message_latency_us: f64,
    /// Per-centre sojourn times (µs): ICN1, ECN1 (per pass), ICN2.
    pub sojourn_icn1_us: f64,
    /// ECN1 per-pass sojourn (µs).
    pub sojourn_ecn1_us: f64,
    /// ICN2 sojourn (µs).
    pub sojourn_icn2_us: f64,
}

impl LatencyReport {
    /// Composes eq. 15 from a converged equilibrium.
    pub fn from_equilibrium(eq: &Equilibrium) -> Self {
        let p = eq.rates.external_probability;
        let internal = eq.icn1.sojourn_us;
        let external = eq.icn2.sojourn_us + 2.0 * eq.ecn1.sojourn_us;
        LatencyReport {
            external_probability: p,
            internal_latency_us: internal,
            external_latency_us: external,
            mean_message_latency_us: (1.0 - p) * internal + p * external,
            sojourn_icn1_us: eq.icn1.sojourn_us,
            sojourn_ecn1_us: eq.ecn1.sojourn_us,
            sojourn_icn2_us: eq.icn2.sojourn_us,
        }
    }

    /// Mean message latency in milliseconds (the figures' y-axis unit).
    #[inline]
    pub fn mean_message_latency_ms(&self) -> f64 {
        self.mean_message_latency_us / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::scenario::Scenario;
    use crate::solver;
    use hmcs_topology::transmission::Architecture;

    fn report(clusters: usize, arch: Architecture) -> LatencyReport {
        let cfg = SystemConfig::paper_preset(Scenario::Case1, clusters, arch).unwrap();
        LatencyReport::from_equilibrium(&solver::solve(&cfg).unwrap())
    }

    #[test]
    fn eq15_composition() {
        let r = report(8, Architecture::NonBlocking);
        let expect = (1.0 - r.external_probability) * r.internal_latency_us
            + r.external_probability * r.external_latency_us;
        assert!((r.mean_message_latency_us - expect).abs() < 1e-9);
        let ext = r.sojourn_icn2_us + 2.0 * r.sojourn_ecn1_us;
        assert!((r.external_latency_us - ext).abs() < 1e-9);
    }

    #[test]
    fn single_cluster_latency_is_pure_icn1() {
        let r = report(1, Architecture::NonBlocking);
        assert_eq!(r.external_probability, 0.0);
        assert!((r.mean_message_latency_us - r.internal_latency_us).abs() < 1e-12);
    }

    #[test]
    fn per_node_clusters_latency_is_pure_external() {
        let r = report(256, Architecture::NonBlocking);
        assert!((r.external_probability - 1.0).abs() < 1e-12);
        assert!((r.mean_message_latency_us - r.external_latency_us).abs() < 1e-9);
    }

    #[test]
    fn blocking_latency_exceeds_nonblocking() {
        for c in [2usize, 8, 32, 128, 256] {
            let nb = report(c, Architecture::NonBlocking);
            let bl = report(c, Architecture::Blocking);
            assert!(
                bl.mean_message_latency_us > nb.mean_message_latency_us,
                "C={c}: blocking {} <= non-blocking {}",
                bl.mean_message_latency_us,
                nb.mean_message_latency_us
            );
        }
    }

    #[test]
    fn sojourns_exceed_service_times() {
        let cfg =
            SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
        let eq = solver::solve(&cfg).unwrap();
        let r = LatencyReport::from_equilibrium(&eq);
        assert!(r.sojourn_icn1_us >= eq.icn1.service_time_us);
        assert!(r.sojourn_ecn1_us >= eq.ecn1.service_time_us);
        assert!(r.sojourn_icn2_us >= eq.icn2.service_time_us);
    }

    #[test]
    fn ms_conversion() {
        let r = report(4, Architecture::NonBlocking);
        assert!((r.mean_message_latency_ms() * 1e3 - r.mean_message_latency_us).abs() < 1e-9);
    }
}
