//! # hmcs-core
//!
//! The analytical performance model of *Performance Analysis of
//! Heterogeneous Multi-Cluster Systems* (Javadi, Akbari & Abawajy,
//! ICPPW 2005) — the paper's primary contribution — implemented as a
//! library.
//!
//! ## The model in one paragraph
//!
//! A Heterogeneous Multi-Stage Clustered Structure (HMSCS) has `C`
//! clusters of `N₀` processors. Every processor generates messages in a
//! Poisson stream of rate λ; destinations are uniform over all other
//! nodes, so a message leaves its cluster with probability
//! `P = (C−1)·N₀/(C·N₀−1)` (eq. 8). Each communication network — the
//! per-cluster ICN1 and ECN1 and the global ICN2 — is an M/M/1 service
//! centre whose mean service time comes from the interconnect model of
//! `hmcs-topology` (fat-tree, eq. 11, or blocking linear array, eq. 21).
//! The traffic equations (eqs. 1–5) give each centre's arrival rate;
//! because waiting processors stop generating, the offered rate is
//! solved from the fixed point `λ_eff = λ·(N−L)/N` (eqs. 6–7). The mean
//! message latency is `T_W = (1−P)·W_I1 + P·(W_I2 + 2·W_E1)` with
//! `W = 1/(µ−λ)` per centre (eqs. 15–16).
//!
//! ## Modules
//!
//! * [`config`] — system configuration and validation.
//! * [`scenario`] — Table 1 scenarios (Case 1 / Case 2) and Table 2
//!   constants.
//! * [`routing`] — the external-request probability (eq. 8) and the
//!   locality extension.
//! * [`rates`] — the traffic equations (eqs. 1–5).
//! * [`service`] — per-centre service times from the topology models.
//! * [`solver`] — the effective-rate fixed point (eqs. 6–7).
//! * [`kernel`] — the batched structure-of-arrays fixed-point kernel
//!   advancing whole sweeps in lockstep, bit-identical to the scalar
//!   solver.
//! * [`sensitivity`] — central finite-difference derivatives of the
//!   mean latency with respect to λ, message size and population.
//! * [`latency`] — latency composition (eqs. 9, 15–16).
//! * [`identify`] — the inverse of the paper's setup: partition a
//!   measured latency matrix into logical clusters by a latency-gap
//!   threshold and fit `(C, N₀, effective technologies)` with a
//!   non-HMCS residual report.
//! * [`model`] — the one-call facade: [`model::AnalyticalModel`].
//! * [`cluster_of_clusters`] — the heterogeneous-processor
//!   generalisation the paper lists as future work.
//! * [`qna`] — a QNA-style refinement that propagates arrival-process
//!   variability (relaxing assumption 2).
//! * [`sweep`] — parameter sweeps (the figures' x-axes).
//! * [`optimize`] — the inverse problem: design-space enumeration to a
//!   Pareto frontier of latency vs. cost under SLO/budget/saturation
//!   constraints, with binding-constraint diagnostics.
//! * [`metrics`] — process-global counters/histograms recording solver,
//!   QNA and batch-pool behaviour (the observability layer).
//! * [`json`] — the shared hand-rolled JSON writer/parser (the
//!   workspace builds offline with no serde), used by the run
//!   manifests and the `hmcs-serve` daemon.
//!
//! ## Example
//!
//! ```
//! use hmcs_core::model::AnalyticalModel;
//! use hmcs_core::scenario::Scenario;
//! use hmcs_core::config::SystemConfig;
//! use hmcs_topology::transmission::Architecture;
//!
//! // Case-1 system, 8 clusters x 32 nodes, 1 KiB messages, fat-tree.
//! let cfg = SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking)
//!     .unwrap();
//! let report = AnalyticalModel::evaluate(&cfg).unwrap();
//! assert!(report.latency.mean_message_latency_us > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cluster_of_clusters;
pub mod config;
pub mod error;
pub mod identify;
pub mod json;
pub mod kernel;
pub mod latency;
pub mod metrics;
pub mod model;
pub mod optimize;
pub mod qna;
pub mod rates;
pub mod routing;
pub mod scenario;
pub mod sensitivity;
pub mod service;
pub mod solver;
pub mod sweep;

pub use config::SystemConfig;
pub use error::ModelError;
pub use model::{AnalyticalModel, PerformanceReport};
pub use scenario::Scenario;
