//! Workspace-wide observability: lock-free counters, log-scale value
//! histograms, and a process-global registry with labelled scopes.
//!
//! The paper's contribution is *performance analysis*; this module makes
//! the reproduction's own performance analysable. Every hot path —
//! the fixed-point solver, the QNA evaluator, the batch pool, the
//! simulators' replication driver — records cheap relaxed-atomic
//! counters and histograms here, and the `reproduce` binary snapshots
//! the registry into each run's manifest (`results/manifest_<id>.json`).
//!
//! Design constraints, in order:
//!
//! 1. **Instrumentation must never change results.** Nothing in this
//!    module feeds back into any computation; the batch property tests
//!    assert bit-identity between instrumented and uninstrumented
//!    sweeps.
//! 2. **Negligible overhead.** Recording is one or two relaxed atomic
//!    RMW operations; metric handles are `&'static` (registered once,
//!    then leaked), so steady-state recording takes no locks. The
//!    `batch_sweep` bench bounds the total overhead on the figure grid
//!    at ≤ 2%.
//! 3. **Always available.** Collection is on by default (it is cheap
//!    enough to leave on); [`set_enabled`] exists so tests can compare
//!    instrumented against uninstrumented runs. The `HMCS_METRICS`
//!    environment variable and the CLIs' `--metrics` flag control
//!    *printing*, not collection.
//!
//! ```
//! use hmcs_core::metrics;
//!
//! let made = metrics::counter("doc.widgets_made");
//! made.add(3);
//! metrics::histogram("doc.widget_mass_g").record(1500);
//! let snap = metrics::global().snapshot();
//! assert!(snap.counters["doc.widgets_made"] >= 3);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Well-known metric names recorded by the workspace's own crates.
///
/// Downstream crates (`hmcs-sim`, `hmcs-bench`) define their own keys;
/// these are the ones `hmcs-core` itself records.
pub mod keys {
    /// Counter: fixed-point solves completed by the base solver.
    pub const SOLVER_SOLVES: &str = "core.solver.solves";
    /// Histogram: bisection iterations per base-model solve.
    pub const SOLVER_ITERATIONS: &str = "core.solver.iterations";
    /// Histogram: bracket width as parts-per-million of the nominal λ
    /// (`hi/λ · 1e6` — 1e6 means the bracket spans the whole of λ).
    pub const SOLVER_BRACKET_PPM: &str = "core.solver.bracket_ppm_of_lambda";
    /// Counter: solves in which the near-saturation back-off activated.
    pub const SOLVER_BACKOFF_ACTIVATIONS: &str = "core.solver.backoff_activations";
    /// Histogram: geometric back-off steps taken when it activated.
    pub const SOLVER_BACKOFF_STEPS: &str = "core.solver.backoff_steps";
    /// Counter: QNA-refined solves completed.
    pub const QNA_SOLVES: &str = "core.qna.solves";
    /// Histogram: bisection iterations per QNA solve.
    pub const QNA_ITERATIONS: &str = "core.qna.iterations";
    /// Counter: QNA solves in which the back-off activated.
    pub const QNA_BACKOFF_ACTIVATIONS: &str = "core.qna.backoff_activations";
    /// Counter: `par_map` batch invocations.
    pub const BATCH_CALLS: &str = "core.batch.par_map_calls";
    /// Counter: total items evaluated across all batches.
    pub const BATCH_ITEMS: &str = "core.batch.items";
    /// Histogram: items claimed per worker per batch (drain balance).
    pub const BATCH_WORKER_ITEMS: &str = "core.batch.worker_items";
    /// Histogram: per-worker busy time per batch (µs, inside `f`).
    pub const BATCH_WORKER_BUSY_US: &str = "core.batch.worker_busy_us";
    /// Histogram: per-worker idle time per batch (µs, waiting on the
    /// claim cursor or for siblings to finish).
    pub const BATCH_WORKER_IDLE_US: &str = "core.batch.worker_idle_us";
    /// Histogram: wall-clock time of each model evaluation (µs).
    pub const BATCH_EVAL_TIME_US: &str = "core.batch.eval_time_us";
    /// Warning key: invalid `HMCS_POOL_WORKERS` environment value.
    pub const WARN_POOL_WORKERS_ENV: &str = "core.batch.pool_workers_env";
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// True when metric recording is on (the default).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off process-wide. Collection is cheap
/// and on by default; this switch exists so tests can compare
/// instrumented runs against uninstrumented ones.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A lock-free monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` (no-op while recording is disabled).
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets in a [`ValueHistogram`]: bucket 0
/// holds exact zeros, bucket `i ≥ 1` holds `[2^(i−1), 2^i)`.
const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free histogram of non-negative integer values (durations in
/// µs, iteration counts, queue depths) with power-of-two buckets.
///
/// Exact sums, counts and maxima are kept alongside the buckets, so
/// means are exact even though the distribution is log-quantised.
#[derive(Debug)]
pub struct ValueHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for ValueHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ValueHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        ValueHistogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (no-op while recording is disabled).
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let idx = if value == 0 { 0 } else { 64 - value.leading_zeros() as usize };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a non-negative float, rounded to the nearest integer;
    /// negative, NaN and infinite values are dropped.
    pub fn record_f64(&self, value: f64) {
        if value.is_finite() && value >= 0.0 {
            self.record(value.round().min(u64::MAX as f64) as u64);
        }
    }

    /// A consistent-enough point-in-time copy (relaxed reads; exact
    /// when no writer is concurrently recording).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then(|| {
                    let (lo, hi) =
                        if i == 0 { (0, 0) } else { (1u64 << (i - 1), (1u64 << (i - 1)) * 2 - 1) };
                    BucketCount { lo, hi, count }
                })
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Thread-local accumulator for recording many values into one
/// [`ValueHistogram`] with a bounded number of atomic operations.
///
/// Recording into a shared histogram costs four atomic read-modify-
/// writes per value; a hot loop recording per item (the batched
/// kernel records one iteration count and one bracket ratio per lane)
/// pays that bus traffic hundreds of times per call. `HistogramBatch`
/// buckets values in plain integers and [`flush_into`] merges them
/// with one atomic per touched bucket plus three for the aggregates —
/// the destination ends in exactly the state the equivalent sequence
/// of [`ValueHistogram::record`] calls would produce.
///
/// [`flush_into`]: HistogramBatch::flush_into
#[derive(Debug)]
pub struct HistogramBatch {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramBatch {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        HistogramBatch { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Accumulates one value ([`ValueHistogram::record`] semantics,
    /// minus the enabled check, which [`flush_into`] applies once).
    ///
    /// [`flush_into`]: HistogramBatch::flush_into
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 { 0 } else { 64 - value.leading_zeros() as usize };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Accumulates a non-negative float with
    /// [`ValueHistogram::record_f64`]'s rounding and rejection rules.
    pub fn record_f64(&mut self, value: f64) {
        if value.is_finite() && value >= 0.0 {
            self.record(value.round().min(u64::MAX as f64) as u64);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges the accumulated values into `target` (no-op while
    /// recording is disabled, like the per-value path).
    pub fn flush_into(&self, target: &ValueHistogram) {
        if !enabled() || self.count == 0 {
            return;
        }
        for (local, shared) in self.buckets.iter().zip(&target.buckets) {
            if *local > 0 {
                shared.fetch_add(*local, Ordering::Relaxed);
            }
        }
        target.count.fetch_add(self.count, Ordering::Relaxed);
        target.sum.fetch_add(self.sum, Ordering::Relaxed);
        target.max.fetch_max(self.max, Ordering::Relaxed);
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`]: the closed value
/// range `[lo, hi]` and its observation count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Smallest value the bucket covers.
    pub lo: u64,
    /// Largest value the bucket covers.
    pub hi: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// Point-in-time copy of a [`ValueHistogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets, in ascending value order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Exact mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Buckets a batch of values directly, bypassing the atomic
    /// histogram (and therefore the global enabled flag). Used by the
    /// run-manifest writer to histogram per-point statistics it
    /// already holds.
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let (mut count, mut sum, mut max) = (0u64, 0u64, 0u64);
        for v in values {
            let idx = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
            buckets[idx] += 1;
            count += 1;
            sum += v;
            max = max.max(v);
        }
        let buckets = buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) =
                    if i == 0 { (0, 0) } else { (1u64 << (i - 1), (1u64 << (i - 1)) * 2 - 1) };
                BucketCount { lo, hi, count: c }
            })
            .collect();
        HistogramSnapshot { count, sum, max, buckets }
    }
}

/// The process-global metrics registry: named counters, histograms and
/// one-shot warnings. Obtain it with [`global`]; registration takes a
/// short lock, recording through the returned `&'static` handles is
/// lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    histograms: Mutex<BTreeMap<String, &'static ValueHistogram>>,
    warnings: Mutex<BTreeMap<String, String>>,
}

impl Registry {
    /// Returns the counter registered under `name`, creating it on
    /// first use. The handle is `'static`: cache it in hot loops.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_insert_with(|| Box::leak(Box::new(Counter::new())))
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str) -> &'static ValueHistogram {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_insert_with(|| Box::leak(Box::new(ValueHistogram::new())))
    }

    /// Records a warning once per process per `key`, printing it to
    /// stderr the first time. Returns `true` when this call was the
    /// first. Use for operator-error diagnostics (bad environment
    /// variables) that must be surfaced but must not spam.
    pub fn warn_once(&self, key: &str, message: impl Into<String>) -> bool {
        let mut map = self.warnings.lock().expect("metrics registry poisoned");
        if map.contains_key(key) {
            return false;
        }
        let message = message.into();
        eprintln!("warning [{key}]: {message}");
        map.insert(key.to_string(), message);
        true
    }

    /// The warning recorded under `key`, if any.
    pub fn warning(&self, key: &str) -> Option<String> {
        self.warnings.lock().expect("metrics registry poisoned").get(key).cloned()
    }

    /// Snapshots every registered metric and warning.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        let warnings = self.warnings.lock().expect("metrics registry poisoned").clone();
        MetricsSnapshot { counters, histograms, warnings }
    }

    /// Zeroes every registered counter and histogram and clears the
    /// warnings. Meant for tests and for per-run deltas; registered
    /// names survive (handles stay valid).
    pub fn reset(&self) {
        for c in self.counters.lock().expect("metrics registry poisoned").values() {
            c.reset();
        }
        for h in self.histograms.lock().expect("metrics registry poisoned").values() {
            h.reset();
        }
        self.warnings.lock().expect("metrics registry poisoned").clear();
    }
}

/// Point-in-time copy of the whole registry, ordered by metric name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// One-shot warnings by key.
    pub warnings: BTreeMap<String, String>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as an aligned human-readable block (what
    /// the CLIs print under `--metrics` / `HMCS_METRICS=1`).
    pub fn render(&self) -> String {
        let mut out = String::from("metrics:\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  counter {name} = {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  hist    {name}: n={} mean={:.1} max={} sum={}",
                h.count,
                h.mean(),
                h.max,
                h.sum
            );
        }
        for (key, message) in &self.warnings {
            let _ = writeln!(out, "  warn    {key}: {message}");
        }
        if self.counters.is_empty() && self.histograms.is_empty() && self.warnings.is_empty() {
            out.push_str("  (empty)\n");
        }
        out
    }
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// Shorthand for `global().counter(name)`.
pub fn counter(name: &str) -> &'static Counter {
    global().counter(name)
}

/// Shorthand for `global().histogram(name)`.
pub fn histogram(name: &str) -> &'static ValueHistogram {
    global().histogram(name)
}

/// Shorthand for `global().warn_once(key, message)`.
pub fn warn_once(key: &str, message: impl Into<String>) -> bool {
    global().warn_once(key, message)
}

/// A name prefix for a family of related metrics: `Scope::new("sim")`
/// then `scope.counter("runs")` records under `"sim.runs"`.
#[derive(Debug, Clone)]
pub struct Scope {
    prefix: String,
}

impl Scope {
    /// Creates a scope with the given dot-separated prefix.
    pub fn new(prefix: impl Into<String>) -> Self {
        Scope { prefix: prefix.into() }
    }

    /// A counter under this scope's prefix.
    pub fn counter(&self, name: &str) -> &'static Counter {
        global().counter(&format!("{}.{name}", self.prefix))
    }

    /// A histogram under this scope's prefix.
    pub fn histogram(&self, name: &str) -> &'static ValueHistogram {
        global().histogram(&format!("{}.{name}", self.prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = counter("test.metrics.counter_a");
        let before = c.get();
        c.add(5);
        c.incr();
        assert_eq!(c.get(), before + 6);
        let snap = global().snapshot();
        assert_eq!(snap.counters["test.metrics.counter_a"], c.get());
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = ValueHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 2057);
        assert_eq!(snap.max, 1024);
        // 0 | [1,1] | [2,3]x2 | [4,7] | [512,1023] | [1024,2047]
        let find = |lo: u64| snap.buckets.iter().find(|b| b.lo == lo).map(|b| (b.hi, b.count));
        assert_eq!(find(0), Some((0, 1)));
        assert_eq!(find(1), Some((1, 1)));
        assert_eq!(find(2), Some((3, 2)));
        assert_eq!(find(4), Some((7, 1)));
        assert_eq!(find(512), Some((1023, 1)));
        assert_eq!(find(1024), Some((2047, 1)));
        assert!((snap.mean() - 2057.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn from_values_matches_atomic_recording() {
        let h = ValueHistogram::new();
        let values = [0u64, 1, 5, 9, 1024, 77, 77];
        for &v in &values {
            h.record(v);
        }
        assert_eq!(HistogramSnapshot::from_values(values), h.snapshot());
    }

    #[test]
    fn record_f64_drops_garbage() {
        let h = ValueHistogram::new();
        h.record_f64(2.4);
        h.record_f64(-1.0);
        h.record_f64(f64::NAN);
        h.record_f64(f64::INFINITY);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 2);
    }

    #[test]
    fn scope_prefixes_names() {
        let scope = Scope::new("test.metrics.scoped");
        scope.counter("hits").add(2);
        let snap = global().snapshot();
        assert!(snap.counters["test.metrics.scoped.hits"] >= 2);
    }

    #[test]
    fn warn_once_fires_exactly_once() {
        assert!(warn_once("test.metrics.warn", "first"));
        assert!(!warn_once("test.metrics.warn", "second"));
        assert_eq!(global().warning("test.metrics.warn").as_deref(), Some("first"));
    }

    #[test]
    fn render_is_human_readable() {
        counter("test.metrics.render").add(1);
        histogram("test.metrics.render_hist").record(7);
        let s = global().snapshot().render();
        assert!(s.contains("counter test.metrics.render ="));
        assert!(s.contains("hist    test.metrics.render_hist:"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let snap = MetricsSnapshot::default();
        assert!(snap.render().contains("(empty)"));
    }
}
