//! The one-call analytical-model facade.
//!
//! [`AnalyticalModel::evaluate`] runs the whole pipeline: service times
//! from the topology models (§5), traffic equations (eqs. 1–5), the
//! effective-rate fixed point (eqs. 6–7), and the latency composition
//! (eqs. 9, 15–16), returning a single [`PerformanceReport`].

use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::latency::LatencyReport;
use crate::service::ServiceTimes;
use crate::solver::{self, Equilibrium};

/// The complete output of one analytical-model evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerformanceReport {
    /// Per-tier mean service times (µs).
    pub service_times: ServiceTimes,
    /// The converged flow-blocking equilibrium.
    pub equilibrium: Equilibrium,
    /// The mean-latency report (the paper's primary metric).
    pub latency: LatencyReport,
    /// System throughput: delivered messages per µs, `N·λ_eff`.
    pub throughput_per_us: f64,
}

/// The analytical performance model (stateless facade).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticalModel;

impl AnalyticalModel {
    /// Evaluates the model for `config`.
    pub fn evaluate(config: &SystemConfig) -> Result<PerformanceReport, ModelError> {
        config.validate()?;
        let service_times = ServiceTimes::compute(config)?;
        Self::evaluate_with_service(config, &service_times)
    }

    /// Evaluates the model reusing precomputed (λ-independent) service
    /// times. λ-sweeps call this so the topology pipeline runs once per
    /// system shape instead of once per sweep point.
    pub fn evaluate_with_service(
        config: &SystemConfig,
        service_times: &ServiceTimes,
    ) -> Result<PerformanceReport, ModelError> {
        Self::evaluate_with_service_seeded(config, service_times, None)
    }

    /// Like [`AnalyticalModel::evaluate_with_service`], warm-starting
    /// the effective-rate bisection from `seed` (typically the λ_eff of
    /// a neighbouring sweep point).
    pub fn evaluate_with_service_seeded(
        config: &SystemConfig,
        service_times: &ServiceTimes,
        seed: Option<f64>,
    ) -> Result<PerformanceReport, ModelError> {
        let equilibrium = solver::solve_with_service_seeded(config, service_times, seed)?;
        Ok(Self::report_from_equilibrium(config, service_times, equilibrium))
    }

    /// Assembles the report from a converged equilibrium. Shared with
    /// the batched kernel ([`crate::kernel`]) so the two evaluation
    /// paths build bit-identical reports.
    pub(crate) fn report_from_equilibrium(
        config: &SystemConfig,
        service_times: &ServiceTimes,
        equilibrium: Equilibrium,
    ) -> PerformanceReport {
        let latency = LatencyReport::from_equilibrium(&equilibrium);
        PerformanceReport {
            service_times: *service_times,
            equilibrium,
            latency,
            throughput_per_us: config.total_nodes() as f64 * equilibrium.lambda_eff,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceTimeModel;
    use crate::scenario::{Scenario, PAPER_CLUSTER_COUNTS};
    use hmcs_topology::transmission::Architecture;

    fn eval(
        scenario: Scenario,
        clusters: usize,
        arch: Architecture,
        bytes: u64,
    ) -> PerformanceReport {
        let cfg =
            SystemConfig::paper_preset(scenario, clusters, arch).unwrap().with_message_bytes(bytes);
        AnalyticalModel::evaluate(&cfg).unwrap()
    }

    #[test]
    fn evaluates_the_full_paper_grid() {
        for scenario in [Scenario::Case1, Scenario::Case2] {
            for arch in [Architecture::NonBlocking, Architecture::Blocking] {
                for &c in &PAPER_CLUSTER_COUNTS {
                    for m in [512u64, 1024] {
                        let r = eval(scenario, c, arch, m);
                        assert!(
                            r.latency.mean_message_latency_us.is_finite()
                                && r.latency.mean_message_latency_us > 0.0,
                            "{scenario:?} {arch:?} C={c} M={m}"
                        );
                        assert!(r.throughput_per_us > 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn larger_messages_cost_more() {
        for arch in [Architecture::NonBlocking, Architecture::Blocking] {
            let small = eval(Scenario::Case1, 16, arch, 512);
            let large = eval(Scenario::Case1, 16, arch, 1024);
            assert!(large.latency.mean_message_latency_us > small.latency.mean_message_latency_us);
        }
    }

    #[test]
    fn blocking_figures_sit_far_above_nonblocking() {
        // Figures 6-7 vs 4-5: the blocking curves are an order of
        // magnitude above the non-blocking ones at large C.
        let nb = eval(Scenario::Case1, 64, Architecture::NonBlocking, 1024);
        let bl = eval(Scenario::Case1, 64, Architecture::Blocking, 1024);
        let ratio = bl.latency.mean_message_latency_us / nb.latency.mean_message_latency_us;
        assert!(ratio > 1.4, "paper reports 1.4x-3.1x or more; got {ratio}");
    }

    #[test]
    fn throughput_equals_population_times_effective_rate() {
        let cfg =
            SystemConfig::paper_preset(Scenario::Case2, 8, Architecture::NonBlocking).unwrap();
        let r = AnalyticalModel::evaluate(&cfg).unwrap();
        assert!((r.throughput_per_us - 256.0 * r.equilibrium.lambda_eff).abs() < 1e-15);
    }

    #[test]
    fn service_model_ordering_det_le_exp_le_hyper() {
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
        let w = |m: ServiceTimeModel| {
            AnalyticalModel::evaluate(&base.with_service_model(m))
                .unwrap()
                .latency
                .mean_message_latency_us
        };
        let det = w(ServiceTimeModel::Deterministic);
        let erl = w(ServiceTimeModel::Erlang(4));
        let exp = w(ServiceTimeModel::Exponential);
        let hyp = w(ServiceTimeModel::HyperExponential(4.0));
        assert!(det < erl && erl < exp && exp < hyp);
    }

    #[test]
    fn latency_grows_with_lambda() {
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 32, Architecture::NonBlocking).unwrap();
        let mut prev = 0.0;
        for lam in [1e-6, 1e-5, 1e-4, 2.5e-4] {
            let r = AnalyticalModel::evaluate(&base.with_lambda(lam)).unwrap();
            assert!(
                r.latency.mean_message_latency_us >= prev,
                "latency must grow with offered load"
            );
            prev = r.latency.mean_message_latency_us;
        }
    }

    #[test]
    fn zero_load_limit_equals_raw_transmission_mix() {
        // As lambda -> 0 the sojourns collapse to the service times.
        let cfg = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking)
            .unwrap()
            .with_lambda(1e-12);
        let r = AnalyticalModel::evaluate(&cfg).unwrap();
        let p = r.latency.external_probability;
        let raw = (1.0 - p) * r.service_times.icn1_us
            + p * (r.service_times.icn2_us + 2.0 * r.service_times.ecn1_us);
        let diff = (r.latency.mean_message_latency_us - raw).abs() / raw;
        assert!(diff < 1e-6, "zero-load latency should equal raw mix, diff {diff}");
    }
}
