//! Capacity-planning design-space optimizer (the inverse problem).
//!
//! The model answers "given a design, what is the latency?"; this
//! module answers the production question "given an SLO and a budget,
//! which design?". It enumerates the discrete design space — cluster
//! count `C`, intra- and inter-cluster technology from the
//! [`NetworkTechnology::PRESETS`] catalogue, switch port count `Pr`,
//! and blocking vs. non-blocking architecture — under one caller-fixed
//! [`Workload`], evaluates every surviving point through
//! the batched kernel ([`crate::kernel`]), and reduces the result to a Pareto frontier of
//! mean latency vs. a pluggable [`CostModel`].
//!
//! The pipeline keeps *binding-constraint diagnostics*: every point
//! eliminated before the frontier is attributed to the constraint that
//! killed it ([`Diagnostics`]), so a caller can tell "the budget is
//! binding" apart from "the workload saturates everything cheap".
//!
//! Determinism: enumeration order is fixed, the sort used for the
//! Pareto reduction is stable, and all evaluations run through the
//! batch engine (bit-identical sequential vs. parallel), so the
//! frontier is byte-for-byte reproducible — `reproduce optimize`, the
//! served `POST /v1/optimize` endpoint and the examples all return
//! identical frontiers for identical specs.

use crate::batch::BatchOptions;
use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::json::json_num;
use crate::model::PerformanceReport;
use crate::scenario::{Scenario, PAPER_LAMBDA_PER_US, PAPER_TOTAL_NODES};
use crate::service::ServiceTimes;
use crate::solver;
use hmcs_topology::fat_tree::FatTree;
use hmcs_topology::linear_array::LinearArray;
use hmcs_topology::switch::SwitchFabric;
use hmcs_topology::technology::NetworkTechnology;
use hmcs_topology::transmission::Architecture;
use std::fmt;

/// Switch traversal latency α_sw (µs) used for every enumerated
/// fabric; the paper's Table-2 constant.
pub const SWITCH_LATENCY_US: f64 = 10.0;

/// Errors from design-space optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizeError {
    /// The cost model has no price for this technology. Unknown
    /// technologies are a hard error by design: a silent fallback
    /// price would quietly misprice every design using a new preset.
    UnknownTechnology(String),
    /// The design space or workload is structurally unusable.
    InvalidSpec(&'static str),
    /// An underlying model error.
    Model(ModelError),
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::UnknownTechnology(name) => {
                write!(f, "no cost-catalogue entry for technology {name:?}")
            }
            OptimizeError::InvalidSpec(reason) => write!(f, "invalid optimize spec: {reason}"),
            OptimizeError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for OptimizeError {}

impl From<ModelError> for OptimizeError {
    fn from(e: ModelError) -> Self {
        OptimizeError::Model(e)
    }
}

/// The workload every candidate design must carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Table-1 scenario supplying defaults outside the searched axes
    /// (accounting, hop and service models). The searched technology
    /// axes override the scenario's icn1/ecn1/icn2 assignment, so two
    /// workloads differing only in scenario produce identical
    /// frontiers; the field exists so partial spaces (e.g. a
    /// single-technology sweep) stay expressible.
    pub scenario: Scenario,
    /// Total processor count `N = C·N₀`, fixed across the space.
    pub total_nodes: usize,
    /// Fixed message length in bytes.
    pub message_bytes: u64,
    /// Per-processor generation rate λ in messages/µs.
    pub lambda_per_us: f64,
}

impl Workload {
    /// The paper's evaluation platform: 256 nodes, 1 KiB messages,
    /// λ = 0.25 msg/ms.
    pub fn paper_default() -> Self {
        Workload {
            scenario: Scenario::Case1,
            total_nodes: PAPER_TOTAL_NODES,
            message_bytes: 1024,
            lambda_per_us: PAPER_LAMBDA_PER_US,
        }
    }

    fn validate(&self) -> Result<(), OptimizeError> {
        if self.total_nodes < 4 {
            return Err(OptimizeError::InvalidSpec(
                "total_nodes must be at least 4 (two clusters of two)",
            ));
        }
        if self.message_bytes == 0 {
            return Err(OptimizeError::InvalidSpec("message_bytes must be positive"));
        }
        if !self.lambda_per_us.is_finite() || self.lambda_per_us <= 0.0 {
            return Err(OptimizeError::InvalidSpec("lambda_per_us must be positive and finite"));
        }
        Ok(())
    }
}

/// Feasibility constraints; each one eliminates points and is
/// attributed in [`Diagnostics`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Constraints {
    /// Mean-latency SLO in µs; designs above it are infeasible.
    pub slo_latency_us: Option<f64>,
    /// Cost ceiling in USD; designs above it are infeasible.
    pub budget_usd: Option<f64>,
    /// Require λ strictly below each design's `saturation_lambda`.
    /// The finite-population model self-throttles, so saturated
    /// designs still evaluate (the paper's own operating point is
    /// above the open-queue boundary); this flag excludes designs
    /// that cannot keep up with the *offered* load.
    pub require_unsaturated: bool,
}

/// The discrete axes of the search. The full space is the cross
/// product of all five.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// Candidate cluster counts `C`. Entries that do not divide the
    /// workload's `total_nodes` are counted as invalid, not errors, so
    /// one space can serve differently-sized workloads.
    pub cluster_counts: Vec<usize>,
    /// Candidate ICN1 technologies.
    pub intra: Vec<NetworkTechnology>,
    /// Candidate ECN1/ICN2 technologies (Table 1 ties those tiers).
    pub inter: Vec<NetworkTechnology>,
    /// Candidate switch port counts `Pr` (must be even, ≥ 2).
    pub switch_ports: Vec<u32>,
    /// Candidate architectures.
    pub architectures: Vec<Architecture>,
}

impl DesignSpace {
    /// The full built-in space for a `total_nodes`-processor system:
    /// every cluster count in `[2, total_nodes/2]` dividing
    /// `total_nodes`, all four technology presets on both axes, five
    /// port counts, both architectures. For 256 nodes: 7·4·4·5·2 =
    /// 1120 points.
    pub fn paper_default(total_nodes: usize) -> Self {
        let cluster_counts =
            (2..=total_nodes / 2).filter(|c| total_nodes.is_multiple_of(*c)).collect::<Vec<_>>();
        DesignSpace {
            cluster_counts,
            intra: NetworkTechnology::PRESETS.to_vec(),
            inter: NetworkTechnology::PRESETS.to_vec(),
            switch_ports: vec![8, 16, 24, 32, 48],
            architectures: vec![Architecture::NonBlocking, Architecture::Blocking],
        }
    }

    /// A much larger space for stress-testing the optimizer: the same
    /// cluster counts and technology presets as
    /// [`DesignSpace::paper_default`], but a dense port axis — every
    /// even port count in `[4, 192]` — so the cross product grows to
    /// 7·4·4·95·2 = 21,280 points for 256 nodes. Intended for
    /// [`optimize_pruned`], which skips points whose certified latency
    /// lower bound cannot reach the frontier.
    pub fn expanded(total_nodes: usize) -> Self {
        let mut space = Self::paper_default(total_nodes);
        space.switch_ports = (4..=192).step_by(2).collect();
        space
    }

    /// Number of points in the cross product.
    pub fn len(&self) -> usize {
        self.cluster_counts.len()
            * self.intra.len()
            * self.inter.len()
            * self.switch_ports.len()
            * self.architectures.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn validate(&self) -> Result<(), OptimizeError> {
        if self.is_empty() {
            return Err(OptimizeError::InvalidSpec("every design-space axis must be non-empty"));
        }
        for &p in &self.switch_ports {
            if SwitchFabric::new(p, SWITCH_LATENCY_US).is_err() {
                return Err(OptimizeError::InvalidSpec(
                    "switch_ports entries must be even and at least 2",
                ));
            }
        }
        if self.cluster_counts.contains(&0) {
            return Err(OptimizeError::InvalidSpec("cluster_counts entries must be positive"));
        }
        Ok(())
    }
}

/// One full optimization request.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeSpec {
    /// The fixed workload.
    pub workload: Workload,
    /// Feasibility constraints.
    pub constraints: Constraints,
    /// The search space.
    pub space: DesignSpace,
}

impl OptimizeSpec {
    /// The paper workload over the full built-in space with the given
    /// constraints.
    pub fn paper_default(constraints: Constraints) -> Self {
        let workload = Workload::paper_default();
        let space = DesignSpace::paper_default(workload.total_nodes);
        OptimizeSpec { workload, constraints, space }
    }
}

/// One candidate design: its model configuration plus the physical
/// switch inventory the cost model prices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Design {
    /// The model configuration for this point.
    pub config: SystemConfig,
    /// Switches across all `C` intra-cluster (ICN1) fabrics.
    pub icn1_switches: usize,
    /// Switches across all `C` inter-access (ECN1) fabrics.
    pub ecn1_switches: usize,
    /// Switches in the single global (ICN2) fabric over `C` clusters.
    pub icn2_switches: usize,
}

impl Design {
    /// Builds the design for one point of the space: the config
    /// carries the workload plus the point's technology/switch/
    /// architecture choices, the switch counts come from the matching
    /// fabric model (fat-tree for non-blocking, linear array for
    /// blocking).
    pub fn build(
        workload: &Workload,
        clusters: usize,
        intra: NetworkTechnology,
        inter: NetworkTechnology,
        ports: u32,
        architecture: Architecture,
    ) -> Result<Self, ModelError> {
        if clusters == 0 || !workload.total_nodes.is_multiple_of(clusters) {
            return Err(ModelError::InvalidConfig {
                name: "clusters",
                reason: "must divide the workload's total_nodes",
            });
        }
        let nodes_per_cluster = workload.total_nodes / clusters;
        let switch = SwitchFabric::new(ports, SWITCH_LATENCY_US).map_err(|_| {
            ModelError::InvalidConfig { name: "switch_ports", reason: "must be even and >= 2" }
        })?;
        let mut config = SystemConfig::new(
            clusters,
            nodes_per_cluster,
            workload.message_bytes,
            workload.lambda_per_us,
            workload.scenario,
            architecture,
        )?;
        config.icn1 = intra;
        config.ecn1 = inter;
        config.icn2 = inter;
        config = config.with_switch(switch);
        let per_cluster = fabric_switch_count(nodes_per_cluster, switch, architecture)?;
        let global = fabric_switch_count(clusters, switch, architecture)?;
        Ok(Design {
            config,
            icn1_switches: clusters * per_cluster,
            ecn1_switches: clusters * per_cluster,
            icn2_switches: global,
        })
    }

    /// Total physical switches across all tiers.
    pub fn total_switches(&self) -> usize {
        self.icn1_switches + self.ecn1_switches + self.icn2_switches
    }

    /// Stable human-readable identity for CSV keys and logs, e.g.
    /// `C8x32/GigabitEthernet+FastEthernet/Pr24/nonblocking`.
    pub fn key(&self) -> String {
        format!(
            "C{}x{}/{}+{}/Pr{}/{}",
            self.config.clusters,
            self.config.nodes_per_cluster,
            compact_name(&self.config.icn1),
            compact_name(&self.config.ecn1),
            self.config.switch.ports(),
            arch_code(self.config.architecture),
        )
    }
}

fn compact_name(tech: &NetworkTechnology) -> String {
    tech.name.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Short architecture code matching the serve wire names.
pub fn arch_code(architecture: Architecture) -> &'static str {
    match architecture {
        Architecture::NonBlocking => "nonblocking",
        Architecture::Blocking => "blocking",
    }
}

fn fabric_switch_count(
    nodes: usize,
    switch: SwitchFabric,
    architecture: Architecture,
) -> Result<usize, ModelError> {
    let count = match architecture {
        Architecture::NonBlocking => FatTree::new(nodes, switch)
            .map_err(|_| ModelError::InvalidConfig {
                name: "fat_tree",
                reason: "cannot build a fat-tree for this node/port combination",
            })?
            .switch_count(),
        Architecture::Blocking => LinearArray::new(nodes, switch)
            .map_err(|_| ModelError::InvalidConfig {
                name: "linear_array",
                reason: "cannot build a linear array for this node/port combination",
            })?
            .switch_count(),
    };
    Ok(count)
}

/// Prices one [`Design`] in USD. Implementations must be total over
/// the technologies they are given or return
/// [`OptimizeError::UnknownTechnology`] — never a fallback price.
pub trait CostModel {
    /// The acquisition cost of `design` in USD.
    fn cost_usd(&self, design: &Design) -> Result<f64, OptimizeError>;
}

/// Per-port/per-NIC unit prices for one technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitPrices {
    /// Host adapter price per node, USD.
    pub nic_usd: f64,
    /// Switch price per port, USD.
    pub port_usd: f64,
}

/// The built-in 2005 street-price catalogue. Exhaustive over
/// [`NetworkTechnology::PRESETS`] (unit-tested); any other technology
/// is a hard [`OptimizeError::UnknownTechnology`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CatalogCostModel;

impl CatalogCostModel {
    /// Unit prices for `tech`, or an error for unknown technologies.
    pub fn unit_prices(tech: &NetworkTechnology) -> Result<UnitPrices, OptimizeError> {
        match tech.name {
            "Fast Ethernet" => Ok(UnitPrices { nic_usd: 15.0, port_usd: 8.0 }),
            "Gigabit Ethernet" => Ok(UnitPrices { nic_usd: 60.0, port_usd: 25.0 }),
            "Myrinet" => Ok(UnitPrices { nic_usd: 500.0, port_usd: 220.0 }),
            "InfiniBand 4x" => Ok(UnitPrices { nic_usd: 700.0, port_usd: 300.0 }),
            other => Err(OptimizeError::UnknownTechnology(other.to_string())),
        }
    }
}

impl CostModel for CatalogCostModel {
    /// Every node carries one NIC per attached tier (ICN1 + ECN1);
    /// switches are priced per port at their tier's technology.
    fn cost_usd(&self, design: &Design) -> Result<f64, OptimizeError> {
        let intra = Self::unit_prices(&design.config.icn1)?;
        let inter = Self::unit_prices(&design.config.ecn1)?;
        // ICN2 shares the inter-tier technology by construction; price
        // it explicitly so a future per-tier axis stays correct.
        let global = Self::unit_prices(&design.config.icn2)?;
        let ports = design.config.switch.ports() as f64;
        let nodes = design.config.total_nodes() as f64;
        Ok(nodes * (intra.nic_usd + inter.nic_usd)
            + ports
                * (design.icn1_switches as f64 * intra.port_usd
                    + design.ecn1_switches as f64 * inter.port_usd
                    + design.icn2_switches as f64 * global.port_usd))
    }
}

/// One fully-evaluated feasible design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluatedDesign {
    /// The design itself.
    pub design: Design,
    /// Cost under the active cost model, USD.
    pub cost_usd: f64,
    /// Mean message latency, µs.
    pub latency_us: f64,
    /// Delivered system throughput, messages/µs.
    pub throughput_per_us: f64,
    /// λ_eff/λ at equilibrium (1.0 = nothing throttled).
    pub retained_fraction: f64,
    /// Utilization of the most loaded service centre.
    pub bottleneck_utilization: f64,
    /// The design's closed-form saturation rate (msg/µs/processor).
    pub saturation_lambda: f64,
}

/// Where the eliminated points went. `invalid` and `failed` are
/// structural (unbuildable point, solver failure); the remaining
/// counters attribute each elimination to the constraint that caused
/// it. A pre-filtered point violating several constraints is counted
/// under each, so `saturated + over_budget` may exceed the number of
/// pruned points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Diagnostics {
    /// Points that could not be built (non-divisor cluster count,
    /// unbuildable fabric).
    pub invalid: usize,
    /// Points pruned by `require_unsaturated` (λ ≥ saturation).
    pub saturated: usize,
    /// Points pruned by the budget ceiling.
    pub over_budget: usize,
    /// Evaluated points whose model evaluation failed.
    pub failed: usize,
    /// Evaluated points above the latency SLO.
    pub above_slo: usize,
    /// Feasible points dominated by a cheaper-and-faster (or equal)
    /// design.
    pub dominated: usize,
    /// Points skipped by [`optimize_pruned`] on a certified
    /// latency lower bound (provably above the SLO or provably
    /// dominated by an already-evaluated cheaper feasible point).
    /// Always zero for the exhaustive [`optimize`] path. In pruned
    /// runs `saturated + evaluated + failed + pruned ==
    /// space_size - invalid` under `require_unsaturated`.
    pub pruned: usize,
}

/// The result of one optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeOutcome {
    /// Size of the full cross-product space.
    pub space_size: usize,
    /// Points whose model evaluation succeeded.
    pub evaluated: usize,
    /// Evaluated points meeting every constraint.
    pub feasible: usize,
    /// The Pareto frontier, sorted by ascending cost with strictly
    /// decreasing latency. `frontier.len() + diagnostics.dominated ==
    /// feasible`.
    pub frontier: Vec<EvaluatedDesign>,
    /// Binding-constraint attribution for everything not on the
    /// frontier.
    pub diagnostics: Diagnostics,
}

impl OptimizeOutcome {
    /// The cheapest design meeting every constraint (the frontier is
    /// cost-sorted, so its first point).
    pub fn cheapest_feasible(&self) -> Option<&EvaluatedDesign> {
        self.frontier.first()
    }
}

/// Runs the optimizer with the built-in [`CatalogCostModel`].
pub fn optimize(
    spec: &OptimizeSpec,
    options: BatchOptions,
) -> Result<OptimizeOutcome, OptimizeError> {
    optimize_with(spec, &CatalogCostModel, options)
}

/// One pre-filter survivor, in enumeration order.
struct Candidate {
    design: Design,
    cost_usd: f64,
    saturation_lambda: f64,
    /// Zero-load mean latency `(1−p)·S_I1 + p·(S_I2 + 2·S_E1)`: every
    /// M/G/1 sojourn is at least its service time, so this is a
    /// provable lower bound on the latency any evaluation can report.
    zero_load_us: f64,
    /// Ordinal of the candidate's port family — designs sharing every
    /// axis except the switch port count — computed from the
    /// enumeration loop indices, so grouping by family is an array
    /// index, not a hash.
    family: usize,
}

/// Enumerate + pre-filter. Candidate order is the deterministic
/// cross-product order; everything downstream preserves it.
fn enumerate_candidates(
    spec: &OptimizeSpec,
    cost_model: &dyn CostModel,
    diagnostics: &mut Diagnostics,
) -> Result<Vec<Candidate>, OptimizeError> {
    let mut candidates: Vec<Candidate> = Vec::new();
    let (intra_n, inter_n, arch_n) =
        (spec.space.intra.len(), spec.space.inter.len(), spec.space.architectures.len());
    for (ci, &clusters) in spec.space.cluster_counts.iter().enumerate() {
        for (ii, &intra) in spec.space.intra.iter().enumerate() {
            for (ji, &inter) in spec.space.inter.iter().enumerate() {
                for &ports in &spec.space.switch_ports {
                    for (ai, &architecture) in spec.space.architectures.iter().enumerate() {
                        let family = ((ci * intra_n + ii) * inter_n + ji) * arch_n + ai;
                        let design = match Design::build(
                            &spec.workload,
                            clusters,
                            intra,
                            inter,
                            ports,
                            architecture,
                        ) {
                            Ok(d) => d,
                            Err(_) => {
                                diagnostics.invalid += 1;
                                continue;
                            }
                        };
                        // Unknown technology is a hard error, not a
                        // skipped point (the satellite bugfix).
                        let cost_usd = cost_model.cost_usd(&design)?;
                        let service = match ServiceTimes::compute(&design.config) {
                            Ok(s) => s,
                            Err(_) => {
                                diagnostics.invalid += 1;
                                continue;
                            }
                        };
                        let saturation_lambda = solver::saturation_lambda(&design.config, &service);
                        let p = crate::routing::external_probability(
                            design.config.clusters,
                            design.config.nodes_per_cluster,
                        );
                        let zero_load_us = (1.0 - p) * service.icn1_us
                            + p * (service.icn2_us + 2.0 * service.ecn1_us);
                        let mut keep = true;
                        if let Some(budget) = spec.constraints.budget_usd {
                            if cost_usd > budget {
                                diagnostics.over_budget += 1;
                                keep = false;
                            }
                        }
                        if spec.constraints.require_unsaturated
                            && spec.workload.lambda_per_us >= saturation_lambda
                        {
                            diagnostics.saturated += 1;
                            keep = false;
                        }
                        if keep {
                            candidates.push(Candidate {
                                design,
                                cost_usd,
                                saturation_lambda,
                                zero_load_us,
                                family,
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(candidates)
}

/// Pareto staircase: stable sort by (cost, latency) — ties keep
/// enumeration order — then keep strictly improving latency.
fn pareto_reduce(
    mut feasible_points: Vec<EvaluatedDesign>,
    diagnostics: &mut Diagnostics,
) -> Vec<EvaluatedDesign> {
    feasible_points.sort_by(|a, b| {
        a.cost_usd.total_cmp(&b.cost_usd).then(a.latency_us.total_cmp(&b.latency_us))
    });
    let mut frontier: Vec<EvaluatedDesign> = Vec::new();
    let mut best_latency = f64::INFINITY;
    for point in feasible_points {
        if point.latency_us < best_latency {
            best_latency = point.latency_us;
            frontier.push(point);
        } else {
            diagnostics.dominated += 1;
        }
    }
    frontier
}

/// Builds an [`EvaluatedDesign`] from a candidate and its solved
/// report, applies the SLO filter, and files the point under the right
/// counter. Shared verbatim by the exhaustive and pruned paths so
/// their feasible sets (and hence frontiers) are built from identical
/// bits.
fn absorb_result(
    spec: &OptimizeSpec,
    candidate: &Candidate,
    enum_idx: usize,
    result: Result<PerformanceReport, ModelError>,
    diagnostics: &mut Diagnostics,
    evaluated: &mut usize,
    feasible_points: &mut Vec<(usize, EvaluatedDesign)>,
) {
    let report = match result {
        Ok(r) => r,
        Err(_) => {
            diagnostics.failed += 1;
            return;
        }
    };
    *evaluated += 1;
    let latency_us = report.latency.mean_message_latency_us;
    // NaN latencies must count as infeasible, hence is_none_or
    // rather than a bare `latency > slo` comparison.
    let meets_slo = spec.constraints.slo_latency_us.is_none_or(|slo| latency_us <= slo);
    if !meets_slo {
        diagnostics.above_slo += 1;
        return;
    }
    feasible_points.push((
        enum_idx,
        EvaluatedDesign {
            design: candidate.design,
            cost_usd: candidate.cost_usd,
            latency_us,
            throughput_per_us: report.throughput_per_us,
            retained_fraction: report.equilibrium.retained_fraction,
            bottleneck_utilization: report.equilibrium.bottleneck_utilization(),
            saturation_lambda: candidate.saturation_lambda,
        },
    ));
}

/// Runs the optimizer with a caller-supplied cost model: enumerate →
/// pre-filter (budget, saturation) → batch-evaluate → SLO filter →
/// Pareto reduction.
pub fn optimize_with(
    spec: &OptimizeSpec,
    cost_model: &dyn CostModel,
    options: BatchOptions,
) -> Result<OptimizeOutcome, OptimizeError> {
    spec.workload.validate()?;
    spec.space.validate()?;
    let mut diagnostics = Diagnostics::default();
    let candidates = enumerate_candidates(spec, cost_model, &mut diagnostics)?;

    // Evaluate every surviving point through the batched kernel
    // (bit-identical to the scalar per-point path).
    let configs: Vec<SystemConfig> = candidates.iter().map(|c| c.design.config).collect();
    let results = crate::kernel::evaluate_batch(&configs, options.resolved_workers());

    let mut feasible_points: Vec<(usize, EvaluatedDesign)> = Vec::new();
    let mut evaluated = 0usize;
    for (i, (candidate, result)) in candidates.iter().zip(results).enumerate() {
        absorb_result(
            spec,
            candidate,
            i,
            result.map(|(report, _stats)| report),
            &mut diagnostics,
            &mut evaluated,
            &mut feasible_points,
        );
    }
    let feasible = feasible_points.len();
    let frontier =
        pareto_reduce(feasible_points.into_iter().map(|(_, p)| p).collect(), &mut diagnostics);

    Ok(OptimizeOutcome { space_size: spec.space.len(), evaluated, feasible, frontier, diagnostics })
}

/// Runs the pruned optimizer with the built-in [`CatalogCostModel`].
pub fn optimize_pruned(
    spec: &OptimizeSpec,
    options: BatchOptions,
) -> Result<OptimizeOutcome, OptimizeError> {
    optimize_pruned_with(spec, &CatalogCostModel, options)
}

/// Relative safety margin applied to certified latency lower bounds
/// before they are compared against a prune threshold. The zero-load
/// bound is assembled from [`ServiceTimes`] while the solver assembles
/// sojourns from distribution means that can differ by a few ulp
/// (Erlang moment round-trip), so the margin absorbs that slack while
/// staying far below any physically meaningful latency difference.
const PRUNE_MARGIN: f64 = 1e-9;

/// Sliding dominance staircase over the feasible points evaluated so
/// far: `(cost, latency)` pairs with non-decreasing cost and strictly
/// decreasing latency. `best_latency_cheaper(c)` answers "what is the
/// best latency achieved by any evaluated feasible point strictly
/// cheaper than `c`?" — the threshold below which a certified latency
/// lower bound proves a point can never reach the frontier.
#[derive(Default)]
struct DominanceMap {
    points: Vec<(f64, f64)>,
}

impl DominanceMap {
    fn best_latency_cheaper(&self, cost: f64) -> f64 {
        let k = self.points.partition_point(|e| e.0 < cost);
        if k == 0 {
            f64::INFINITY
        } else {
            self.points[k - 1].1
        }
    }

    fn insert(&mut self, cost: f64, latency: f64) {
        if !cost.is_finite() || !latency.is_finite() {
            return;
        }
        let k = self.points.partition_point(|e| e.0 < cost);
        // A cheaper (or equal-cost) point with no worse latency already
        // answers every query this one could.
        if k > 0 && self.points[k - 1].1 <= latency {
            return;
        }
        if k < self.points.len() && self.points[k].0 == cost && self.points[k].1 <= latency {
            return;
        }
        let mut end = k;
        while end < self.points.len() && self.points[end].1 >= latency {
            end += 1;
        }
        self.points.splice(k..end, [(cost, latency)]);
    }
}

/// Runs the optimizer with gradient-guided pruning: identical
/// enumeration and pre-filters to [`optimize_with`], but instead of
/// evaluating every survivor it
///
/// 1. solves a coarse port-grid probe (lowest / median / highest port
///    count) per design family through one kernel batch,
/// 2. orders the remaining candidates by the family's probed latency,
///    extrapolated down the port axis by the probed d-latency/d-ports
///    gradient and tie-broken by saturation headroom and cost, and
/// 3. walks them in fixed-size waves through
///    [`crate::kernel::evaluate_batch_bounded`], handing each lane the
///    SLO and the best latency among *already evaluated* feasible
///    points that are strictly cheaper.
///
/// A lane is skipped only on a *certified* latency lower bound — the
/// zero-load service latency before any evaluation, or the in-kernel
/// bracket bound once bisection has provably separated from
/// saturation — so every skipped point provably could not have joined
/// the frontier. Probe/wave ordering is pure guidance: it affects how
/// many points get pruned (`diagnostics.pruned`), never the result.
///
/// The returned frontier (and therefore [`OptimizeOutcome::
/// cheapest_feasible`]) is bit-identical to the exhaustive
/// [`optimize_with`] frontier: surviving lanes run the exact scalar
/// FP schedule, the feasible set is rebuilt in enumeration order, and
/// dominated points never shape the Pareto staircase. `evaluated`,
/// `above_slo`, and `dominated` count only the points actually
/// evaluated, so they are smaller than their exhaustive counterparts;
/// the difference is `diagnostics.pruned`.
pub fn optimize_pruned_with(
    spec: &OptimizeSpec,
    cost_model: &dyn CostModel,
    options: BatchOptions,
) -> Result<OptimizeOutcome, OptimizeError> {
    spec.workload.validate()?;
    spec.space.validate()?;
    let mut diagnostics = Diagnostics::default();
    let candidates = enumerate_candidates(spec, cost_model, &mut diagnostics)?;
    let workers = options.resolved_workers();
    let slo = spec.constraints.slo_latency_us.unwrap_or(f64::INFINITY);

    let n = candidates.len();
    let mut evaluated = 0usize;
    let mut feasible_points: Vec<(usize, EvaluatedDesign)> = Vec::new();
    let mut dominance = DominanceMap::default();
    let mut decided = vec![false; n];

    // Group candidates into port families (indexed by the enumeration
    // ordinal — no hashing) and pick the coarse probe grid: lowest,
    // median, and highest port count per family.
    let family_count = spec.space.cluster_counts.len()
        * spec.space.intra.len()
        * spec.space.inter.len()
        * spec.space.architectures.len();
    let mut families: Vec<Vec<usize>> = vec![Vec::new(); family_count];
    for (i, candidate) in candidates.iter().enumerate() {
        families[candidate.family].push(i);
    }
    for members in &mut families {
        members.sort_by_key(|&i| (candidates[i].design.config.switch.ports(), i));
    }
    let mut probe_idx: Vec<usize> = Vec::new();
    for members in &families {
        if members.is_empty() {
            continue;
        }
        for j in [0, members.len() / 2, members.len() - 1] {
            probe_idx.push(members[j]);
        }
    }
    probe_idx.sort_unstable();
    probe_idx.dedup();

    // Solve the probes in one unbounded kernel batch. Probe results
    // are real evaluations: they are absorbed, never re-solved.
    let probe_configs: Vec<SystemConfig> =
        probe_idx.iter().map(|&i| candidates[i].design.config).collect();
    let probe_results = crate::kernel::evaluate_batch(&probe_configs, workers);
    let mut solved_latency: Vec<Option<f64>> = vec![None; n];
    for (&i, result) in probe_idx.iter().zip(probe_results) {
        decided[i] = true;
        let result = result.map(|(report, _stats)| report);
        if let Ok(report) = &result {
            solved_latency[i] = Some(report.latency.mean_message_latency_us);
        }
        absorb_result(
            spec,
            &candidates[i],
            i,
            result,
            &mut diagnostics,
            &mut evaluated,
            &mut feasible_points,
        );
    }
    for (_, point) in &feasible_points {
        dominance.insert(point.cost_usd, point.latency_us);
    }

    // Gradient guidance: per family, take the best probed latency and
    // extrapolate it down the port axis with the probed d-latency/
    // d-ports slope to get an optimistic estimate of the family's best
    // latency. Evaluating likely-low-latency families first tightens
    // the dominance map early, which is what makes later waves prune.
    let mut family_rank: Vec<(f64, f64)> = vec![(f64::INFINITY, f64::INFINITY); family_count];
    for (f, members) in families.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let probed: Vec<(f64, f64)> = members
            .iter()
            .filter_map(|&i| {
                solved_latency[i]
                    .map(|lat| (f64::from(candidates[i].design.config.switch.ports()), lat))
            })
            .collect();
        let best = probed.iter().map(|&(_, lat)| lat).fold(f64::INFINITY, f64::min);
        let optimistic = match (probed.first(), probed.last()) {
            (Some(&(p0, l0)), Some(&(p1, l1))) if p1 > p0 => {
                let gradient = (l1 - l0) / (p1 - p0);
                let span = f64::from(
                    candidates[*members.last().expect("family is non-empty")]
                        .design
                        .config
                        .switch
                        .ports()
                        - candidates[members[0]].design.config.switch.ports(),
                );
                best - gradient.abs() * span
            }
            _ => best,
        };
        let headroom = members
            .iter()
            .map(|&i| candidates[i].saturation_lambda - spec.workload.lambda_per_us)
            .fold(f64::NEG_INFINITY, f64::max);
        family_rank[f] = (optimistic, -headroom);
    }

    // Families are walked best-rank-first; within a family, members go
    // cheapest-first so the dominance staircase tightens before the
    // expensive end of the port axis is reached. Every tie ends at a
    // distinct ordinal or enumeration index, so the unstable sorts are
    // fully deterministic.
    let mut family_order: Vec<usize> =
        (0..family_count).filter(|&f| !families[f].is_empty()).collect();
    family_order.sort_unstable_by(|&a, &b| {
        family_rank[a]
            .0
            .total_cmp(&family_rank[b].0)
            .then(family_rank[a].1.total_cmp(&family_rank[b].1))
            .then(a.cmp(&b))
    });
    let mut pending: Vec<usize> = Vec::with_capacity(n);
    for &f in &family_order {
        let start = pending.len();
        pending.extend(families[f].iter().copied().filter(|&i| !decided[i]));
        pending[start..].sort_unstable_by(|&a, &b| {
            candidates[a].cost_usd.total_cmp(&candidates[b].cost_usd).then(a.cmp(&b))
        });
    }

    // Walk the remaining candidates in fixed-size waves. The wave size
    // is deliberately independent of the worker count so the prune
    // decisions — and hence the whole outcome — are identical for
    // sequential and parallel runs.
    const WAVE: usize = 1024;
    let mut wave_idx: Vec<usize> = Vec::with_capacity(WAVE);
    let mut wave_configs: Vec<SystemConfig> = Vec::with_capacity(WAVE);
    let mut wave_bounds: Vec<crate::kernel::LaneBounds> = Vec::with_capacity(WAVE);
    // Feasible points below this index are already in the dominance
    // map (the probe seed); each wave folds in only what it appended.
    let mut folded = feasible_points.len();
    for wave in pending.chunks(WAVE) {
        wave_idx.clear();
        wave_configs.clear();
        wave_bounds.clear();
        for &i in wave {
            let candidate = &candidates[i];
            let dominated_at_us = dominance.best_latency_cheaper(candidate.cost_usd);
            let certified = candidate.zero_load_us * (1.0 - PRUNE_MARGIN);
            // Static prune: the zero-load service latency already
            // proves the point is above the SLO or strictly dominated.
            if certified > slo || certified >= dominated_at_us {
                diagnostics.pruned += 1;
                continue;
            }
            wave_idx.push(i);
            wave_configs.push(candidate.design.config);
            wave_bounds.push(crate::kernel::LaneBounds { slo_us: slo, dominated_at_us });
        }
        let outcomes = crate::kernel::evaluate_batch_bounded(&wave_configs, &wave_bounds, workers);
        for (&i, outcome) in wave_idx.iter().zip(outcomes) {
            match outcome {
                crate::kernel::LaneOutcome::Pruned { .. } => diagnostics.pruned += 1,
                crate::kernel::LaneOutcome::Solved(report, _stats) => absorb_result(
                    spec,
                    &candidates[i],
                    i,
                    Ok(report),
                    &mut diagnostics,
                    &mut evaluated,
                    &mut feasible_points,
                ),
                crate::kernel::LaneOutcome::Failed(error) => absorb_result(
                    spec,
                    &candidates[i],
                    i,
                    Err(error),
                    &mut diagnostics,
                    &mut evaluated,
                    &mut feasible_points,
                ),
            }
        }
        // Fold this wave's new feasible points into the dominance map
        // for the next wave.
        for (_, point) in &feasible_points[folded..] {
            dominance.insert(point.cost_usd, point.latency_us);
        }
        folded = feasible_points.len();
    }

    // Rebuild the feasible set in enumeration order so the stable
    // Pareto sort sees exactly the order the exhaustive path does.
    feasible_points.sort_by_key(|&(i, _)| i);
    let feasible = feasible_points.len();
    let frontier =
        pareto_reduce(feasible_points.into_iter().map(|(_, p)| p).collect(), &mut diagnostics);

    Ok(OptimizeOutcome { space_size: spec.space.len(), evaluated, feasible, frontier, diagnostics })
}

/// Column headers of the frontier CSV/JSON rendering shared by
/// `reproduce optimize`, `/v1/optimize` and the examples.
pub const FRONTIER_COLUMNS: [&str; 14] = [
    "design",
    "clusters",
    "nodes_per_cluster",
    "intra",
    "inter",
    "ports",
    "architecture",
    "switches",
    "cost_usd",
    "latency_us",
    "throughput_per_us",
    "retained_fraction",
    "bottleneck_utilization",
    "saturation_lambda",
];

/// Renders one frontier point as CSV/table cells matching
/// [`FRONTIER_COLUMNS`]. Floats use the shortest-round-trip rendering
/// ([`json_num`]) so the row is byte-stable and bit-faithful.
pub fn frontier_row(point: &EvaluatedDesign) -> Vec<String> {
    let cfg = &point.design.config;
    vec![
        point.design.key(),
        cfg.clusters.to_string(),
        cfg.nodes_per_cluster.to_string(),
        cfg.icn1.name.to_string(),
        cfg.ecn1.name.to_string(),
        cfg.switch.ports().to_string(),
        arch_code(cfg.architecture).to_string(),
        point.design.total_switches().to_string(),
        json_num(point.cost_usd),
        json_num(point.latency_us),
        json_num(point.throughput_per_us),
        json_num(point.retained_fraction),
        json_num(point.bottleneck_utilization),
        json_num(point.saturation_lambda),
    ]
}

/// Latency derivatives of one frontier point, from
/// [`frontier_sensitivity`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierSensitivity {
    /// The design key ([`Design::key`]) this row annotates.
    pub key: String,
    /// `∂T_W/∂λ` at the workload's operating point (µs²) — how
    /// fragile the design's latency is to offered-load growth.
    pub dlatency_dlambda: f64,
    /// `∂T_W/∂M` — µs per payload byte.
    pub dlatency_dbyte: f64,
    /// The design's closed-form saturation rate (msg/µs/processor).
    pub saturation_lambda: f64,
    /// Offered-rate headroom `saturation_lambda − λ`.
    pub lambda_headroom: f64,
    /// Largest λ keeping mean latency within `slo_latency_us`
    /// (Newton-polished, [`crate::sensitivity::lambda_for_latency`]);
    /// `None` when no SLO was given or no rate fits.
    pub max_lambda_at_slo: Option<f64>,
}

/// Annotates every frontier point of `outcome` with its latency
/// derivatives — the "which knob moves latency fastest" follow-up to
/// an optimization run. Rows are in frontier order (ascending cost).
///
/// When `slo_latency_us` is given, each row also carries the largest
/// per-processor rate that still meets that SLO, so a planner can read
/// growth headroom straight off the frontier instead of re-running the
/// optimizer at hypothetical future loads. All probe evaluations run
/// through the batched kernel.
pub fn frontier_sensitivity(
    outcome: &OptimizeOutcome,
    slo_latency_us: Option<f64>,
) -> Result<Vec<FrontierSensitivity>, OptimizeError> {
    let mut rows = Vec::with_capacity(outcome.frontier.len());
    for point in &outcome.frontier {
        let s = crate::sensitivity::evaluate(&point.design.config)?;
        let max_lambda_at_slo = match slo_latency_us {
            Some(budget) => crate::sensitivity::lambda_for_latency(&point.design.config, budget)?,
            None => None,
        };
        rows.push(FrontierSensitivity {
            key: point.design.key(),
            dlatency_dlambda: s.dlatency_dlambda,
            dlatency_dbyte: s.dlatency_dbyte,
            saturation_lambda: s.saturation_lambda,
            lambda_headroom: s.lambda_headroom,
            max_lambda_at_slo,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AnalyticalModel;

    fn small_space() -> DesignSpace {
        DesignSpace {
            cluster_counts: vec![4, 16],
            intra: vec![NetworkTechnology::GIGABIT_ETHERNET, NetworkTechnology::FAST_ETHERNET],
            inter: vec![NetworkTechnology::FAST_ETHERNET],
            switch_ports: vec![8, 24],
            architectures: vec![Architecture::NonBlocking],
        }
    }

    fn spec(constraints: Constraints, space: DesignSpace) -> OptimizeSpec {
        OptimizeSpec { workload: Workload::paper_default(), constraints, space }
    }

    #[test]
    fn paper_default_space_size() {
        let space = DesignSpace::paper_default(256);
        assert_eq!(space.cluster_counts, vec![2, 4, 8, 16, 32, 64, 128]);
        assert_eq!(space.len(), 7 * 4 * 4 * 5 * 2);
    }

    #[test]
    fn catalogue_prices_every_preset() {
        for tech in NetworkTechnology::PRESETS {
            let prices = CatalogCostModel::unit_prices(&tech).unwrap();
            assert!(prices.nic_usd > 0.0 && prices.port_usd > 0.0, "{}", tech.name);
        }
    }

    #[test]
    fn unknown_technology_is_a_hard_error() {
        let custom = NetworkTechnology::new("Quadrics QsNet", 2.0, 900.0).unwrap();
        assert_eq!(
            CatalogCostModel::unit_prices(&custom),
            Err(OptimizeError::UnknownTechnology("Quadrics QsNet".to_string()))
        );
        let mut space = small_space();
        space.intra = vec![custom];
        let err =
            optimize(&spec(Constraints::default(), space), BatchOptions::sequential()).unwrap_err();
        assert!(matches!(err, OptimizeError::UnknownTechnology(_)));
    }

    #[test]
    fn frontier_sensitivity_annotates_every_point() {
        let outcome =
            optimize(&spec(Constraints::default(), small_space()), BatchOptions::sequential())
                .unwrap();
        let rows = frontier_sensitivity(&outcome, Some(30_000.0)).unwrap();
        assert_eq!(rows.len(), outcome.frontier.len());
        for (row, point) in rows.iter().zip(&outcome.frontier) {
            assert_eq!(row.key, point.design.key());
            assert_eq!(row.saturation_lambda.to_bits(), point.saturation_lambda.to_bits());
            assert!(row.dlatency_dlambda > 0.0);
            assert!(row.dlatency_dbyte > 0.0);
            let at_slo = row.max_lambda_at_slo.expect("30 ms is feasible for every point");
            assert!(at_slo > 0.0);
        }
        let bare = frontier_sensitivity(&outcome, None).unwrap();
        assert!(bare.iter().all(|r| r.max_lambda_at_slo.is_none()));
    }

    #[test]
    fn frontier_is_a_strict_staircase() {
        let outcome =
            optimize(&spec(Constraints::default(), small_space()), BatchOptions::sequential())
                .unwrap();
        assert!(!outcome.frontier.is_empty());
        for pair in outcome.frontier.windows(2) {
            assert!(pair[0].cost_usd <= pair[1].cost_usd);
            assert!(pair[0].latency_us > pair[1].latency_us);
        }
        assert_eq!(outcome.frontier.len() + outcome.diagnostics.dominated, outcome.feasible);
    }

    #[test]
    fn frontier_points_are_bit_identical_to_direct_evaluation() {
        let outcome =
            optimize(&spec(Constraints::default(), small_space()), BatchOptions::sequential())
                .unwrap();
        for point in &outcome.frontier {
            let direct = AnalyticalModel::evaluate(&point.design.config).unwrap();
            assert_eq!(
                point.latency_us.to_bits(),
                direct.latency.mean_message_latency_us.to_bits()
            );
            assert_eq!(point.throughput_per_us.to_bits(), direct.throughput_per_us.to_bits());
        }
    }

    #[test]
    fn budget_constraint_is_attributed() {
        let unconstrained =
            optimize(&spec(Constraints::default(), small_space()), BatchOptions::sequential())
                .unwrap();
        let all_costs_max =
            unconstrained.frontier.iter().map(|p| p.cost_usd).fold(0.0f64, f64::max);
        let capped = Constraints { budget_usd: Some(all_costs_max - 1.0), ..Default::default() };
        let outcome = optimize(&spec(capped, small_space()), BatchOptions::sequential()).unwrap();
        assert!(outcome.diagnostics.over_budget > 0);
        for point in &outcome.frontier {
            assert!(point.cost_usd <= all_costs_max - 1.0);
        }
    }

    #[test]
    fn slo_constraint_is_attributed() {
        let open =
            optimize(&spec(Constraints::default(), small_space()), BatchOptions::sequential())
                .unwrap();
        let best = open.frontier.last().unwrap().latency_us;
        let slo = Constraints { slo_latency_us: Some(best * 1.0001), ..Default::default() };
        let outcome = optimize(&spec(slo, small_space()), BatchOptions::sequential()).unwrap();
        assert!(outcome.diagnostics.above_slo > 0);
        assert!(!outcome.frontier.is_empty());
        for point in &outcome.frontier {
            assert!(point.latency_us <= best * 1.0001);
        }
    }

    #[test]
    fn saturation_prefilter_prunes_slow_fabrics() {
        // At the paper's λ the open-queue boundary sits below the
        // offered rate for every preset fabric shape, so the strict
        // mode prunes — it must attribute those points, not fail.
        let strict = Constraints { require_unsaturated: true, ..Default::default() };
        let outcome = optimize(&spec(strict, small_space()), BatchOptions::sequential()).unwrap();
        assert_eq!(
            outcome.diagnostics.saturated + outcome.evaluated + outcome.diagnostics.failed,
            outcome.space_size - outcome.diagnostics.invalid
        );
        for point in &outcome.frontier {
            assert!(point.design.config.lambda_per_us < point.saturation_lambda);
        }
    }

    #[test]
    fn cheapest_feasible_is_first_frontier_point() {
        let outcome =
            optimize(&spec(Constraints::default(), small_space()), BatchOptions::sequential())
                .unwrap();
        let cheapest = outcome.cheapest_feasible().unwrap();
        assert_eq!(cheapest.cost_usd.to_bits(), outcome.frontier[0].cost_usd.to_bits());
        for point in &outcome.frontier {
            assert!(cheapest.cost_usd <= point.cost_usd);
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let seq =
            optimize(&spec(Constraints::default(), small_space()), BatchOptions::sequential())
                .unwrap();
        let par =
            optimize(&spec(Constraints::default(), small_space()), BatchOptions::with_workers(4))
                .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn non_divisor_cluster_counts_count_as_invalid() {
        let mut space = small_space();
        space.cluster_counts = vec![3, 16];
        let outcome =
            optimize(&spec(Constraints::default(), space), BatchOptions::sequential()).unwrap();
        // The whole C=3 slab (2 intra × 1 inter × 2 ports × 1 arch).
        assert_eq!(outcome.diagnostics.invalid, 4);
        assert!(outcome.evaluated > 0);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut bad_ports = small_space();
        bad_ports.switch_ports = vec![7];
        assert!(matches!(
            optimize(&spec(Constraints::default(), bad_ports), BatchOptions::sequential()),
            Err(OptimizeError::InvalidSpec(_))
        ));
        let mut empty = small_space();
        empty.architectures.clear();
        assert!(matches!(
            optimize(&spec(Constraints::default(), empty), BatchOptions::sequential()),
            Err(OptimizeError::InvalidSpec(_))
        ));
        let mut wl = Workload::paper_default();
        wl.lambda_per_us = -1.0;
        let bad = OptimizeSpec {
            workload: wl,
            constraints: Constraints::default(),
            space: small_space(),
        };
        assert!(matches!(
            optimize(&bad, BatchOptions::sequential()),
            Err(OptimizeError::InvalidSpec(_))
        ));
    }

    #[test]
    fn frontier_row_matches_columns() {
        let outcome =
            optimize(&spec(Constraints::default(), small_space()), BatchOptions::sequential())
                .unwrap();
        let row = frontier_row(&outcome.frontier[0]);
        assert_eq!(row.len(), FRONTIER_COLUMNS.len());
        assert!(row[0].starts_with('C'));
    }

    fn assert_frontiers_bit_identical(pruned: &OptimizeOutcome, exhaustive: &OptimizeOutcome) {
        assert_eq!(pruned.frontier.len(), exhaustive.frontier.len());
        for (a, b) in pruned.frontier.iter().zip(&exhaustive.frontier) {
            assert_eq!(a.design, b.design);
            assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
            assert_eq!(a.latency_us.to_bits(), b.latency_us.to_bits());
            assert_eq!(a.throughput_per_us.to_bits(), b.throughput_per_us.to_bits());
            assert_eq!(a.retained_fraction.to_bits(), b.retained_fraction.to_bits());
            assert_eq!(a.bottleneck_utilization.to_bits(), b.bottleneck_utilization.to_bits());
            assert_eq!(a.saturation_lambda.to_bits(), b.saturation_lambda.to_bits());
        }
        assert_eq!(pruned.space_size, exhaustive.space_size);
        assert_eq!(pruned.feasible, pruned.frontier.len() + pruned.diagnostics.dominated);
    }

    #[test]
    fn pruned_frontier_is_bit_identical_on_the_paper_space() {
        let constraints = Constraints {
            slo_latency_us: Some(30_000.0),
            budget_usd: None,
            require_unsaturated: true,
        };
        let request = OptimizeSpec::paper_default(constraints);
        let exhaustive = optimize(&request, BatchOptions::sequential()).unwrap();
        let pruned = optimize_pruned(&request, BatchOptions::sequential()).unwrap();
        assert_frontiers_bit_identical(&pruned, &exhaustive);
        assert!(pruned.diagnostics.pruned > 0, "paper space should prune some points");
        assert!(pruned.evaluated < exhaustive.evaluated);
        let d = pruned.diagnostics;
        assert_eq!(
            d.saturated + pruned.evaluated + d.failed + d.pruned,
            pruned.space_size - d.invalid
        );
        assert_eq!(exhaustive.diagnostics.pruned, 0);
    }

    #[test]
    fn pruned_frontier_is_bit_identical_without_an_slo() {
        // No SLO: only dominance prunes. The frontier must still match.
        let request = OptimizeSpec::paper_default(Constraints::default());
        let exhaustive = optimize(&request, BatchOptions::sequential()).unwrap();
        let pruned = optimize_pruned(&request, BatchOptions::sequential()).unwrap();
        assert_frontiers_bit_identical(&pruned, &exhaustive);
    }

    #[test]
    fn pruned_parallel_matches_sequential_bitwise() {
        let constraints = Constraints { slo_latency_us: Some(20_000.0), ..Constraints::default() };
        let request = OptimizeSpec::paper_default(constraints);
        let sequential = optimize_pruned(&request, BatchOptions::sequential()).unwrap();
        for workers in [2, 8] {
            let parallel = optimize_pruned(&request, BatchOptions::with_workers(workers)).unwrap();
            assert_eq!(sequential, parallel);
        }
    }

    #[test]
    fn expanded_space_prunes_most_of_the_dense_port_axis() {
        // 64 nodes keeps the runtime down: 5·4·4·95·2 = 3040 points.
        let mut wl = Workload::paper_default();
        wl.total_nodes = 64;
        let constraints = Constraints {
            slo_latency_us: Some(30_000.0),
            budget_usd: None,
            require_unsaturated: true,
        };
        let space = DesignSpace::expanded(64);
        assert_eq!(space.len(), 5 * 4 * 4 * 95 * 2);
        let request = OptimizeSpec { workload: wl, constraints, space };
        let exhaustive = optimize(&request, BatchOptions::with_workers(4)).unwrap();
        let pruned = optimize_pruned(&request, BatchOptions::with_workers(4)).unwrap();
        assert_frontiers_bit_identical(&pruned, &exhaustive);
        assert!(
            pruned.diagnostics.pruned * 2 > pruned.evaluated,
            "dense port axis should mostly prune: pruned {} evaluated {}",
            pruned.diagnostics.pruned,
            pruned.evaluated
        );
    }
}
