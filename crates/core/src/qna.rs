//! A QNA-style refinement of the paper's model: propagate
//! **arrival-process variability** through the network instead of
//! assuming Poisson arrivals everywhere.
//!
//! Assumption 2 of the paper approximates the arrival process at every
//! centre as Poisson. Our validation (EXPERIMENTS.md) shows where that
//! costs accuracy: with several tiers loaded at once (Figure 7, C = 4)
//! the analysis misses by ~15–20%, because the *departure* process of a
//! loaded queue feeding the next tier is not Poisson.
//!
//! Following Whitt's Queueing Network Analyzer recipe with two-moment
//! traffic descriptors `(λ, ca²)`:
//!
//! * external (source) streams are Poisson: `ca² = 1` — in fact the
//!   throttled source process is slightly smoother, but we keep the
//!   conservative choice;
//! * each centre is a GI/G/1 queue evaluated with the
//!   Krämer–Langenbach-Belz formula ([`hmcs_queueing::gg1`]);
//! * departures follow Marshall's linkage
//!   `cd² = ρ²·cs² + (1−ρ²)·ca²`;
//! * splitting a stream with probability `p` gives
//!   `ca²' = p·ca² + 1 − p`; merging streams averages SCVs weighted by
//!   rate.
//!
//! The flow topology (Figure 2): sources → {ICN1 | ECN1-fwd} →
//! ECN1-fwd → ICN2 → split 1/C → ECN1-feedback. ECN1's physical queue
//! sees the *merge* of the forward and feedback streams. The SCV
//! propagation is solved by damped iteration inside the same
//! effective-λ outer fixed point as the base model.

use crate::config::{QueueAccounting, SystemConfig};
use crate::error::ModelError;
use crate::latency::LatencyReport;
use crate::metrics::{self, keys};
use crate::rates::TrafficRates;
use crate::service::ServiceTimes;
use hmcs_queueing::fixed_point::{bisect_seeded, SolverOptions};
use hmcs_queueing::gg1::{Approximation, GG1};

/// Converged SCV state of the three tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScvState {
    /// Arrival SCV at ICN1.
    pub icn1_ca2: f64,
    /// Arrival SCV at the (merged) ECN1 queue.
    pub ecn1_ca2: f64,
    /// Arrival SCV at ICN2.
    pub icn2_ca2: f64,
}

/// Output of the QNA-refined evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QnaReport {
    /// Effective per-processor rate (eq. 7 under GI/G/1 queue lengths).
    pub lambda_eff: f64,
    /// Converged arrival SCVs.
    pub scv: ScvState,
    /// Latency report (eq. 15 with GI/G/1 sojourns).
    pub latency: LatencyReport,
}

/// Per-centre GI/G/1 view at a candidate rate and SCV state.
struct Centers {
    icn1: Option<GG1>,
    ecn1: Option<GG1>,
    icn2: Option<GG1>,
}

fn build_centers(
    config: &SystemConfig,
    service: &ServiceTimes,
    rates: &TrafficRates,
    scv: &ScvState,
) -> Option<Centers> {
    let mk = |lambda: f64, ca2: f64, mean_us: f64| -> Option<Option<GG1>> {
        if lambda <= 0.0 {
            return Some(None);
        }
        GG1::new(lambda, ca2, config.service_model.distribution(mean_us)).ok().map(Some)
    };
    Some(Centers {
        icn1: mk(rates.icn1, scv.icn1_ca2, service.icn1_us)?,
        ecn1: mk(rates.ecn1_total, scv.ecn1_ca2, service.ecn1_us)?,
        icn2: mk(rates.icn2, scv.icn2_ca2, service.icn2_us)?,
    })
}

/// One sweep of the SCV propagation at fixed rates. Returns the updated
/// state.
fn propagate_scv(config: &SystemConfig, rates: &TrafficRates, centers: &Centers) -> ScvState {
    let c = config.clusters as f64;
    // Sources are Poisson streams.
    let source_ca2 = 1.0;

    // ECN1 forward component: the source stream (split off the
    // processor's output: splitting preserves Poisson).
    let fwd_ca2 = source_ca2;

    // ICN2 arrivals: merge of the C clusters' ECN1 *forward-share*
    // departures. Approximate the forward share of ECN1's departure SCV
    // by the whole queue's departure SCV, split by the forward fraction
    // of its traffic.
    let ecn1_cd2 = centers.ecn1.as_ref().map_or(1.0, |q| q.departure_scv());
    let fwd_fraction =
        if rates.ecn1_total > 0.0 { rates.ecn1_forward / rates.ecn1_total } else { 0.0 };
    // Split: ca2' = p ca2 + 1 - p, then merging C iid streams keeps the
    // weighted SCV (all equal).
    let icn2_ca2 = fwd_fraction * ecn1_cd2 + 1.0 - fwd_fraction;

    // Feedback into each ECN1: ICN2 departures split 1/C.
    let icn2_cd2 = centers.icn2.as_ref().map_or(1.0, |q| q.departure_scv());
    let fb_ca2 = icn2_cd2 / c + 1.0 - 1.0 / c;

    // ECN1's merged arrival SCV: rate-weighted average of forward and
    // feedback components.
    let ecn1_ca2 = if rates.ecn1_total > 0.0 {
        (rates.ecn1_forward * fwd_ca2 + rates.ecn1_feedback * fb_ca2) / rates.ecn1_total
    } else {
        1.0
    };

    ScvState { icn1_ca2: source_ca2, ecn1_ca2, icn2_ca2 }
}

/// Solves SCVs at a fixed rate vector by damped iteration.
fn solve_scv(
    config: &SystemConfig,
    service: &ServiceTimes,
    rates: &TrafficRates,
) -> Option<ScvState> {
    let mut scv = ScvState { icn1_ca2: 1.0, ecn1_ca2: 1.0, icn2_ca2: 1.0 };
    for _ in 0..200 {
        let centers = build_centers(config, service, rates, &scv)?;
        let next = propagate_scv(config, rates, &centers);
        let delta = (next.ecn1_ca2 - scv.ecn1_ca2).abs().max((next.icn2_ca2 - scv.icn2_ca2).abs());
        // Damping for stability near saturation.
        scv = ScvState {
            icn1_ca2: next.icn1_ca2,
            ecn1_ca2: 0.5 * scv.ecn1_ca2 + 0.5 * next.ecn1_ca2,
            icn2_ca2: 0.5 * scv.icn2_ca2 + 0.5 * next.icn2_ca2,
        };
        if delta < 1e-10 {
            break;
        }
    }
    Some(scv)
}

/// Total waiting processors (eq. 6) under GI/G/1 queue lengths.
fn total_waiting(config: &SystemConfig, service: &ServiceTimes, lambda_eff: f64) -> Option<f64> {
    let rates = TrafficRates::compute(config, lambda_eff);
    let scv = solve_scv(config, service, &rates)?;
    let centers = build_centers(config, service, &rates, &scv)?;
    let l =
        |q: &Option<GG1>| q.as_ref().map_or(0.0, |q| q.mean_number_in_system(Approximation::KLB));
    let w = match config.accounting {
        QueueAccounting::PaperLiteral => 2.0,
        QueueAccounting::SingleQueue => 1.0,
    };
    let c = config.clusters as f64;
    Some(c * (w * l(&centers.ecn1) + l(&centers.icn1)) + l(&centers.icn2))
}

/// Evaluates the QNA-refined model.
pub fn evaluate(config: &SystemConfig) -> Result<QnaReport, ModelError> {
    config.validate()?;
    let service = ServiceTimes::compute(config)?;
    evaluate_with_service(config, &service)
}

/// Evaluates the QNA-refined model reusing precomputed service times.
/// Sweeps over λ call this to skip the per-point topology work.
pub fn evaluate_with_service(
    config: &SystemConfig,
    service: &ServiceTimes,
) -> Result<QnaReport, ModelError> {
    evaluate_with_service_seeded(config, service, None)
}

/// Like [`evaluate_with_service`], warm-starting the effective-rate
/// bisection from `seed` (typically the λ_eff of a neighbouring sweep
/// point). Out-of-bracket seeds are ignored.
pub fn evaluate_with_service_seeded(
    config: &SystemConfig,
    service: &ServiceTimes,
    seed: Option<f64>,
) -> Result<QnaReport, ModelError> {
    let lambda = config.lambda_per_us;
    let n = config.total_nodes() as f64;

    let g = |x: f64| -> f64 {
        let l = total_waiting(config, service, x).unwrap_or(f64::INFINITY);
        lambda * (n - l.min(n)) / n
    };
    // Reuse the closed-form stability boundary of the base model (GG1
    // shares the rho < 1 condition).
    let sat = crate::solver::saturation_lambda(config, service);
    let hi = lambda.min(sat * (1.0 - 1e-12));
    let opts = SolverOptions {
        tolerance: (lambda * 1e-12).max(1e-300),
        max_iterations: 500,
        damping: 0.5,
    };
    let sol = bisect_seeded(|x| g(x) - x, 0.0, hi, seed, opts).map_err(|e| match e {
        hmcs_queueing::QueueingError::NoConvergence { residual, .. } => {
            ModelError::SolverFailed { residual }
        }
        other => ModelError::Queueing(other),
    })?;
    // Like the base solver: the bisection can land a hair inside the
    // unstable clamp region near saturation; back off to the stable
    // side instead of failing the whole evaluation. Shares the
    // geometric helper so both paths retreat identically.
    let (lambda_eff, backoff_steps) = crate::solver::back_off_to_stable(sol.value, |x| {
        total_waiting(config, service, x).is_some()
    })
    .ok_or(ModelError::SolverFailed { residual: f64::INFINITY })?;

    metrics::counter(keys::QNA_SOLVES).incr();
    metrics::histogram(keys::QNA_ITERATIONS).record(sol.iterations as u64);
    if backoff_steps > 0 {
        metrics::counter(keys::QNA_BACKOFF_ACTIVATIONS).incr();
        metrics::histogram(keys::SOLVER_BACKOFF_STEPS).record(backoff_steps as u64);
    }

    let rates = TrafficRates::compute(config, lambda_eff);
    let scv = solve_scv(config, service, &rates)
        .ok_or(ModelError::SolverFailed { residual: f64::INFINITY })?;
    let centers = build_centers(config, service, &rates, &scv)
        .ok_or(ModelError::SolverFailed { residual: f64::INFINITY })?;

    let w = |q: &Option<GG1>, fallback_us: f64| {
        q.as_ref().map_or(fallback_us, |q| q.mean_sojourn_time(Approximation::KLB))
    };
    let p = rates.external_probability;
    let w_i1 = w(&centers.icn1, service.icn1_us);
    let w_e1 = w(&centers.ecn1, service.ecn1_us);
    let w_i2 = w(&centers.icn2, service.icn2_us);
    let internal = w_i1;
    let external = w_i2 + 2.0 * w_e1;
    let latency = LatencyReport {
        external_probability: p,
        internal_latency_us: internal,
        external_latency_us: external,
        mean_message_latency_us: (1.0 - p) * internal + p * external,
        sojourn_icn1_us: w_i1,
        sojourn_ecn1_us: w_e1,
        sojourn_icn2_us: w_i2,
    };
    Ok(QnaReport { lambda_eff, scv, latency })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AnalyticalModel;
    use crate::scenario::Scenario;
    use hmcs_topology::transmission::Architecture;

    fn cfg(scenario: Scenario, clusters: usize, arch: Architecture) -> SystemConfig {
        SystemConfig::paper_preset(scenario, clusters, arch).unwrap()
    }

    #[test]
    fn scv_state_converges_and_is_sane() {
        let config = cfg(Scenario::Case1, 8, Architecture::NonBlocking);
        let r = evaluate(&config).unwrap();
        assert!(r.scv.icn1_ca2 == 1.0);
        assert!(r.scv.ecn1_ca2 > 0.0 && r.scv.ecn1_ca2 < 4.0);
        assert!(r.scv.icn2_ca2 > 0.0 && r.scv.icn2_ca2 < 4.0);
        assert!(r.latency.mean_message_latency_us > 0.0);
    }

    #[test]
    fn reduces_toward_base_model_when_everything_is_poissonish() {
        // Exponential service + light load: departures stay ~Poisson, so
        // QNA and the base M/M/1 model agree closely.
        let config = cfg(Scenario::Case1, 8, Architecture::NonBlocking)
            .with_lambda(crate::scenario::PAPER_LAMBDA_LITERAL_PER_US);
        let qna = evaluate(&config).unwrap();
        let base = AnalyticalModel::evaluate(&config).unwrap();
        let rel = (qna.latency.mean_message_latency_us - base.latency.mean_message_latency_us)
            .abs()
            / base.latency.mean_message_latency_us;
        assert!(rel < 0.01, "light-load divergence {rel}");
    }

    #[test]
    fn exponential_service_keeps_unit_scv_fixed_point() {
        // M/M/1 tandem: cd2 = 1 exactly, so the SCV iteration must stay
        // at 1 and QNA must reproduce the base model's latency.
        let config = cfg(Scenario::Case2, 16, Architecture::NonBlocking);
        let r = evaluate(&config).unwrap();
        assert!((r.scv.ecn1_ca2 - 1.0).abs() < 1e-6);
        assert!((r.scv.icn2_ca2 - 1.0).abs() < 1e-6);
        let base = AnalyticalModel::evaluate(&config).unwrap();
        let rel = (r.latency.mean_message_latency_us - base.latency.mean_message_latency_us).abs()
            / base.latency.mean_message_latency_us;
        assert!(rel < 1e-6, "exponential fixed point should match base, rel {rel}");
    }

    #[test]
    fn deterministic_service_smooths_internal_traffic() {
        use crate::config::ServiceTimeModel;
        // cs2 = 0 at loaded centres drives departure SCVs below 1,
        // reducing downstream waiting vs the base P-K treatment.
        let config = cfg(Scenario::Case1, 32, Architecture::NonBlocking)
            .with_service_model(ServiceTimeModel::Deterministic);
        let r = evaluate(&config).unwrap();
        assert!(r.scv.icn2_ca2 < 1.0, "smoothed arrivals, got {}", r.scv.icn2_ca2);
        let base = AnalyticalModel::evaluate(&config).unwrap();
        assert!(r.latency.mean_message_latency_us <= base.latency.mean_message_latency_us);
    }

    #[test]
    fn heavy_overload_evaluates_like_base_solver() {
        // lambda 100x the figure-scale rate: deep saturation. The base
        // solver survives this via its near-saturation back-off guard;
        // the QNA path must too (regression: it used to return
        // SolverFailed when bisection landed a hair inside the unstable
        // clamp region).
        let config = cfg(Scenario::Case1, 256, Architecture::Blocking).with_lambda(2.5e-2);
        let r = evaluate(&config).unwrap();
        let base = crate::solver::solve(&config).unwrap();
        assert!(r.lambda_eff > 0.0 && r.lambda_eff < config.lambda_per_us);
        assert!(r.latency.mean_message_latency_us.is_finite());
        // Both paths throttle to the same saturation-bound rate within
        // a loose factor (GI/G/1 vs M/M/1 queue lengths differ).
        let rel = (r.lambda_eff - base.lambda_eff).abs() / base.lambda_eff;
        assert!(rel < 0.5, "qna {} vs base {}", r.lambda_eff, base.lambda_eff);
    }

    #[test]
    fn evaluates_across_the_paper_grid() {
        for scenario in [Scenario::Case1, Scenario::Case2] {
            for arch in [Architecture::NonBlocking, Architecture::Blocking] {
                for c in [1usize, 4, 16, 256] {
                    let r = evaluate(&cfg(scenario, c, arch)).unwrap();
                    assert!(
                        r.latency.mean_message_latency_us.is_finite()
                            && r.latency.mean_message_latency_us > 0.0,
                        "{scenario:?} {arch:?} C={c}"
                    );
                }
            }
        }
    }
}
