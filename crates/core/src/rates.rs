//! The traffic equations — eqs. 1–5 of the paper.
//!
//! Given a per-processor generation rate λ (or the throttled effective
//! rate λ_eff) and the external-request probability `P`, the arrival
//! rate at every service centre follows in closed form:
//!
//! ```text
//! λ_I1     = N₀·(1−P)·λ                (eq. 1, per-cluster ICN1)
//! λ_E1⁽¹⁾  = N₀·P·λ                    (eq. 2, ECN1 forward pass)
//! λ_I2     = C·N₀·P·λ                  (eq. 3, global ICN2)
//! λ_E1⁽²⁾  = λ_I2 / C = N₀·P·λ         (eq. 4, ECN1 feedback pass)
//! λ_E1     = λ_E1⁽¹⁾ + λ_E1⁽²⁾ = 2·N₀·P·λ   (eq. 5)
//! ```
//!
//! The same rates fall out of the general Jackson traffic equations
//! (`hmcs-queueing::jackson`); a test cross-checks the two derivations.

use crate::config::SystemConfig;
use crate::routing::external_probability;

/// Arrival rates (messages/µs) at each service centre for a given
/// effective per-processor rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficRates {
    /// Effective per-processor generation rate used to derive the rest.
    pub lambda_eff: f64,
    /// External-request probability `P` (eq. 8).
    pub external_probability: f64,
    /// Arrival rate at each cluster's ICN1 (eq. 1).
    pub icn1: f64,
    /// Forward-pass arrival rate at each cluster's ECN1 (eq. 2).
    pub ecn1_forward: f64,
    /// Feedback-pass arrival rate at each cluster's ECN1 (eq. 4).
    pub ecn1_feedback: f64,
    /// Total arrival rate at each cluster's ECN1 (eq. 5).
    pub ecn1_total: f64,
    /// Arrival rate at the global ICN2 (eq. 3).
    pub icn2: f64,
}

impl TrafficRates {
    /// Evaluates eqs. 1–5 for `config` at effective rate `lambda_eff`.
    pub fn compute(config: &SystemConfig, lambda_eff: f64) -> Self {
        let p = external_probability(config.clusters, config.nodes_per_cluster);
        Self::compute_with_p(config, lambda_eff, p)
    }

    /// Evaluates eqs. 1–5 with an explicit external probability
    /// (locality extension).
    pub fn compute_with_p(config: &SystemConfig, lambda_eff: f64, p: f64) -> Self {
        let n0 = config.nodes_per_cluster as f64;
        let c = config.clusters as f64;
        let icn1 = n0 * (1.0 - p) * lambda_eff;
        let ecn1_forward = n0 * p * lambda_eff;
        let icn2 = c * n0 * p * lambda_eff;
        let ecn1_feedback = icn2 / c;
        TrafficRates {
            lambda_eff,
            external_probability: p,
            icn1,
            ecn1_forward,
            ecn1_feedback,
            ecn1_total: ecn1_forward + ecn1_feedback,
            icn2,
        }
    }

    /// Flow-conservation identity: everything a processor generates
    /// shows up exactly once as either intra-cluster traffic (ICN1) or
    /// inter-cluster traffic (ICN2). Returns the residual of
    /// `C·λ_I1 + λ_I2 == N·λ_eff` — used as an internal consistency
    /// check. (ECN1 traffic is excluded: its forward and feedback
    /// streams are the ICN2 messages in transit, not new generation.)
    pub fn generation_rate_residual(&self, config: &SystemConfig) -> f64 {
        let n = config.total_nodes() as f64;
        let c = config.clusters as f64;
        let total_generated = n * self.lambda_eff;
        // Internal share + external share.
        let internal = c * self.icn1;
        let external = self.icn2;
        (internal + external - total_generated).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use hmcs_topology::transmission::Architecture;

    fn cfg(clusters: usize) -> SystemConfig {
        SystemConfig::paper_preset(Scenario::Case1, clusters, Architecture::NonBlocking).unwrap()
    }

    #[test]
    fn closed_forms_for_paper_platform() {
        // C=16, N0=16, lambda arbitrary.
        let config = cfg(16);
        let lam = 2.5e-4;
        let r = TrafficRates::compute(&config, lam);
        let p = 240.0 / 255.0;
        assert!((r.external_probability - p).abs() < 1e-12);
        assert!((r.icn1 - 16.0 * (1.0 - p) * lam).abs() < 1e-15);
        assert!((r.ecn1_forward - 16.0 * p * lam).abs() < 1e-15);
        assert!((r.icn2 - 256.0 * p * lam).abs() < 1e-15);
        assert!((r.ecn1_feedback - r.ecn1_forward).abs() < 1e-15, "eq. 4 equals eq. 2");
        assert!((r.ecn1_total - 2.0 * 16.0 * p * lam).abs() < 1e-15, "eq. 5");
    }

    #[test]
    fn single_cluster_routes_everything_internally() {
        let r = TrafficRates::compute(&cfg(1), 1e-4);
        assert_eq!(r.external_probability, 0.0);
        assert!((r.icn1 - 256.0 * 1e-4).abs() < 1e-15);
        assert_eq!(r.ecn1_total, 0.0);
        assert_eq!(r.icn2, 0.0);
    }

    #[test]
    fn per_node_clusters_route_everything_externally() {
        let r = TrafficRates::compute(&cfg(256), 1e-4);
        assert!((r.external_probability - 1.0).abs() < 1e-12);
        assert!(r.icn1.abs() < 1e-18);
        assert!((r.icn2 - 256.0 * 1e-4).abs() < 1e-12);
    }

    #[test]
    fn flow_conservation_across_the_sweep() {
        for c in crate::scenario::PAPER_CLUSTER_COUNTS {
            let config = cfg(c);
            let r = TrafficRates::compute(&config, 3.3e-4);
            assert!(
                r.generation_rate_residual(&config) < 1e-12,
                "flow conservation violated at C={c}"
            );
        }
    }

    #[test]
    fn rates_scale_linearly_in_lambda() {
        let config = cfg(8);
        let r1 = TrafficRates::compute(&config, 1e-4);
        let r2 = TrafficRates::compute(&config, 2e-4);
        assert!((r2.icn1 - 2.0 * r1.icn1).abs() < 1e-15);
        assert!((r2.ecn1_total - 2.0 * r1.ecn1_total).abs() < 1e-15);
        assert!((r2.icn2 - 2.0 * r1.icn2).abs() < 1e-15);
    }

    #[test]
    fn jackson_network_reproduces_the_closed_forms() {
        // Model one cluster's centres plus ICN2 as an explicit Jackson
        // network (forward and feedback ECN1 passes as separate
        // stations) and confirm the traffic equations agree with
        // eqs. 1-5. Mirrors Figure 2 of the paper.
        use hmcs_queueing::jackson::{JacksonNetwork, Station};
        let config = cfg(4); // C=4, N0=64
        let lam = 1e-4;
        let r = TrafficRates::compute(&config, lam);
        let p = r.external_probability;
        let n0 = config.nodes_per_cluster as f64;
        let c = config.clusters as f64;
        // Stations: [ICN1, ECN1_fwd, ICN2, ECN1_fb]. ICN2 receives the
        // forward traffic of ALL clusters; model the other clusters'
        // contribution as external arrivals at ICN2. Feedback returns
        // only this cluster's share (1/C).
        let net = JacksonNetwork::new(
            vec![
                Station::single(1.0, n0 * (1.0 - p) * lam),
                Station::single(1.0, n0 * p * lam),
                Station::single(1.0, (c - 1.0) * n0 * p * lam),
                Station::single(1.0, 0.0),
            ],
            vec![
                vec![0.0, 0.0, 0.0, 0.0],
                vec![0.0, 0.0, 1.0, 0.0],
                vec![0.0, 0.0, 0.0, 1.0 / c],
                vec![0.0, 0.0, 0.0, 0.0],
            ],
        )
        .unwrap();
        let rates = net.traffic_rates().unwrap();
        assert!((rates[0] - r.icn1).abs() < 1e-15, "ICN1");
        assert!((rates[1] - r.ecn1_forward).abs() < 1e-15, "ECN1 forward");
        assert!((rates[2] - r.icn2).abs() < 1e-15, "ICN2");
        assert!((rates[3] - r.ecn1_feedback).abs() < 1e-15, "ECN1 feedback");
    }
}
