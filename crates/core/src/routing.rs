//! Request routing probabilities.
//!
//! Under assumption 3 (uniform destinations over all other nodes), a
//! request leaves its cluster with probability
//!
//! ```text
//! P = (C−1)·N₀ / (C·N₀ − 1)          (eq. 8)
//! ```
//!
//! — of the `C·N₀ − 1` possible destinations, `(C−1)·N₀` live in other
//! clusters. The locality extension mixes the uniform pattern with a
//! cluster-local pattern, modelling applications with communication
//! locality (the paper's §5.3 remarks that linear arrays suit localized
//! traffic; this hook lets that be studied quantitatively).

use crate::error::ModelError;

/// External-request probability under uniform traffic — eq. 8.
///
/// Degenerate cases: a single cluster (`C = 1`) never sends outside
/// (`P = 0`); the formula's `0/0` at `C·N₀ = 1` is defined as 0.
pub fn external_probability(clusters: usize, nodes_per_cluster: usize) -> f64 {
    let total = clusters * nodes_per_cluster;
    if total <= 1 || clusters <= 1 {
        return 0.0;
    }
    ((clusters - 1) * nodes_per_cluster) as f64 / (total - 1) as f64
}

/// A traffic pattern: how destinations are selected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Uniform over all other nodes (assumption 3; the paper's only
    /// pattern).
    Uniform,
    /// With probability `locality` the destination is drawn uniformly
    /// from the source's own cluster; otherwise uniformly from all other
    /// nodes. `locality = 0` reduces to `Uniform`.
    Localized {
        /// Probability of forcing a cluster-local destination.
        locality: f64,
    },
    /// With probability `fraction` the destination is a fixed hot node
    /// (e.g. a file server or coordinator); otherwise uniform. A
    /// classic stress pattern the paper's symmetric model cannot
    /// represent — the simulators capture the resulting asymmetric
    /// contention, and the model hook below only preserves the *mean*
    /// external fraction.
    Hotspot {
        /// The hot node's global index.
        node: usize,
        /// Probability a message targets the hot node.
        fraction: f64,
    },
}

impl TrafficPattern {
    /// Validates pattern parameters.
    pub fn validate(&self) -> Result<(), ModelError> {
        match *self {
            TrafficPattern::Localized { locality } => {
                if !(0.0..=1.0).contains(&locality) || !locality.is_finite() {
                    return Err(ModelError::InvalidConfig {
                        name: "locality",
                        reason: "must lie in [0, 1]",
                    });
                }
            }
            TrafficPattern::Hotspot { fraction, .. } => {
                if !(0.0..=1.0).contains(&fraction) || !fraction.is_finite() {
                    return Err(ModelError::InvalidConfig {
                        name: "fraction",
                        reason: "must lie in [0, 1]",
                    });
                }
            }
            TrafficPattern::Uniform => {}
        }
        Ok(())
    }

    /// External-request probability under this pattern.
    ///
    /// For `Localized`, the uniform component contributes
    /// `(1 − locality)·P_uniform`; the local component contributes
    /// nothing (requires `N₀ ≥ 2` to have any local destination — with
    /// `N₀ = 1` the local draw is impossible and the pattern falls back
    /// to uniform).
    pub fn external_probability(&self, clusters: usize, nodes_per_cluster: usize) -> f64 {
        let uniform = external_probability(clusters, nodes_per_cluster);
        match *self {
            TrafficPattern::Uniform => uniform,
            TrafficPattern::Localized { locality } => {
                if nodes_per_cluster < 2 {
                    uniform
                } else {
                    (1.0 - locality) * uniform
                }
            }
            TrafficPattern::Hotspot { fraction, .. } => {
                // A hotspot message is external iff the (uniformly
                // distributed) source sits outside the hot node's
                // cluster: probability (N - N0)/N, averaged over
                // sources. Captures only the mean — the asymmetric
                // per-cluster load is simulator territory.
                let n = (clusters * nodes_per_cluster) as f64;
                let hot_external = (n - nodes_per_cluster as f64) / n;
                fraction * hot_external + (1.0 - fraction) * uniform
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq8_examples() {
        // C=2, N0=2: P = 2/3.
        assert!((external_probability(2, 2) - 2.0 / 3.0).abs() < 1e-12);
        // Paper platform C=16, N0=16: P = 15*16/255 = 240/255.
        assert!((external_probability(16, 16) - 240.0 / 255.0).abs() < 1e-12);
        // C=256, N0=1: P = 255/255 = 1 (all traffic external).
        assert!((external_probability(256, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero() {
        assert_eq!(external_probability(1, 256), 0.0);
        assert_eq!(external_probability(1, 1), 0.0);
    }

    #[test]
    fn p_is_monotone_in_cluster_count_for_fixed_total() {
        // Splitting 256 nodes into more clusters increases P.
        let mut prev = -1.0;
        for c in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
            let p = external_probability(c, 256 / c);
            assert!(p > prev, "P must grow with C, got {p} after {prev}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn locality_scales_external_traffic() {
        let uniform = TrafficPattern::Uniform.external_probability(8, 32);
        let half = TrafficPattern::Localized { locality: 0.5 }.external_probability(8, 32);
        let full = TrafficPattern::Localized { locality: 1.0 }.external_probability(8, 32);
        assert!((half - uniform / 2.0).abs() < 1e-12);
        assert_eq!(full, 0.0);
        let zero = TrafficPattern::Localized { locality: 0.0 }.external_probability(8, 32);
        assert!((zero - uniform).abs() < 1e-15);
    }

    #[test]
    fn locality_with_singleton_clusters_falls_back_to_uniform() {
        let p = TrafficPattern::Localized { locality: 0.9 }.external_probability(256, 1);
        assert!((p - 1.0).abs() < 1e-12, "no local destinations exist");
    }

    #[test]
    fn pattern_validation() {
        assert!(TrafficPattern::Uniform.validate().is_ok());
        assert!(TrafficPattern::Localized { locality: 0.3 }.validate().is_ok());
        assert!(TrafficPattern::Localized { locality: -0.1 }.validate().is_err());
        assert!(TrafficPattern::Localized { locality: 1.5 }.validate().is_err());
        assert!(TrafficPattern::Localized { locality: f64::NAN }.validate().is_err());
        assert!(TrafficPattern::Hotspot { node: 0, fraction: 0.2 }.validate().is_ok());
        assert!(TrafficPattern::Hotspot { node: 0, fraction: 1.1 }.validate().is_err());
        assert!(TrafficPattern::Hotspot { node: 0, fraction: f64::NAN }.validate().is_err());
    }

    #[test]
    fn hotspot_external_probability_mixes() {
        // 8 clusters x 32 nodes: uniform P, hot external = 224/256.
        let uniform = external_probability(8, 32);
        let hot = TrafficPattern::Hotspot { node: 5, fraction: 1.0 }.external_probability(8, 32);
        assert!((hot - 224.0 / 256.0).abs() < 1e-12);
        let half = TrafficPattern::Hotspot { node: 5, fraction: 0.5 }.external_probability(8, 32);
        assert!((half - 0.5 * (224.0 / 256.0) - 0.5 * uniform).abs() < 1e-12);
        let none = TrafficPattern::Hotspot { node: 5, fraction: 0.0 }.external_probability(8, 32);
        assert!((none - uniform).abs() < 1e-15);
    }
}
