//! Table 1 scenarios and Table 2 constants.
//!
//! The paper evaluates two network-heterogeneity scenarios on a 256-node
//! system (Table 1):
//!
//! | Case   | ICN1             | ECN1 and ICN2    |
//! |--------|------------------|------------------|
//! | Case 1 | Gigabit Ethernet | Fast Ethernet    |
//! | Case 2 | Fast Ethernet    | Gigabit Ethernet |
//!
//! and the constants of Table 2: GE 80 µs / 94 MB/s, FE 50 µs /
//! 10.5 MB/s, 24-port switches of 10 µs latency, message generation rate
//! λ = 0.25 msg per time unit, message sizes 512 and 1024 bytes.
//!
//! ## The λ-unit reading
//!
//! Table 2 prints λ as `0.25 /s`, but the paper's plotted latencies
//! (2–34 ms non-blocking) are only reachable when the queueing terms
//! matter, which requires λ ≈ 0.25 msg/**ms**. [`PAPER_LAMBDA_PER_US`]
//! is therefore 0.25/ms = 2.5·10⁻⁴ per µs (the reading that reproduces
//! the figures' scale) and [`PAPER_LAMBDA_LITERAL_PER_US`] is the
//! literal 0.25/s. Experiments report both; see DESIGN.md §5.

use hmcs_topology::technology::NetworkTechnology;

/// Total node count used throughout the paper's evaluation (§6).
pub const PAPER_TOTAL_NODES: usize = 256;

/// Message sizes evaluated in every figure (bytes).
pub const PAPER_MESSAGE_SIZES: [u64; 2] = [512, 1024];

/// Cluster counts on the figures' x-axes.
pub const PAPER_CLUSTER_COUNTS: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Message generation rate, figure-scale reading: 0.25 msg/ms, in
/// events/µs.
pub const PAPER_LAMBDA_PER_US: f64 = 0.25e-3;

/// Message generation rate, literal Table-2 reading: 0.25 msg/s, in
/// events/µs.
pub const PAPER_LAMBDA_LITERAL_PER_US: f64 = 0.25e-6;

/// Number of messages per simulation run in the paper's validation
/// ("statistics were gathered for a total number of 10,000 messages").
pub const PAPER_SIM_MESSAGES: u64 = 10_000;

/// The two network-heterogeneity scenarios of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// ICN1 = Gigabit Ethernet; ECN1 and ICN2 = Fast Ethernet.
    Case1,
    /// ICN1 = Fast Ethernet; ECN1 and ICN2 = Gigabit Ethernet.
    Case2,
}

impl Scenario {
    /// Technology of the intra-cluster network (ICN1).
    pub fn icn1(&self) -> NetworkTechnology {
        match self {
            Scenario::Case1 => NetworkTechnology::GIGABIT_ETHERNET,
            Scenario::Case2 => NetworkTechnology::FAST_ETHERNET,
        }
    }

    /// Technology of the inter-cluster access network (ECN1).
    pub fn ecn1(&self) -> NetworkTechnology {
        match self {
            Scenario::Case1 => NetworkTechnology::FAST_ETHERNET,
            Scenario::Case2 => NetworkTechnology::GIGABIT_ETHERNET,
        }
    }

    /// Technology of the global second-stage network (ICN2). Table 1
    /// assigns ECN1 and ICN2 the same technology.
    pub fn icn2(&self) -> NetworkTechnology {
        self.ecn1()
    }

    /// Human-readable label used in reports ("Case-1 System").
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Case1 => "Case-1 System",
            Scenario::Case2 => "Case-2 System",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_assignments() {
        assert_eq!(Scenario::Case1.icn1().name, "Gigabit Ethernet");
        assert_eq!(Scenario::Case1.ecn1().name, "Fast Ethernet");
        assert_eq!(Scenario::Case1.icn2().name, "Fast Ethernet");
        assert_eq!(Scenario::Case2.icn1().name, "Fast Ethernet");
        assert_eq!(Scenario::Case2.ecn1().name, "Gigabit Ethernet");
        assert_eq!(Scenario::Case2.icn2().name, "Gigabit Ethernet");
    }

    #[test]
    fn lambda_readings_are_three_orders_apart() {
        assert!((PAPER_LAMBDA_PER_US / PAPER_LAMBDA_LITERAL_PER_US - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_counts_cover_the_axis_and_divide_n() {
        for c in PAPER_CLUSTER_COUNTS {
            assert_eq!(PAPER_TOTAL_NODES % c, 0, "C={c} must divide N=256");
        }
        assert_eq!(PAPER_CLUSTER_COUNTS.len(), 9);
    }

    #[test]
    fn labels_match_figure_captions() {
        assert_eq!(Scenario::Case1.label(), "Case-1 System");
        assert_eq!(Scenario::Case2.label(), "Case-2 System");
    }
}
