//! Central finite-difference derivatives of the mean message latency.
//!
//! The analytical model gives `T_W` (eq. 15) as an implicit function of
//! the offered rate λ, the message size `M` and the population `N`
//! through the effective-rate fixed point, so closed-form derivatives
//! would have to differentiate through the bisection. Instead this
//! module evaluates symmetric probe pairs around the operating point
//! and forms second-order central differences — all probes run as
//! lanes of one [`BatchKernel`], so a full sensitivity evaluation
//! costs a single lockstep kernel pass.
//!
//! Derivative conventions (units matter — λ is per-processor
//! messages/µs, `T_W` is µs):
//!
//! * `dlatency_dlambda` — µs per unit of per-processor rate (µs²):
//!   how fast latency climbs as every processor offers more load.
//! * `dlatency_dbyte` — µs per payload byte at fixed shape.
//! * `dlatency_dnode` — µs per added *processor* (the per-cluster
//!   population probe moves `C` processors at once; the difference is
//!   normalised back to one processor).
//!
//! Step sizes default to the classic central-difference compromise
//! between truncation error (`O(h²)`) and round-off (`O(ε/h)`): `1e-5`
//! relative for λ; the integer axes use the smallest steps their grids
//! allow (±16 bytes, ±1 node per cluster) and fall back to one-sided
//! differences at the domain edge. See EXPERIMENTS.md ("Sensitivity
//! artefact") for the full rationale.

use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::kernel::BatchKernel;
use crate::service::ServiceTimes;
use crate::solver;

/// Finite-difference step policy for [`evaluate_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityOptions {
    /// Relative half-step for the λ probes: the pair is evaluated at
    /// `λ·(1 ∓ lambda_rel_step)`. Must be in `(0, 1)`.
    pub lambda_rel_step: f64,
    /// Half-step in bytes for the message-size probes (floored at 1).
    pub message_step_bytes: u64,
    /// Half-step in processors *per cluster* for the population probes
    /// (floored at 1).
    pub nodes_step: usize,
}

impl Default for SensitivityOptions {
    fn default() -> Self {
        SensitivityOptions { lambda_rel_step: 1e-5, message_step_bytes: 16, nodes_step: 1 }
    }
}

impl SensitivityOptions {
    fn validate(&self) -> Result<(), ModelError> {
        if !(self.lambda_rel_step.is_finite()
            && self.lambda_rel_step > 0.0
            && self.lambda_rel_step < 1.0)
        {
            return Err(ModelError::InvalidConfig {
                name: "lambda_rel_step",
                reason: "relative lambda step must be in (0, 1)",
            });
        }
        Ok(())
    }
}

/// Latency derivatives of one configuration at its operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivity {
    /// Mean message latency `T_W` at the operating point (µs).
    pub latency_us: f64,
    /// `∂T_W/∂λ` — µs per unit per-processor rate (µs²). Positive,
    /// steepest at the saturation knee; beyond it the retention
    /// mechanism (waiting processors stop generating) flattens the
    /// curve again.
    pub dlatency_dlambda: f64,
    /// `∂T_W/∂M` — µs per payload byte.
    pub dlatency_dbyte: f64,
    /// `∂T_W/∂N` — µs per added processor at fixed cluster count.
    pub dlatency_dnode: f64,
    /// The closed-form saturation rate (messages/µs/processor).
    pub saturation_lambda: f64,
    /// Offered-rate headroom `saturation_lambda − λ` (messages/µs).
    pub lambda_headroom: f64,
}

/// [`evaluate_with`] under the default step policy.
pub fn evaluate(config: &SystemConfig) -> Result<Sensitivity, ModelError> {
    evaluate_with(config, &SensitivityOptions::default())
}

/// Evaluates all three derivatives of `config` with one batched kernel
/// pass over the centre point and its probe pairs.
pub fn evaluate_with(
    config: &SystemConfig,
    opts: &SensitivityOptions,
) -> Result<Sensitivity, ModelError> {
    config.validate()?;
    opts.validate()?;

    let lambda = config.lambda_per_us;
    let h_l = lambda * opts.lambda_rel_step;
    let lam_hi = lambda + h_l;
    let lam_lo = lambda - h_l;
    if lam_hi <= lambda {
        return Err(ModelError::InvalidConfig {
            name: "lambda_rel_step",
            reason: "step underflows at this lambda; use a larger relative step",
        });
    }

    let m = config.message_bytes;
    let dm = opts.message_step_bytes.max(1);
    let m_hi = m + dm;
    // One-sided at the small-message edge: the lower probe must stay
    // at least one byte.
    let m_lo = if m > dm { m - dm } else { m };

    let n0 = config.nodes_per_cluster;
    let dn = opts.nodes_step.max(1);
    // One-sided at the small-population edge: the lower probe needs at
    // least one node per cluster and two nodes in total.
    let n_lo_ok = n0 > dn && config.clusters * (n0 - dn) >= 2;

    let mut lanes: Vec<SystemConfig> = Vec::with_capacity(7);
    lanes.push(*config);
    lanes.push(config.with_lambda(lam_hi));
    let i_lam_lo = if lam_lo > 0.0 {
        lanes.push(config.with_lambda(lam_lo));
        Some(lanes.len() - 1)
    } else {
        None
    };
    lanes.push(config.with_message_bytes(m_hi));
    let i_m_hi = lanes.len() - 1;
    let i_m_lo = if m_lo != m {
        lanes.push(config.with_message_bytes(m_lo));
        Some(lanes.len() - 1)
    } else {
        None
    };
    let mut up = *config;
    up.nodes_per_cluster = n0 + dn;
    lanes.push(up);
    let i_n_hi = lanes.len() - 1;
    let i_n_lo = if n_lo_ok {
        let mut down = *config;
        down.nodes_per_cluster = n0 - dn;
        lanes.push(down);
        Some(lanes.len() - 1)
    } else {
        None
    };

    let results = BatchKernel::new(&lanes).solve();
    let lat = |i: usize| -> Result<f64, ModelError> {
        match &results[i] {
            Ok((report, _)) => Ok(report.latency.mean_message_latency_us),
            Err(e) => Err(e.clone()),
        }
    };

    let t0 = lat(0)?;
    let dlatency_dlambda = match i_lam_lo {
        Some(ilo) => (lat(1)? - lat(ilo)?) / (lam_hi - lam_lo),
        None => (lat(1)? - t0) / (lam_hi - lambda),
    };
    let dlatency_dbyte = match i_m_lo {
        Some(ilo) => (lat(i_m_hi)? - lat(ilo)?) / ((m_hi - m_lo) as f64),
        None => (lat(i_m_hi)? - t0) / (dm as f64),
    };
    let c = config.clusters as f64;
    let dlatency_dnode = match i_n_lo {
        Some(ilo) => (lat(i_n_hi)? - lat(ilo)?) / (2.0 * c * dn as f64),
        None => (lat(i_n_hi)? - t0) / (c * dn as f64),
    };

    let service = ServiceTimes::compute(config)?;
    let saturation_lambda = solver::saturation_lambda(config, &service);
    Ok(Sensitivity {
        latency_us: t0,
        dlatency_dlambda,
        dlatency_dbyte,
        dlatency_dnode,
        saturation_lambda,
        lambda_headroom: saturation_lambda - lambda,
    })
}

/// Largest per-processor rate (messages/µs) whose predicted mean
/// latency stays at or below `latency_budget_us`, or `None` when even
/// near-zero load violates the budget.
///
/// Offered load is *not* bounded by [`solver::saturation_lambda`]:
/// beyond the knee the retention mechanism keeps the fixed point
/// stable and latency keeps climbing slowly, so the search expands a
/// geometric ladder of probes past saturation until the budget is
/// exceeded (the ladder is one kernel pass), then polishes the
/// crossing with Newton steps on the central-difference derivative;
/// any step that leaves the bracket falls back to bisection, so
/// convergence is guaranteed. Each polish iteration evaluates its
/// three probes (`x−h`, `x`, `x+h`) as lanes of one kernel pass. If
/// latency stays within budget all the way to `2¹⁶·saturation_lambda`
/// (deep in the retention plateau), that ceiling is returned.
/// Compared to the pure-bisection
/// [`crate::sweep::max_lambda_within_latency`], the Newton polish
/// reaches tighter tolerances in a handful of iterations — this is
/// the fast path for λ-headroom questions in capacity planning.
pub fn lambda_for_latency(
    config: &SystemConfig,
    latency_budget_us: f64,
) -> Result<Option<f64>, ModelError> {
    config.validate()?;
    if !(latency_budget_us.is_finite() && latency_budget_us > 0.0) {
        return Err(ModelError::InvalidConfig {
            name: "latency_budget_us",
            reason: "latency budget must be finite and positive",
        });
    }
    let service = ServiceTimes::compute(config)?;
    let sat = solver::saturation_lambda(config, &service);
    let scale = if sat.is_finite() && sat > 0.0 { sat } else { config.lambda_per_us };

    let eval_lat = |lams: &[f64]| -> Result<Vec<f64>, ModelError> {
        let cfgs: Vec<SystemConfig> = lams.iter().map(|&l| config.with_lambda(l)).collect();
        BatchKernel::with_service(&cfgs, &service)
            .solve()
            .into_iter()
            .map(|r| r.map(|(report, _)| report.latency.mean_message_latency_us))
            .collect()
    };

    // Geometric ladder: scale·2^k for k = −30..=16 covers near-zero
    // load through deep retention-plateau overload in one batch.
    let ladder: Vec<f64> = (-30i32..=16).map(|k| scale * (k as f64).exp2()).collect();
    let lats = eval_lat(&ladder)?;
    if lats[0] > latency_budget_us {
        return Ok(None);
    }
    let Some(first_over) = lats.iter().position(|&t| t > latency_budget_us) else {
        return Ok(Some(ladder[ladder.len() - 1]));
    };

    let (mut lo, mut hi) = (ladder[first_over - 1], ladder[first_over]);
    let mut x = 0.5 * (lo + hi);
    for _ in 0..40 {
        let h = x * 1e-5;
        let probes = eval_lat(&[x - h, x, x + h])?;
        let (t_lo, t, t_hi) = (probes[0], probes[1], probes[2]);
        if t <= latency_budget_us {
            lo = x;
        } else {
            hi = x;
        }
        if (hi - lo) <= 1e-12 * hi {
            break;
        }
        let deriv = (t_hi - t_lo) / (2.0 * h);
        let newton = if deriv.is_finite() && deriv > 0.0 {
            x - (t - latency_budget_us) / deriv
        } else {
            f64::NAN
        };
        x = if newton > lo && newton < hi { newton } else { 0.5 * (lo + hi) };
    }
    Ok(Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AnalyticalModel;
    use crate::scenario::Scenario;
    use hmcs_topology::transmission::Architecture;

    fn cfg(clusters: usize) -> SystemConfig {
        SystemConfig::paper_preset(Scenario::Case1, clusters, Architecture::NonBlocking).unwrap()
    }

    #[test]
    fn derivatives_have_the_right_signs() {
        let s = evaluate(&cfg(16)).unwrap();
        assert!(s.latency_us > 0.0);
        assert!(s.dlatency_dlambda > 0.0, "more load must cost latency");
        assert!(s.dlatency_dbyte > 0.0, "bigger messages must cost latency");
        assert!(s.dlatency_dnode > 0.0, "more contending processors must cost latency");
        assert!(s.saturation_lambda > 0.0 && s.saturation_lambda.is_finite());
    }

    #[test]
    fn lambda_derivative_matches_a_coarse_secant() {
        // The central difference at 1e-5 must agree with a 1e-3-wide
        // secant to within the secant's own truncation error.
        let base = cfg(8);
        let s = evaluate(&base).unwrap();
        let l = base.lambda_per_us;
        let up = AnalyticalModel::evaluate(&base.with_lambda(l * 1.001)).unwrap();
        let down = AnalyticalModel::evaluate(&base.with_lambda(l * 0.999)).unwrap();
        let secant = (up.latency.mean_message_latency_us - down.latency.mean_message_latency_us)
            / (l * 0.002);
        let rel = (s.dlatency_dlambda - secant).abs() / secant.abs();
        assert!(rel < 1e-2, "central FD {} vs secant {secant}: rel {rel}", s.dlatency_dlambda);
    }

    #[test]
    fn derivative_steepens_toward_the_knee() {
        // Below the saturation knee the latency curve is convex, so
        // the λ-derivative must grow as load approaches saturation.
        // (Beyond the knee retention flattens it again, which is why
        // the probes sit at fractions of the closed-form rate.)
        let base = cfg(16);
        let sat = evaluate(&base).unwrap().saturation_lambda;
        let near = evaluate(&base.with_lambda(0.95 * sat)).unwrap();
        let far = evaluate(&base.with_lambda(0.5 * sat)).unwrap();
        assert!(near.dlatency_dlambda > far.dlatency_dlambda);
    }

    #[test]
    fn edge_populations_fall_back_to_one_sided_steps() {
        // C=256 leaves one node per cluster: the N− probe is invalid
        // and the M/λ axes still work.
        let s = evaluate(&cfg(256)).unwrap();
        assert!(s.dlatency_dnode.is_finite());
        assert!(s.dlatency_dlambda > 0.0);
    }

    #[test]
    fn options_are_validated() {
        let bad = SensitivityOptions { lambda_rel_step: 0.0, ..Default::default() };
        assert!(evaluate_with(&cfg(4), &bad).is_err());
        let bad = SensitivityOptions { lambda_rel_step: f64::NAN, ..Default::default() };
        assert!(evaluate_with(&cfg(4), &bad).is_err());
    }

    #[test]
    fn newton_lambda_hits_the_budget_from_below() {
        let base = cfg(16);
        let budget = 5_000.0; // 5 ms, comfortably above zero load
        let best = lambda_for_latency(&base, budget).unwrap().expect("budget is feasible");
        let at = AnalyticalModel::evaluate(&base.with_lambda(best)).unwrap();
        assert!(at.latency.mean_message_latency_us <= budget * (1.0 + 1e-9));
        let above = AnalyticalModel::evaluate(&base.with_lambda(best * 1.001)).unwrap();
        assert!(above.latency.mean_message_latency_us > budget);
    }

    #[test]
    fn newton_lambda_agrees_with_a_serial_bisection_oracle() {
        // `sweep::max_lambda_within_latency` now delegates here, so the
        // cross-check keeps its own independent oracle: a plain serial
        // bisection on per-point scalar evaluations.
        let base = cfg(16);
        let budget = 5_000.0;
        let newton = lambda_for_latency(&base, budget).unwrap().unwrap();
        let latency_at = |lam: f64| {
            AnalyticalModel::evaluate(&base.with_lambda(lam))
                .unwrap()
                .latency
                .mean_message_latency_us
        };
        let (mut lo, mut hi) = (1e-8, 1e-2);
        assert!(latency_at(lo) <= budget && latency_at(hi) > budget);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if latency_at(mid) <= budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let rel = (newton - lo).abs() / lo;
        assert!(rel < 1e-3, "newton {newton} vs bisection {lo}: rel {rel}");
    }

    #[test]
    fn newton_lambda_detects_impossible_budgets() {
        // Budget below the zero-load service mix: nothing fits.
        assert_eq!(lambda_for_latency(&cfg(16), 1.0).unwrap(), None);
    }

    #[test]
    fn newton_lambda_rejects_bad_budgets() {
        assert!(lambda_for_latency(&cfg(4), f64::NAN).is_err());
        assert!(lambda_for_latency(&cfg(4), -5.0).is_err());
    }
}
