//! Per-centre service times from the interconnect models.
//!
//! Each network tier is sized by the HMSCS structure (Figure 1):
//!
//! * every cluster's **ICN1** and **ECN1** connect that cluster's `N₀`
//!   processors;
//! * the global **ICN2** connects the `C` cluster ECNs.
//!
//! This sizing is what produces the paper's observed kink at `C = 16` on
//! the 256-node platform: there both `C` and `N₀ = 256/C` first drop to
//! ≤ Pr = 24, so every network becomes a single switch fabric ("usage of
//! one switch fabric for all communication networks", §6).
//!
//! The mean transmission time of each tier (eq. 11 or eq. 21) becomes
//! the mean service time of the corresponding M/M/1 centre (µ = 1/T).

use crate::config::SystemConfig;
use crate::error::ModelError;
use hmcs_topology::transmission::TransmissionModel;

/// Mean service times (µs) of the three network tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceTimes {
    /// Mean message time through a cluster's ICN1.
    pub icn1_us: f64,
    /// Mean message time through a cluster's ECN1 (per pass).
    pub ecn1_us: f64,
    /// Mean message time through the global ICN2.
    pub icn2_us: f64,
}

impl ServiceTimes {
    /// Builds the three tier transmission models and evaluates their
    /// mean times for `config.message_bytes`.
    pub fn compute(config: &SystemConfig) -> Result<Self, ModelError> {
        let models = TierModels::build(config)?;
        Ok(ServiceTimes {
            icn1_us: models.icn1.mean_time_us(config.message_bytes),
            ecn1_us: models.ecn1.mean_time_us(config.message_bytes),
            icn2_us: models.icn2.mean_time_us(config.message_bytes),
        })
    }

    /// Service rates µ (messages/µs) per tier.
    pub fn rates(&self) -> (f64, f64, f64) {
        (1.0 / self.icn1_us, 1.0 / self.ecn1_us, 1.0 / self.icn2_us)
    }
}

/// The three tier transmission models (exposed so the simulators can
/// reuse exactly the same construction).
#[derive(Debug, Clone, Copy)]
pub struct TierModels {
    /// ICN1 model: `N₀` endpoints on the ICN1 technology.
    pub icn1: TransmissionModel,
    /// ECN1 model: `N₀` endpoints on the ECN1 technology.
    pub ecn1: TransmissionModel,
    /// ICN2 model: `C` endpoints on the ICN2 technology.
    pub icn2: TransmissionModel,
}

impl TierModels {
    /// Builds the per-tier models from a system configuration.
    pub fn build(config: &SystemConfig) -> Result<Self, ModelError> {
        config.validate()?;
        let icn1 = TransmissionModel::new(
            config.icn1,
            config.switch,
            config.nodes_per_cluster,
            config.architecture,
        )?
        .with_hop_model(config.hop_model);
        let ecn1 = TransmissionModel::new(
            config.ecn1,
            config.switch,
            config.nodes_per_cluster,
            config.architecture,
        )?
        .with_hop_model(config.hop_model);
        let icn2 = TransmissionModel::new(
            config.icn2,
            config.switch,
            config.clusters.max(1),
            config.architecture,
        )?
        .with_hop_model(config.hop_model);
        Ok(TierModels { icn1, ecn1, icn2 })
    }

    /// True when every tier is a single switch — the `C = 16` kink
    /// regime on the paper platform.
    pub fn all_single_switch(&self, config: &SystemConfig) -> bool {
        let pr = config.switch.ports() as usize;
        config.nodes_per_cluster <= pr && config.clusters <= pr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use hmcs_topology::transmission::Architecture;

    fn cfg(clusters: usize, arch: Architecture) -> SystemConfig {
        SystemConfig::paper_preset(Scenario::Case1, clusters, arch).unwrap()
    }

    #[test]
    fn case1_assigns_technologies_correctly() {
        let st = ServiceTimes::compute(&cfg(16, Architecture::NonBlocking)).unwrap();
        // C=16: N0=16 <= 24 and C=16 <= 24 => every tier is 1 switch.
        // ICN1 (GE): 80 + 10 + 1024/94.
        let icn1 = 80.0 + 10.0 + 1024.0 / 94.0;
        // ECN1/ICN2 (FE): 50 + 10 + 1024/10.5.
        let fe = 50.0 + 10.0 + 1024.0 / 10.5;
        assert!((st.icn1_us - icn1).abs() < 1e-9);
        assert!((st.ecn1_us - fe).abs() < 1e-9);
        assert!((st.icn2_us - fe).abs() < 1e-9);
    }

    #[test]
    fn kink_regime_detection() {
        for c in crate::scenario::PAPER_CLUSTER_COUNTS {
            let config = cfg(c, Architecture::NonBlocking);
            let tm = TierModels::build(&config).unwrap();
            let expect = c <= 24 && 256 / c <= 24;
            assert_eq!(tm.all_single_switch(&config), expect, "C={c}");
        }
        // Only C=16 satisfies both bounds on the 256-node platform.
        let kinks: Vec<usize> = crate::scenario::PAPER_CLUSTER_COUNTS
            .iter()
            .copied()
            .filter(|&c| {
                let config = cfg(c, Architecture::NonBlocking);
                TierModels::build(&config).unwrap().all_single_switch(&config)
            })
            .collect();
        assert_eq!(kinks, vec![16]);
    }

    #[test]
    fn icn2_size_tracks_cluster_count() {
        let a = TierModels::build(&cfg(2, Architecture::NonBlocking)).unwrap();
        let b = TierModels::build(&cfg(256, Architecture::NonBlocking)).unwrap();
        assert_eq!(a.icn2.endpoints(), 2);
        assert_eq!(b.icn2.endpoints(), 256);
        assert_eq!(a.icn1.endpoints(), 128);
        assert_eq!(b.icn1.endpoints(), 1);
    }

    #[test]
    fn blocking_service_times_exceed_nonblocking() {
        for c in [2usize, 8, 32, 128] {
            let nb = ServiceTimes::compute(&cfg(c, Architecture::NonBlocking)).unwrap();
            let bl = ServiceTimes::compute(&cfg(c, Architecture::Blocking)).unwrap();
            // ICN1 has N0 = 256/c >= 2 endpoints; blocking penalty
            // applies whenever N0 > 2.
            if 256 / c > 2 {
                assert!(bl.icn1_us > nb.icn1_us, "C={c}");
            }
        }
    }

    #[test]
    fn rates_invert_times() {
        let st = ServiceTimes::compute(&cfg(8, Architecture::NonBlocking)).unwrap();
        let (r1, r2, r3) = st.rates();
        assert!((r1 * st.icn1_us - 1.0).abs() < 1e-12);
        assert!((r2 * st.ecn1_us - 1.0).abs() < 1e-12);
        assert!((r3 * st.icn2_us - 1.0).abs() < 1e-12);
    }

    #[test]
    fn case2_swaps_fast_and_slow_tiers() {
        let c1 = ServiceTimes::compute(
            &SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap(),
        )
        .unwrap();
        let c2 = ServiceTimes::compute(
            &SystemConfig::paper_preset(Scenario::Case2, 16, Architecture::NonBlocking).unwrap(),
        )
        .unwrap();
        assert!(c1.icn1_us < c1.ecn1_us, "Case 1: fast intra, slow inter");
        assert!(c2.icn1_us > c2.ecn1_us, "Case 2: slow intra, fast inter");
        assert!((c1.icn1_us - c2.ecn1_us).abs() < 1e-9, "GE tier swaps");
    }
}
