//! The effective-rate fixed point — eqs. 6–7.
//!
//! Assumption 4 makes request sources stop while their message is in
//! flight, so the offered per-processor rate is lower than λ. The paper
//! computes the total number of waiting processors
//!
//! ```text
//! L = C·(2·L_E1 + L_I1) + L_I2            (eq. 6)
//! ```
//!
//! and iterates `λ_eff = λ·(N − L)/N` (eq. 7) "until no considerable
//! change is observed". Because `L(λ_eff)` is monotone increasing and
//! extremely steep near saturation, naive Picard iteration oscillates;
//! we solve the equivalent root problem with guaranteed-convergence
//! bisection over the provably bracketing interval
//! `[0, min(λ, λ_sat)]`, where `λ_sat` is the closed-form smallest
//! per-processor rate that saturates any centre.

use crate::config::{QueueAccounting, SystemConfig};
use crate::error::ModelError;
use crate::metrics::{self, keys};
use crate::rates::TrafficRates;
use crate::service::ServiceTimes;
use hmcs_queueing::fixed_point::{bisect_seeded, SolverOptions};
use hmcs_queueing::mg1::MG1;

/// Steady-state metrics of one service centre at the converged rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CenterState {
    /// Arrival rate λᵢ (messages/µs).
    pub arrival_rate: f64,
    /// Mean service time (µs).
    pub service_time_us: f64,
    /// Utilization ρᵢ = λᵢ·Tᵢ.
    pub utilization: f64,
    /// Mean number in system Lᵢ.
    pub number_in_system: f64,
    /// Mean sojourn time Wᵢ (µs) — eq. 16 under exponential service.
    pub sojourn_us: f64,
}

/// The converged equilibrium of the flow-blocking feedback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Equilibrium {
    /// The effective per-processor generation rate λ_eff (eq. 7).
    pub lambda_eff: f64,
    /// Converged traffic rates (eqs. 1–5 at λ_eff).
    pub rates: TrafficRates,
    /// Per-cluster ICN1 state.
    pub icn1: CenterState,
    /// Per-cluster ECN1 state (single queue at the combined rate of
    /// eq. 5).
    pub ecn1: CenterState,
    /// Global ICN2 state.
    pub icn2: CenterState,
    /// Total waiting processors (eq. 6 under the configured accounting).
    pub total_waiting: f64,
    /// Fraction of nominal generation capacity retained,
    /// `λ_eff/λ ∈ (0, 1]`.
    pub retained_fraction: f64,
    /// Number of fixed-point function evaluations the bisection spent
    /// converging (warm-started solves spend fewer).
    pub solver_iterations: usize,
}

impl Equilibrium {
    /// True when the flow-blocking feedback visibly throttles the
    /// sources (more than 1% of the nominal rate lost).
    pub fn is_throttled(&self) -> bool {
        self.retained_fraction < 0.99
    }

    /// Utilization of the most loaded centre.
    pub fn bottleneck_utilization(&self) -> f64 {
        self.icn1.utilization.max(self.ecn1.utilization).max(self.icn2.utilization)
    }
}

/// Closed-form smallest per-processor rate that saturates any centre.
/// Returns `f64::INFINITY` when no centre can saturate (e.g. `P = 0`
/// makes ECN1/ICN2 idle and only ICN1 binds). Shared with the QNA
/// evaluator so both paths bracket the fixed point identically, and
/// public so harnesses (e.g. the differential fuzz driver in
/// `hmcs-bench`) can sample offered rates at a controlled distance
/// from the stability boundary.
pub fn saturation_lambda(config: &SystemConfig, service: &ServiceTimes) -> f64 {
    let probe = TrafficRates::compute(config, 1.0); // rates per unit lambda
    let (mu1, mu_e, mu2) = service.rates();
    let mut sat = f64::INFINITY;
    if probe.icn1 > 0.0 {
        sat = sat.min(mu1 / probe.icn1);
    }
    if probe.ecn1_total > 0.0 {
        sat = sat.min(mu_e / probe.ecn1_total);
    }
    if probe.icn2 > 0.0 {
        sat = sat.min(mu2 / probe.icn2);
    }
    sat
}

/// Retreats `lambda` toward the stable side of a saturation boundary
/// with geometrically doubling relative steps: `λ ← λ·(1−s)` for
/// `s = 1e-9, 2e-9, 4e-9, …` until `is_stable` holds or the step would
/// remove the whole rate. Returns the stable rate and the number of
/// steps taken (0 when already stable), or `None` when even backing
/// off by ~86% cumulative leaves the predicate false — at that point
/// the problem is not a floating-point edge but a genuinely infeasible
/// rate.
///
/// The previous fixed-step loop (128 × `1e-9`, ~1.3e-7 total slack)
/// could exhaust its guard on very steep saturation curves; doubling
/// steps cover any retreat in at most ~30 probes. Shared by the base
/// solver and the QNA evaluator so both paths behave identically.
pub(crate) fn back_off_to_stable(
    mut lambda: f64,
    mut is_stable: impl FnMut(f64) -> bool,
) -> Option<(f64, u32)> {
    if is_stable(lambda) {
        return Some((lambda, 0));
    }
    let mut step = 1e-9;
    let mut steps = 0u32;
    while step < 1.0 {
        lambda *= 1.0 - step;
        steps += 1;
        if is_stable(lambda) {
            return Some((lambda, steps));
        }
        step *= 2.0;
    }
    None
}

/// Mean number in system of an M/G/1 centre, or `None` when unstable.
/// Under the default exponential service this is the M/M/1 `ρ/(1−ρ)`.
fn center_l(config: &SystemConfig, lambda: f64, service_us: f64) -> Option<f64> {
    if lambda <= 0.0 {
        return Some(0.0);
    }
    let dist = config.service_model.distribution(service_us);
    MG1::new(lambda, dist).ok().map(|q| q.mean_number_in_system())
}

/// Eq. 6 at offered rate `lambda_eff`; `None` when any centre is
/// unstable at that rate.
fn total_waiting(config: &SystemConfig, service: &ServiceTimes, lambda_eff: f64) -> Option<f64> {
    let r = TrafficRates::compute(config, lambda_eff);
    let l_i1 = center_l(config, r.icn1, service.icn1_us)?;
    let l_e1 = center_l(config, r.ecn1_total, service.ecn1_us)?;
    let l_i2 = center_l(config, r.icn2, service.icn2_us)?;
    let c = config.clusters as f64;
    let ecn1_weight = match config.accounting {
        QueueAccounting::PaperLiteral => 2.0,
        QueueAccounting::SingleQueue => 1.0,
    };
    Some(c * (ecn1_weight * l_e1 + l_i1) + l_i2)
}

/// Solves eqs. 6–7 for `config`.
pub fn solve(config: &SystemConfig) -> Result<Equilibrium, ModelError> {
    config.validate()?;
    let service = ServiceTimes::compute(config)?;
    solve_with_service(config, &service)
}

/// Solves eqs. 6–7 reusing precomputed (λ-independent) service times.
/// Sweeps over λ call this to avoid recomputing topology and
/// transmission times at every point.
pub fn solve_with_service(
    config: &SystemConfig,
    service: &ServiceTimes,
) -> Result<Equilibrium, ModelError> {
    solve_with_service_seeded(config, service, None)
}

/// Like [`solve_with_service`], warm-starting the bisection from
/// `seed` (a λ_eff guess, typically the converged value of a
/// neighbouring sweep point). Seeds outside the bracket are ignored,
/// so a wild guess degrades to the cold-start path.
pub fn solve_with_service_seeded(
    config: &SystemConfig,
    service: &ServiceTimes,
    seed: Option<f64>,
) -> Result<Equilibrium, ModelError> {
    let lambda = config.lambda_per_us;
    let n = config.total_nodes() as f64;

    // g(x) = lambda * (N - min(L(x), N)) / N, monotone non-increasing.
    let g = |x: f64| -> f64 {
        let l = total_waiting(config, service, x).unwrap_or(f64::INFINITY);
        lambda * (n - l.min(n)) / n
    };

    let sat = saturation_lambda(config, service);
    let hi = lambda.min(sat * (1.0 - 1e-12));
    let opts = SolverOptions {
        tolerance: (lambda * 1e-12).max(1e-300),
        max_iterations: 500,
        damping: 0.5,
    };
    let sol = bisect_seeded(|x| g(x) - x, 0.0, hi, seed, opts).map_err(|e| match e {
        hmcs_queueing::QueueingError::NoConvergence { residual, .. } => {
            ModelError::SolverFailed { residual }
        }
        other => ModelError::Queueing(other),
    })?;
    // The bisection can land a hair inside the clamp region near
    // saturation; back off to the stable side if needed.
    let (lambda_eff, backoff_steps) =
        back_off_to_stable(sol.value, |x| total_waiting(config, service, x).is_some())
            .ok_or(ModelError::SolverFailed { residual: f64::INFINITY })?;
    let total = total_waiting(config, service, lambda_eff)
        .ok_or(ModelError::SolverFailed { residual: f64::INFINITY })?;

    metrics::counter(keys::SOLVER_SOLVES).incr();
    metrics::histogram(keys::SOLVER_ITERATIONS).record(sol.iterations as u64);
    if lambda > 0.0 {
        metrics::histogram(keys::SOLVER_BRACKET_PPM).record_f64(hi / lambda * 1e6);
    }
    if backoff_steps > 0 {
        metrics::counter(keys::SOLVER_BACKOFF_ACTIVATIONS).incr();
        metrics::histogram(keys::SOLVER_BACKOFF_STEPS).record(backoff_steps as u64);
    }

    assemble_equilibrium(config, service, lambda_eff, total, sol.iterations)
}

/// Builds the converged [`Equilibrium`] from a solved effective rate.
/// Shared by the scalar solver and the batched kernel
/// ([`crate::kernel`]) so both paths assemble bit-identical results.
pub(crate) fn assemble_equilibrium(
    config: &SystemConfig,
    service: &ServiceTimes,
    lambda_eff: f64,
    total_waiting: f64,
    solver_iterations: usize,
) -> Result<Equilibrium, ModelError> {
    let lambda = config.lambda_per_us;
    let rates = TrafficRates::compute(config, lambda_eff);
    let make_center = |arrival: f64, service_us: f64| -> Result<CenterState, ModelError> {
        let dist = config.service_model.distribution(service_us);
        let (l, w) = if arrival > 0.0 {
            let q = MG1::new(arrival, dist)?;
            (q.mean_number_in_system(), q.mean_sojourn_time())
        } else {
            (0.0, service_us)
        };
        Ok(CenterState {
            arrival_rate: arrival,
            service_time_us: service_us,
            utilization: arrival * service_us,
            number_in_system: l,
            sojourn_us: w,
        })
    };

    Ok(Equilibrium {
        lambda_eff,
        rates,
        icn1: make_center(rates.icn1, service.icn1_us)?,
        ecn1: make_center(rates.ecn1_total, service.ecn1_us)?,
        icn2: make_center(rates.icn2, service.icn2_us)?,
        total_waiting,
        retained_fraction: lambda_eff / lambda,
        solver_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use hmcs_topology::transmission::Architecture;

    fn cfg(clusters: usize, arch: Architecture) -> SystemConfig {
        SystemConfig::paper_preset(Scenario::Case1, clusters, arch).unwrap()
    }

    #[test]
    fn light_load_barely_throttles() {
        // Literal Table-2 lambda: utilizations are tiny.
        let config = cfg(8, Architecture::NonBlocking)
            .with_lambda(crate::scenario::PAPER_LAMBDA_LITERAL_PER_US);
        let eq = solve(&config).unwrap();
        assert!(!eq.is_throttled());
        assert!(eq.retained_fraction > 0.999);
        assert!(eq.bottleneck_utilization() < 0.01);
        assert!(eq.total_waiting < 1.0);
    }

    #[test]
    fn fixed_point_satisfies_eq7() {
        for c in [1usize, 4, 16, 64, 256] {
            for arch in [Architecture::NonBlocking, Architecture::Blocking] {
                let config = cfg(c, arch);
                let eq = solve(&config).unwrap();
                let n = config.total_nodes() as f64;
                let rhs = config.lambda_per_us * (n - eq.total_waiting) / n;
                assert!(
                    (eq.lambda_eff - rhs).abs() < 1e-6 * config.lambda_per_us,
                    "eq. 7 violated at C={c} {arch:?}: {} vs {rhs}",
                    eq.lambda_eff
                );
            }
        }
    }

    #[test]
    fn all_centres_stable_at_equilibrium() {
        for c in crate::scenario::PAPER_CLUSTER_COUNTS {
            for arch in [Architecture::NonBlocking, Architecture::Blocking] {
                let eq = solve(&cfg(c, arch)).unwrap();
                assert!(eq.icn1.utilization < 1.0, "C={c} {arch:?} ICN1");
                assert!(eq.ecn1.utilization < 1.0, "C={c} {arch:?} ECN1");
                assert!(eq.icn2.utilization < 1.0, "C={c} {arch:?} ICN2");
                assert!(eq.lambda_eff > 0.0);
                assert!(eq.lambda_eff <= config_lambda(&cfg(c, arch)) + 1e-18);
            }
        }
    }

    fn config_lambda(c: &SystemConfig) -> f64 {
        c.lambda_per_us
    }

    #[test]
    fn blocking_throttles_harder_than_nonblocking() {
        // The slow blocking networks hold many more processors waiting.
        let nb = solve(&cfg(16, Architecture::NonBlocking)).unwrap();
        let bl = solve(&cfg(16, Architecture::Blocking)).unwrap();
        assert!(bl.lambda_eff < nb.lambda_eff);
        assert!(bl.total_waiting > nb.total_waiting);
    }

    #[test]
    fn single_cluster_has_idle_inter_cluster_tiers() {
        let eq = solve(&cfg(1, Architecture::NonBlocking)).unwrap();
        assert_eq!(eq.ecn1.arrival_rate, 0.0);
        assert_eq!(eq.icn2.arrival_rate, 0.0);
        assert_eq!(eq.ecn1.number_in_system, 0.0);
        assert!(eq.icn1.arrival_rate > 0.0);
    }

    #[test]
    fn accounting_variants_order_correctly() {
        // Paper-literal double-counts ECN1 occupancy => larger L =>
        // stronger throttling.
        let base = cfg(32, Architecture::NonBlocking);
        let literal = solve(&base.with_accounting(QueueAccounting::PaperLiteral)).unwrap();
        let single = solve(&base.with_accounting(QueueAccounting::SingleQueue)).unwrap();
        assert!(literal.total_waiting >= single.total_waiting);
        assert!(literal.lambda_eff <= single.lambda_eff + 1e-18);
    }

    #[test]
    fn saturation_lambda_closed_form() {
        let config = cfg(8, Architecture::NonBlocking);
        let service = ServiceTimes::compute(&config).unwrap();
        let sat = saturation_lambda(&config, &service);
        // Just below: all centres stable. Just above: some centre
        // unstable.
        assert!(total_waiting(&config, &service, sat * 0.999).is_some());
        assert!(total_waiting(&config, &service, sat * 1.001).is_none());
    }

    #[test]
    fn deterministic_service_reduces_waiting() {
        use crate::config::ServiceTimeModel;
        let exp = solve(&cfg(16, Architecture::NonBlocking)).unwrap();
        let det = solve(
            &cfg(16, Architecture::NonBlocking).with_service_model(ServiceTimeModel::Deterministic),
        )
        .unwrap();
        assert!(det.total_waiting < exp.total_waiting);
        assert!(det.lambda_eff > exp.lambda_eff);
    }

    #[test]
    fn back_off_reaches_beyond_old_fixed_step_budget() {
        // Regression: 128 fixed 1e-9 steps cap the retreat at ~1.28e-7
        // relative, so a boundary needing a 1e-5 retreat exhausted the
        // old guard and the solve failed. Doubling steps cover it.
        let boundary = 1.0 - 1e-5;
        let (stable, steps) = back_off_to_stable(1.0, |x| x < boundary).unwrap();
        assert!(stable < boundary);
        assert!(
            steps > 0 && steps <= 30,
            "geometric retreat should need O(log) probes, took {steps}"
        );
        // The old loop could not have got here: even its full budget
        // retreats less than this boundary requires.
        let old_budget_floor = (1.0f64 - 1e-9).powi(128);
        assert!(old_budget_floor > boundary, "test boundary must defeat the old fixed loop");
    }

    #[test]
    fn back_off_is_noop_when_already_stable() {
        assert_eq!(back_off_to_stable(0.5, |_| true), Some((0.5, 0)));
    }

    #[test]
    fn back_off_gives_up_on_infeasible_rates() {
        assert_eq!(back_off_to_stable(1.0, |_| false), None);
    }

    #[test]
    fn back_off_takes_smallest_sufficient_retreat() {
        // A one-ulp-style overshoot should still resolve in one step of
        // the original 1e-9 size, keeping the common case unchanged.
        let boundary = 1.0 - 5e-10;
        let (stable, steps) = back_off_to_stable(1.0, |x| x < boundary).unwrap();
        assert_eq!(steps, 1);
        assert!((stable - (1.0 - 1e-9)).abs() < 1e-15);
    }

    #[test]
    fn heavy_overload_retains_little() {
        // lambda 100x the figure-scale rate: deep saturation; the fixed
        // point still exists and the retained fraction is small.
        let config = cfg(256, Architecture::Blocking).with_lambda(2.5e-2);
        let eq = solve(&config).unwrap();
        assert!(eq.is_throttled());
        assert!(eq.retained_fraction < 0.1);
        assert!(eq.bottleneck_utilization() < 1.0);
        // Most processors are waiting.
        assert!(eq.total_waiting > 0.8 * 256.0);
    }
}
