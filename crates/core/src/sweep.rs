//! Parameter sweeps — the x-axes of the paper's figures and of the
//! design-space exploration the introduction motivates.

use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::model::{AnalyticalModel, PerformanceReport};
use crate::scenario::{Scenario, PAPER_CLUSTER_COUNTS, PAPER_TOTAL_NODES};
use hmcs_topology::switch::SwitchFabric;
use hmcs_topology::transmission::Architecture;

/// One point of a sweep: the varied value and the model output.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint<T> {
    /// The swept parameter's value at this point.
    pub x: T,
    /// The model evaluation at this point.
    pub report: PerformanceReport,
}

/// Sweeps the cluster count at fixed total node count (the figures'
/// x-axis). Each `clusters` entry must divide `total_nodes`.
pub fn cluster_sweep(
    base: &SystemConfig,
    total_nodes: usize,
    cluster_counts: &[usize],
) -> Result<Vec<SweepPoint<usize>>, ModelError> {
    let mut out = Vec::with_capacity(cluster_counts.len());
    for &c in cluster_counts {
        if c == 0 || !total_nodes.is_multiple_of(c) {
            return Err(ModelError::InvalidConfig {
                name: "cluster_counts",
                reason: "every cluster count must divide the total node count",
            });
        }
        let mut cfg = *base;
        cfg.clusters = c;
        cfg.nodes_per_cluster = total_nodes / c;
        out.push(SweepPoint { x: c, report: AnalyticalModel::evaluate(&cfg)? });
    }
    Ok(out)
}

/// The paper's figure sweep: 256 nodes, `C ∈ {1, 2, …, 256}`.
pub fn paper_cluster_sweep(
    scenario: Scenario,
    architecture: Architecture,
    message_bytes: u64,
    lambda_per_us: f64,
) -> Result<Vec<SweepPoint<usize>>, ModelError> {
    let base = SystemConfig::paper_preset(scenario, 1, architecture)?
        .with_message_bytes(message_bytes)
        .with_lambda(lambda_per_us);
    cluster_sweep(&base, PAPER_TOTAL_NODES, &PAPER_CLUSTER_COUNTS)
}

/// Sweeps the message size at a fixed shape.
pub fn message_size_sweep(
    base: &SystemConfig,
    sizes: &[u64],
) -> Result<Vec<SweepPoint<u64>>, ModelError> {
    sizes
        .iter()
        .map(|&m| {
            let cfg = base.with_message_bytes(m);
            Ok(SweepPoint { x: m, report: AnalyticalModel::evaluate(&cfg)? })
        })
        .collect()
}

/// Sweeps the per-processor generation rate (λ) at a fixed shape —
/// useful for locating the saturation knee.
pub fn lambda_sweep(
    base: &SystemConfig,
    lambdas_per_us: &[f64],
) -> Result<Vec<SweepPoint<f64>>, ModelError> {
    lambdas_per_us
        .iter()
        .map(|&l| {
            let cfg = base.with_lambda(l);
            Ok(SweepPoint { x: l, report: AnalyticalModel::evaluate(&cfg)? })
        })
        .collect()
}

/// Sweeps the switch port count (design-space exploration: how big a
/// switch fabric is worth buying?).
pub fn switch_ports_sweep(
    base: &SystemConfig,
    port_counts: &[u32],
) -> Result<Vec<SweepPoint<u32>>, ModelError> {
    port_counts
        .iter()
        .map(|&p| {
            let switch = SwitchFabric::new(p, base.switch.latency_us())?;
            let cfg = base.with_switch(switch);
            Ok(SweepPoint { x: p, report: AnalyticalModel::evaluate(&cfg)? })
        })
        .collect()
}

/// Sweeps a technology assignment over the three tiers (the paper's
/// "technology heterogeneity" future work): evaluates every combination
/// of the given technologies for ICN1 and for the ECN1/ICN2 pair.
pub fn technology_sweep(
    base: &SystemConfig,
    technologies: &[hmcs_topology::technology::NetworkTechnology],
) -> Result<Vec<SweepPoint<(&'static str, &'static str)>>, ModelError> {
    let mut out = Vec::with_capacity(technologies.len() * technologies.len());
    for &intra in technologies {
        for &inter in technologies {
            let mut cfg = *base;
            cfg.icn1 = intra;
            cfg.ecn1 = inter;
            cfg.icn2 = inter;
            out.push(SweepPoint {
                x: (intra.name, inter.name),
                report: AnalyticalModel::evaluate(&cfg)?,
            });
        }
    }
    Ok(out)
}

/// Finds the largest per-processor rate (messages/µs) whose predicted
/// mean latency stays at or below `latency_budget_us`, by bisection over
/// `[lo, hi]`. Returns `None` when even `lo` violates the budget.
///
/// Capacity-planning helper: "how much traffic can this design absorb
/// within an SLO?"
pub fn max_lambda_within_latency(
    base: &SystemConfig,
    latency_budget_us: f64,
    lo: f64,
    hi: f64,
    iterations: u32,
) -> Result<Option<f64>, ModelError> {
    let latency_at = |lam: f64| -> Result<f64, ModelError> {
        Ok(AnalyticalModel::evaluate(&base.with_lambda(lam))?
            .latency
            .mean_message_latency_us)
    };
    if latency_at(lo)? > latency_budget_us {
        return Ok(None);
    }
    let (mut lo, mut hi) = (lo, hi);
    if latency_at(hi)? <= latency_budget_us {
        return Ok(Some(hi));
    }
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        if latency_at(mid)? <= latency_budget_us {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PAPER_LAMBDA_PER_US;

    #[test]
    fn paper_sweep_covers_all_cluster_counts() {
        let pts = paper_cluster_sweep(
            Scenario::Case1,
            Architecture::NonBlocking,
            1024,
            PAPER_LAMBDA_PER_US,
        )
        .unwrap();
        assert_eq!(pts.len(), 9);
        assert_eq!(pts[0].x, 1);
        assert_eq!(pts[8].x, 256);
        for p in &pts {
            assert!(p.report.latency.mean_message_latency_us > 0.0);
        }
    }

    #[test]
    fn cluster_sweep_rejects_non_divisors() {
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 1, Architecture::NonBlocking).unwrap();
        assert!(cluster_sweep(&base, 256, &[3]).is_err());
        assert!(cluster_sweep(&base, 256, &[0]).is_err());
    }

    #[test]
    fn message_sweep_is_monotone() {
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
        let pts = message_size_sweep(&base, &[128, 256, 512, 1024, 2048]).unwrap();
        for w in pts.windows(2) {
            assert!(
                w[1].report.latency.mean_message_latency_us
                    > w[0].report.latency.mean_message_latency_us
            );
        }
    }

    #[test]
    fn lambda_sweep_is_monotone() {
        let base =
            SystemConfig::paper_preset(Scenario::Case2, 8, Architecture::NonBlocking).unwrap();
        let pts = lambda_sweep(&base, &[1e-6, 1e-5, 1e-4, 5e-4]).unwrap();
        for w in pts.windows(2) {
            assert!(
                w[1].report.latency.mean_message_latency_us
                    >= w[0].report.latency.mean_message_latency_us
            );
        }
    }

    #[test]
    fn bigger_switches_never_hurt_lightly_loaded_latency() {
        // At light load, fewer fat-tree stages mean strictly fewer switch
        // hops and hence lower latency.
        let base = SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking)
            .unwrap()
            .with_lambda(crate::scenario::PAPER_LAMBDA_LITERAL_PER_US);
        let pts = switch_ports_sweep(&base, &[8, 16, 24, 48, 64]).unwrap();
        for w in pts.windows(2) {
            assert!(
                w[1].report.latency.mean_message_latency_us
                    <= w[0].report.latency.mean_message_latency_us + 1e-9,
                "more ports should not increase lightly-loaded fat-tree latency"
            );
        }
    }

    #[test]
    fn bigger_switches_raise_throughput_under_saturation() {
        // Under heavy load the system is ICN2-bound; faster access tiers
        // release throttled sources, so throughput must not decrease —
        // even though mean latency can *increase* as the bottleneck
        // absorbs the extra offered load. This is a real property of the
        // flow-blocking feedback worth pinning down.
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking).unwrap();
        let pts = switch_ports_sweep(&base, &[8, 24, 48]).unwrap();
        for w in pts.windows(2) {
            assert!(
                w[1].report.throughput_per_us >= w[0].report.throughput_per_us - 1e-12,
                "more ports should not reduce delivered throughput"
            );
        }
    }

    #[test]
    fn technology_sweep_covers_the_grid_and_orders_sanely() {
        use hmcs_topology::technology::NetworkTechnology;
        let base = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking)
            .unwrap()
            .with_lambda(crate::scenario::PAPER_LAMBDA_LITERAL_PER_US);
        let techs = [
            NetworkTechnology::FAST_ETHERNET,
            NetworkTechnology::GIGABIT_ETHERNET,
            NetworkTechnology::MYRINET,
        ];
        let pts = technology_sweep(&base, &techs).unwrap();
        assert_eq!(pts.len(), 9);
        // At light load the all-Myrinet system must beat the all-FE one.
        let lat = |intra: &str, inter: &str| {
            pts.iter()
                .find(|p| p.x == (intra, inter))
                .unwrap()
                .report
                .latency
                .mean_message_latency_us
        };
        assert!(lat("Myrinet", "Myrinet") < lat("Fast Ethernet", "Fast Ethernet"));
        // With mostly-external traffic at C=16, upgrading the inter tier
        // helps more than upgrading the intra tier.
        let upgrade_inter = lat("Fast Ethernet", "Myrinet");
        let upgrade_intra = lat("Myrinet", "Fast Ethernet");
        assert!(upgrade_inter < upgrade_intra);
    }

    #[test]
    fn capacity_planning_finds_a_feasible_rate() {
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
        // Budget comfortably above the zero-load latency.
        let budget = 5_000.0; // 5 ms
        let best = max_lambda_within_latency(&base, budget, 1e-8, 1e-2, 60)
            .unwrap()
            .expect("low rate must fit the budget");
        // The found rate meets the budget...
        let at_best = AnalyticalModel::evaluate(&base.with_lambda(best)).unwrap();
        assert!(at_best.latency.mean_message_latency_us <= budget * 1.001);
        // ...and slightly more violates it.
        let above = AnalyticalModel::evaluate(&base.with_lambda(best * 1.05)).unwrap();
        assert!(above.latency.mean_message_latency_us > budget * 0.999);
    }

    #[test]
    fn capacity_planning_detects_impossible_budgets() {
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
        // Budget below the zero-load service time: impossible.
        let none = max_lambda_within_latency(&base, 1.0, 1e-9, 1e-3, 40).unwrap();
        assert!(none.is_none());
    }
}
