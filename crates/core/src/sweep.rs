//! Parameter sweeps — the x-axes of the paper's figures and of the
//! design-space exploration the introduction motivates.
//!
//! All sweeps run on the batched structure-of-arrays kernel
//! ([`crate::kernel`]): shape sweeps (clusters, message size, switch
//! ports, technology) evaluate their points through
//! [`crate::batch::evaluate_many`] on the bounded worker pool, while
//! λ-sweeps compute the λ-independent [`ServiceTimes`] once per shape
//! and advance every point's bisection in lockstep lanes of a single
//! kernel.

use crate::batch::{self, BatchOptions, EvalStats};
use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::model::PerformanceReport;
use crate::scenario::{Scenario, PAPER_CLUSTER_COUNTS, PAPER_TOTAL_NODES};
use crate::service::ServiceTimes;
use hmcs_topology::switch::SwitchFabric;
use hmcs_topology::transmission::Architecture;

/// One point of a sweep: the varied value and the model output.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint<T> {
    /// The swept parameter's value at this point.
    pub x: T,
    /// The model evaluation at this point.
    pub report: PerformanceReport,
    /// Evaluation cost of this point (timing and solver iterations).
    pub stats: EvalStats,
}

/// Zips x-values with batch results into sweep points, propagating the
/// first evaluation error.
fn collect_points<T>(
    xs: Vec<T>,
    results: Vec<Result<(PerformanceReport, EvalStats), ModelError>>,
) -> Result<Vec<SweepPoint<T>>, ModelError> {
    xs.into_iter()
        .zip(results)
        .map(|(x, r)| r.map(|(report, stats)| SweepPoint { x, report, stats }))
        .collect()
}

/// Sweeps the cluster count at fixed total node count (the figures'
/// x-axis). Each `clusters` entry must divide `total_nodes`.
pub fn cluster_sweep(
    base: &SystemConfig,
    total_nodes: usize,
    cluster_counts: &[usize],
) -> Result<Vec<SweepPoint<usize>>, ModelError> {
    cluster_sweep_with(base, total_nodes, cluster_counts, BatchOptions::default())
}

/// [`cluster_sweep`] with an explicit worker policy.
pub fn cluster_sweep_with(
    base: &SystemConfig,
    total_nodes: usize,
    cluster_counts: &[usize],
    options: BatchOptions,
) -> Result<Vec<SweepPoint<usize>>, ModelError> {
    let mut configs = Vec::with_capacity(cluster_counts.len());
    for &c in cluster_counts {
        if c == 0 || !total_nodes.is_multiple_of(c) {
            return Err(ModelError::InvalidConfig {
                name: "cluster_counts",
                reason: "every cluster count must divide the total node count",
            });
        }
        let mut cfg = *base;
        cfg.clusters = c;
        cfg.nodes_per_cluster = total_nodes / c;
        configs.push(cfg);
    }
    collect_points(cluster_counts.to_vec(), batch::evaluate_many(&configs, options))
}

/// The paper's figure sweep: 256 nodes, `C ∈ {1, 2, …, 256}`.
pub fn paper_cluster_sweep(
    scenario: Scenario,
    architecture: Architecture,
    message_bytes: u64,
    lambda_per_us: f64,
) -> Result<Vec<SweepPoint<usize>>, ModelError> {
    let base = SystemConfig::paper_preset(scenario, 1, architecture)?
        .with_message_bytes(message_bytes)
        .with_lambda(lambda_per_us);
    cluster_sweep(&base, PAPER_TOTAL_NODES, &PAPER_CLUSTER_COUNTS)
}

/// Sweeps the message size at a fixed shape.
pub fn message_size_sweep(
    base: &SystemConfig,
    sizes: &[u64],
) -> Result<Vec<SweepPoint<u64>>, ModelError> {
    message_size_sweep_with(base, sizes, BatchOptions::default())
}

/// [`message_size_sweep`] with an explicit worker policy, for callers
/// that already provide their own parallelism (e.g. the serving
/// daemon's worker pool runs each request's sweep sequentially).
pub fn message_size_sweep_with(
    base: &SystemConfig,
    sizes: &[u64],
    options: BatchOptions,
) -> Result<Vec<SweepPoint<u64>>, ModelError> {
    let configs: Vec<SystemConfig> = sizes.iter().map(|&m| base.with_message_bytes(m)).collect();
    collect_points(sizes.to_vec(), batch::evaluate_many(&configs, options))
}

/// Sweeps the per-processor generation rate (λ) at a fixed shape —
/// useful for locating the saturation knee.
///
/// The λ-independent service times are computed once for the shared
/// shape, then one [`crate::kernel::BatchKernel`] advances every
/// point's cold-start bisection in lockstep — each point is
/// bit-identical to an independent `evaluate_one(cfg, Some(&service),
/// None)` evaluation. (The former warm-started serial chain agreed
/// with cold starts only to the solver's 1e-13 relative convergence;
/// the kernel removes that slack along with the serial dependency.)
pub fn lambda_sweep(
    base: &SystemConfig,
    lambdas_per_us: &[f64],
) -> Result<Vec<SweepPoint<f64>>, ModelError> {
    base.validate()?;
    let service = ServiceTimes::compute(base)?;
    let configs: Vec<SystemConfig> = lambdas_per_us.iter().map(|&l| base.with_lambda(l)).collect();
    let results = crate::kernel::BatchKernel::with_service(&configs, &service).solve();
    collect_points(lambdas_per_us.to_vec(), results)
}

/// Sweeps the switch port count (design-space exploration: how big a
/// switch fabric is worth buying?).
pub fn switch_ports_sweep(
    base: &SystemConfig,
    port_counts: &[u32],
) -> Result<Vec<SweepPoint<u32>>, ModelError> {
    let configs = port_counts
        .iter()
        .map(|&p| {
            let switch = SwitchFabric::new(p, base.switch.latency_us())?;
            Ok(base.with_switch(switch))
        })
        .collect::<Result<Vec<_>, ModelError>>()?;
    collect_points(port_counts.to_vec(), batch::evaluate_many(&configs, BatchOptions::default()))
}

/// Sweeps a technology assignment over the three tiers (the paper's
/// "technology heterogeneity" future work): evaluates every combination
/// of the given technologies for ICN1 and for the ECN1/ICN2 pair.
pub fn technology_sweep(
    base: &SystemConfig,
    technologies: &[hmcs_topology::technology::NetworkTechnology],
) -> Result<Vec<SweepPoint<(&'static str, &'static str)>>, ModelError> {
    let mut xs = Vec::with_capacity(technologies.len() * technologies.len());
    let mut configs = Vec::with_capacity(xs.capacity());
    for &intra in technologies {
        for &inter in technologies {
            let mut cfg = *base;
            cfg.icn1 = intra;
            cfg.ecn1 = inter;
            cfg.icn2 = inter;
            xs.push((intra.name, inter.name));
            configs.push(cfg);
        }
    }
    collect_points(xs, batch::evaluate_many(&configs, BatchOptions::default()))
}

/// Finds the largest per-processor rate (messages/µs) whose predicted
/// mean latency stays at or below `latency_budget_us`, clamped to the
/// caller's `[lo, hi]` search window. Returns `None` when `lo` already
/// violates the budget.
///
/// Capacity-planning helper: "how much traffic can this design absorb
/// within an SLO?" Since PR 9 this delegates to the Newton-polished
/// [`crate::sensitivity::lambda_for_latency`] probe — one
/// implementation of "max λ within SLO" shared with the optimizer —
/// and clamps its answer to the window: latency is monotone in the
/// offered rate, so a crossing above `hi` means `hi` itself fits and a
/// crossing below `lo` means even `lo` violates the budget.
/// `iterations` is kept for signature compatibility with the former
/// serial bisection; the Newton polish converges to a `1e-12` relative
/// bracket regardless.
pub fn max_lambda_within_latency(
    base: &SystemConfig,
    latency_budget_us: f64,
    lo: f64,
    hi: f64,
    _iterations: u32,
) -> Result<Option<f64>, ModelError> {
    base.validate()?;
    match crate::sensitivity::lambda_for_latency(base, latency_budget_us)? {
        None => Ok(None),
        Some(best) if best < lo => Ok(None),
        Some(best) if best > hi => Ok(Some(hi)),
        Some(best) => Ok(Some(best)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AnalyticalModel;
    use crate::scenario::PAPER_LAMBDA_PER_US;

    #[test]
    fn paper_sweep_covers_all_cluster_counts() {
        let pts = paper_cluster_sweep(
            Scenario::Case1,
            Architecture::NonBlocking,
            1024,
            PAPER_LAMBDA_PER_US,
        )
        .unwrap();
        assert_eq!(pts.len(), 9);
        assert_eq!(pts[0].x, 1);
        assert_eq!(pts[8].x, 256);
        for p in &pts {
            assert!(p.report.latency.mean_message_latency_us > 0.0);
            assert!(p.stats.solver_iterations > 0);
        }
    }

    #[test]
    fn cluster_sweep_rejects_non_divisors() {
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 1, Architecture::NonBlocking).unwrap();
        assert!(cluster_sweep(&base, 256, &[3]).is_err());
        assert!(cluster_sweep(&base, 256, &[0]).is_err());
    }

    #[test]
    fn parallel_cluster_sweep_matches_sequential_exactly() {
        let base = SystemConfig::paper_preset(Scenario::Case2, 1, Architecture::Blocking).unwrap();
        let seq = cluster_sweep_with(&base, 256, &PAPER_CLUSTER_COUNTS, BatchOptions::sequential())
            .unwrap();
        let par =
            cluster_sweep_with(&base, 256, &PAPER_CLUSTER_COUNTS, BatchOptions::with_workers(4))
                .unwrap();
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.x, p.x);
            assert_eq!(s.report, p.report);
        }
    }

    #[test]
    fn message_sweep_is_monotone() {
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
        let pts = message_size_sweep(&base, &[128, 256, 512, 1024, 2048]).unwrap();
        for w in pts.windows(2) {
            assert!(
                w[1].report.latency.mean_message_latency_us
                    > w[0].report.latency.mean_message_latency_us
            );
        }
    }

    #[test]
    fn lambda_sweep_is_monotone() {
        let base =
            SystemConfig::paper_preset(Scenario::Case2, 8, Architecture::NonBlocking).unwrap();
        let pts = lambda_sweep(&base, &[1e-6, 1e-5, 1e-4, 5e-4]).unwrap();
        for w in pts.windows(2) {
            assert!(
                w[1].report.latency.mean_message_latency_us
                    >= w[0].report.latency.mean_message_latency_us
            );
        }
    }

    #[test]
    fn warm_started_lambda_sweep_matches_cold_start() {
        // The warm chain must land on the same fixed point as
        // independent cold-start evaluations, within the solver's
        // relative convergence budget.
        let base = SystemConfig::paper_preset(Scenario::Case1, 32, Architecture::Blocking).unwrap();
        let lambdas = [1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 2.5e-4, 1e-3];
        let warm = lambda_sweep(&base, &lambdas).unwrap();
        for (pt, &l) in warm.iter().zip(&lambdas) {
            let cold = AnalyticalModel::evaluate(&base.with_lambda(l)).unwrap();
            let rel = (pt.report.equilibrium.lambda_eff - cold.equilibrium.lambda_eff).abs()
                / cold.equilibrium.lambda_eff;
            assert!(rel <= 1e-12, "λ={l}: warm-start drifted by {rel}");
        }
    }

    #[test]
    fn bigger_switches_never_hurt_lightly_loaded_latency() {
        // At light load, fewer fat-tree stages mean strictly fewer switch
        // hops and hence lower latency.
        let base = SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking)
            .unwrap()
            .with_lambda(crate::scenario::PAPER_LAMBDA_LITERAL_PER_US);
        let pts = switch_ports_sweep(&base, &[8, 16, 24, 48, 64]).unwrap();
        for w in pts.windows(2) {
            assert!(
                w[1].report.latency.mean_message_latency_us
                    <= w[0].report.latency.mean_message_latency_us + 1e-9,
                "more ports should not increase lightly-loaded fat-tree latency"
            );
        }
    }

    #[test]
    fn bigger_switches_raise_throughput_under_saturation() {
        // Under heavy load the system is ICN2-bound; faster access tiers
        // release throttled sources, so throughput must not decrease —
        // even though mean latency can *increase* as the bottleneck
        // absorbs the extra offered load. This is a real property of the
        // flow-blocking feedback worth pinning down.
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 8, Architecture::NonBlocking).unwrap();
        let pts = switch_ports_sweep(&base, &[8, 24, 48]).unwrap();
        for w in pts.windows(2) {
            assert!(
                w[1].report.throughput_per_us >= w[0].report.throughput_per_us - 1e-12,
                "more ports should not reduce delivered throughput"
            );
        }
    }

    #[test]
    fn technology_sweep_covers_the_grid_and_orders_sanely() {
        use hmcs_topology::technology::NetworkTechnology;
        let base = SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking)
            .unwrap()
            .with_lambda(crate::scenario::PAPER_LAMBDA_LITERAL_PER_US);
        let techs = [
            NetworkTechnology::FAST_ETHERNET,
            NetworkTechnology::GIGABIT_ETHERNET,
            NetworkTechnology::MYRINET,
        ];
        let pts = technology_sweep(&base, &techs).unwrap();
        assert_eq!(pts.len(), 9);
        // At light load the all-Myrinet system must beat the all-FE one.
        let lat = |intra: &str, inter: &str| {
            pts.iter()
                .find(|p| p.x == (intra, inter))
                .unwrap()
                .report
                .latency
                .mean_message_latency_us
        };
        assert!(lat("Myrinet", "Myrinet") < lat("Fast Ethernet", "Fast Ethernet"));
        // With mostly-external traffic at C=16, upgrading the inter tier
        // helps more than upgrading the intra tier.
        let upgrade_inter = lat("Fast Ethernet", "Myrinet");
        let upgrade_intra = lat("Myrinet", "Fast Ethernet");
        assert!(upgrade_inter < upgrade_intra);
    }

    #[test]
    fn capacity_planning_finds_a_feasible_rate() {
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
        // Budget comfortably above the zero-load latency.
        let budget = 5_000.0; // 5 ms
        let best = max_lambda_within_latency(&base, budget, 1e-8, 1e-2, 60)
            .unwrap()
            .expect("low rate must fit the budget");
        // The found rate meets the budget...
        let at_best = AnalyticalModel::evaluate(&base.with_lambda(best)).unwrap();
        assert!(at_best.latency.mean_message_latency_us <= budget * 1.001);
        // ...and slightly more violates it.
        let above = AnalyticalModel::evaluate(&base.with_lambda(best * 1.05)).unwrap();
        assert!(above.latency.mean_message_latency_us > budget * 0.999);
    }

    #[test]
    fn capacity_planning_detects_impossible_budgets() {
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
        // Budget below the zero-load service time: impossible.
        let none = max_lambda_within_latency(&base, 1.0, 1e-9, 1e-3, 40).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn capacity_planning_is_the_newton_probe_clamped_to_the_window() {
        // One implementation of "max λ within SLO": the planner must
        // return exactly the Newton-polished probe's answer when the
        // crossing is inside the window, and the window edge when it
        // is not.
        let base =
            SystemConfig::paper_preset(Scenario::Case1, 16, Architecture::NonBlocking).unwrap();
        let budget = 5_000.0;
        let newton = crate::sensitivity::lambda_for_latency(&base, budget).unwrap().unwrap();
        let planned = max_lambda_within_latency(&base, budget, 1e-8, 1e-2, 60).unwrap().unwrap();
        assert_eq!(planned.to_bits(), newton.to_bits(), "planner diverged from the probe");
        // Window entirely below the crossing → the feasible edge.
        let clamped =
            max_lambda_within_latency(&base, budget, 1e-8, newton * 0.5, 60).unwrap().unwrap();
        assert_eq!(clamped.to_bits(), (newton * 0.5).to_bits());
        // Window entirely above the crossing → infeasible.
        let none =
            max_lambda_within_latency(&base, budget, newton * 2.0, newton * 4.0, 60).unwrap();
        assert!(none.is_none());
    }
}
