//! Property tests for the batch-evaluation engine: parallel execution
//! must never change results, and warm-started bisection must land on
//! the cold-start fixed point.

use hmcs_core::batch::{self, BatchOptions};
use hmcs_core::config::SystemConfig;
use hmcs_core::metrics;
use hmcs_core::model::AnalyticalModel;
use hmcs_core::scenario::{Scenario, PAPER_CLUSTER_COUNTS, PAPER_TOTAL_NODES};
use hmcs_core::sweep;
use hmcs_topology::transmission::Architecture;
use proptest::prelude::*;

/// Re-enables metric recording on drop, so a failing assertion can't
/// leave the process-global flag off for later tests in this binary.
struct MetricsGuard;

impl Drop for MetricsGuard {
    fn drop(&mut self) {
        metrics::set_enabled(true);
    }
}

fn any_scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![Just(Scenario::Case1), Just(Scenario::Case2)]
}

fn any_architecture() -> impl Strategy<Value = Architecture> {
    prop_oneof![Just(Architecture::NonBlocking), Just(Architecture::Blocking)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full paper cluster grid, evaluated in parallel, is
    /// bit-identical to the sequential evaluation — every f64 of every
    /// report compares equal, not merely close.
    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential(
        scenario in any_scenario(),
        arch in any_architecture(),
        message_bytes in prop_oneof![Just(512u64), Just(1024u64)],
        lambda_exp in -6.0f64..-3.0,
        workers in 2usize..6,
    ) {
        let base = SystemConfig::paper_preset(scenario, 1, arch)
            .unwrap()
            .with_message_bytes(message_bytes)
            .with_lambda(10f64.powf(lambda_exp));
        let seq = sweep::cluster_sweep_with(
            &base, PAPER_TOTAL_NODES, &PAPER_CLUSTER_COUNTS, BatchOptions::sequential(),
        ).unwrap();
        let par = sweep::cluster_sweep_with(
            &base, PAPER_TOTAL_NODES, &PAPER_CLUSTER_COUNTS, BatchOptions::with_workers(workers),
        ).unwrap();
        prop_assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            prop_assert_eq!(s.x, p.x);
            // PerformanceReport is PartialEq over all its floats:
            // exact equality, no tolerance.
            prop_assert_eq!(s.report, p.report);
        }
    }

    /// A λ-sweep's warm-started chain lands on the same fixed point as
    /// independent cold-start evaluations, within the solver's 1e-12
    /// relative budget, for any shape on the paper grid.
    #[test]
    fn warm_started_bisection_matches_cold_start(
        scenario in any_scenario(),
        arch in any_architecture(),
        cluster_idx in 0usize..PAPER_CLUSTER_COUNTS.len(),
        lambda_lo_exp in -6.0f64..-4.5,
    ) {
        let clusters = PAPER_CLUSTER_COUNTS[cluster_idx];
        let base = SystemConfig::paper_preset(scenario, clusters, arch).unwrap();
        // A geometric ramp from light load up through the saturation
        // knee — neighbouring λ_eff values seed each other.
        let lambdas: Vec<f64> =
            (0..8).map(|i| 10f64.powf(lambda_lo_exp + 0.45 * i as f64)).collect();
        let warm = sweep::lambda_sweep(&base, &lambdas).unwrap();
        for (pt, &l) in warm.iter().zip(&lambdas) {
            let (cold, _) = batch::evaluate_one(&base.with_lambda(l), None, None).unwrap();
            let rel = (pt.report.equilibrium.lambda_eff - cold.equilibrium.lambda_eff).abs()
                / cold.equilibrium.lambda_eff;
            prop_assert!(
                rel <= 1e-12,
                "λ={l} C={clusters} {scenario:?} {arch:?}: warm drift {rel}"
            );
        }
    }

    /// A metrics-instrumented parallel sweep is bit-identical to the
    /// uninstrumented sequential path: recording counters/histograms
    /// observes the computation but must never feed back into it.
    #[test]
    fn instrumented_sweep_is_bit_identical_to_uninstrumented(
        scenario in any_scenario(),
        arch in any_architecture(),
        message_bytes in prop_oneof![Just(512u64), Just(1024u64)],
        lambda_exp in -6.0f64..-3.0,
        workers in 2usize..6,
    ) {
        let base = SystemConfig::paper_preset(scenario, 1, arch)
            .unwrap()
            .with_message_bytes(message_bytes)
            .with_lambda(10f64.powf(lambda_exp));

        let _guard = MetricsGuard;
        metrics::set_enabled(false);
        let uninstrumented = sweep::cluster_sweep_with(
            &base, PAPER_TOTAL_NODES, &PAPER_CLUSTER_COUNTS, BatchOptions::sequential(),
        ).unwrap();

        metrics::set_enabled(true);
        let solves_before = metrics::counter(metrics::keys::SOLVER_SOLVES).get();
        let instrumented = sweep::cluster_sweep_with(
            &base, PAPER_TOTAL_NODES, &PAPER_CLUSTER_COUNTS, BatchOptions::with_workers(workers),
        ).unwrap();
        let solves_after = metrics::counter(metrics::keys::SOLVER_SOLVES).get();

        prop_assert!(
            solves_after >= solves_before + PAPER_CLUSTER_COUNTS.len() as u64,
            "instrumented run must record its solves"
        );
        prop_assert_eq!(uninstrumented.len(), instrumented.len());
        for (u, i) in uninstrumented.iter().zip(&instrumented) {
            prop_assert_eq!(u.x, i.x);
            // Exact f64 equality across every field of the report.
            prop_assert_eq!(u.report, i.report);
        }
    }

    /// Replication-style fan-out through par_map preserves order and
    /// content for arbitrary worker counts and item counts.
    #[test]
    fn par_map_is_order_preserving(
        len in 0usize..64,
        workers in 1usize..9,
        offset in 0u64..1000,
    ) {
        let items: Vec<u64> = (0..len as u64).map(|i| i + offset).collect();
        let out = batch::par_map(&items, workers, |&x| x * 3 + 1);
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        prop_assert_eq!(out, expected);
    }
}

/// The cold path of [`AnalyticalModel::evaluate`] and the batch engine's
/// unseeded path are the same code: one non-proptest spot check that the
/// facade and the engine agree exactly.
#[test]
fn facade_and_engine_agree() {
    for arch in [Architecture::NonBlocking, Architecture::Blocking] {
        let cfg = SystemConfig::paper_preset(Scenario::Case1, 16, arch).unwrap();
        let facade = AnalyticalModel::evaluate(&cfg).unwrap();
        let (engine, stats) = batch::evaluate_one(&cfg, None, None).unwrap();
        assert_eq!(facade, engine);
        assert!(stats.solver_iterations > 0);
        assert_eq!(stats.solver_iterations, engine.equilibrium.solver_iterations);
    }
}
