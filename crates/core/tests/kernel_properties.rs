//! Seeded differential fuzz of the batched SoA kernel: every lane of a
//! multi-configuration [`BatchKernel`] solve must be bit-identical
//! (`f64::to_bits`, not merely close) to the scalar per-point path on
//! the same configuration.
//!
//! Follows the conventions of the simulation fuzzer in
//! `crates/bench/src/differential.rs`: a seeded sampler over the
//! model's 16–512-processor validity region, a greedy shrinker that
//! walks a failing case down to a minimal still-failing configuration,
//! and a ready-to-paste regression snippet in the panic message.

use hmcs_core::batch::{self, EvalStats};
use hmcs_core::config::{ServiceTimeModel, SystemConfig};
use hmcs_core::error::ModelError;
use hmcs_core::kernel::BatchKernel;
use hmcs_core::model::PerformanceReport;
use hmcs_core::scenario::Scenario;
use hmcs_core::service::ServiceTimes;
use hmcs_core::solver::saturation_lambda;
use hmcs_topology::transmission::Architecture;

/// SplitMix64, the same generator family the DES crate seeds its
/// streams with — local because hmcs-core must not depend on it.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64, stream: u64) -> Self {
        SplitMix64(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn uniform_below(&mut self, n: usize) -> usize {
        (self.uniform() * n as f64) as usize % n
    }
}

/// One sampled point in configuration space; the offered rate is a
/// utilization fraction of the saturation rate so shrinking a dimension
/// keeps the system at the same relative load.
#[derive(Debug, Clone, Copy)]
struct KernelCase {
    clusters: usize,
    nodes_per_cluster: usize,
    message_bytes: u64,
    scenario: Scenario,
    architecture: Architecture,
    service_model: ServiceTimeModel,
    utilization: f64,
}

const CLUSTER_CHOICES: [usize; 10] = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32];
const NODE_CHOICES: [usize; 8] = [2, 3, 4, 6, 8, 16, 32, 64];
const BYTE_CHOICES: [u64; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

fn sample_case(seed: u64, index: u32) -> KernelCase {
    let mut rng = SplitMix64::new(seed, u64::from(index));
    let mut clusters = CLUSTER_CHOICES[rng.uniform_below(CLUSTER_CHOICES.len())];
    let mut nodes = NODE_CHOICES[rng.uniform_below(NODE_CHOICES.len())];
    // The same validity region the simulation fuzzer samples.
    while !(16..=512).contains(&(clusters * nodes)) {
        nodes = NODE_CHOICES[rng.uniform_below(NODE_CHOICES.len())];
        clusters = CLUSTER_CHOICES[rng.uniform_below(CLUSTER_CHOICES.len())];
    }
    let message_bytes = BYTE_CHOICES[rng.uniform_below(BYTE_CHOICES.len())];
    let scenario = if rng.uniform() < 0.5 { Scenario::Case1 } else { Scenario::Case2 };
    let architecture =
        if rng.uniform() < 0.5 { Architecture::NonBlocking } else { Architecture::Blocking };
    let service_model = match rng.uniform_below(10) {
        0 => ServiceTimeModel::Deterministic,
        1 => ServiceTimeModel::Erlang(2),
        2 => ServiceTimeModel::Erlang(4),
        3 => ServiceTimeModel::HyperExponential(4.0),
        _ => ServiceTimeModel::Exponential,
    };
    // Light load through past the knee — the kernel must agree with the
    // scalar solver bit-for-bit everywhere, including where the
    // saturation back-off engages.
    let utilization = 0.05 + 0.90 * rng.uniform();
    KernelCase {
        clusters,
        nodes_per_cluster: nodes,
        message_bytes,
        scenario,
        architecture,
        service_model,
        utilization,
    }
}

impl KernelCase {
    fn build(&self) -> Result<SystemConfig, ModelError> {
        let config = SystemConfig::new(
            self.clusters,
            self.nodes_per_cluster,
            self.message_bytes,
            1e-9,
            self.scenario,
            self.architecture,
        )?
        .with_service_model(self.service_model);
        let service = ServiceTimes::compute(&config)?;
        let sat = saturation_lambda(&config, &service);
        let config = config.with_lambda(self.utilization * sat);
        config.validate()?;
        Ok(config)
    }
}

type LaneResult = Result<(PerformanceReport, EvalStats), ModelError>;

/// Describes the first bitwise difference between a kernel lane and the
/// scalar path, or `None` when they agree exactly.
fn lane_mismatch(kernel: &LaneResult, scalar: &LaneResult) -> Option<String> {
    match (kernel, scalar) {
        (Ok((kr, ks)), Ok((sr, ss))) => {
            let pairs = [
                ("lambda_eff", kr.equilibrium.lambda_eff, sr.equilibrium.lambda_eff),
                ("total_waiting", kr.equilibrium.total_waiting, sr.equilibrium.total_waiting),
                (
                    "mean_message_latency_ms",
                    kr.latency.mean_message_latency_ms(),
                    sr.latency.mean_message_latency_ms(),
                ),
            ];
            for (name, k, s) in pairs {
                if k.to_bits() != s.to_bits() {
                    return Some(format!(
                        "{name}: kernel {k:?} ({:#x}) vs scalar {s:?} ({:#x})",
                        k.to_bits(),
                        s.to_bits()
                    ));
                }
            }
            if kr != sr {
                return Some("reports differ outside the headline fields".to_string());
            }
            if ks.solver_iterations != ss.solver_iterations {
                return Some(format!(
                    "solver_iterations: kernel {} vs scalar {}",
                    ks.solver_iterations, ss.solver_iterations
                ));
            }
            None
        }
        (Err(k), Err(s)) => {
            let (k, s) = (format!("{k:?}"), format!("{s:?}"));
            (k != s).then(|| format!("errors differ: kernel {k} vs scalar {s}"))
        }
        (Ok(_), Err(s)) => Some(format!("kernel solved, scalar failed with {s:?}")),
        (Err(k), Ok(_)) => Some(format!("kernel failed with {k:?}, scalar solved")),
    }
}

/// Checks one case solo (a one-lane kernel against the scalar path);
/// `None` means bit-identical. Build failures read as agreement: both
/// paths reject the config before any lane math runs.
fn check_solo(case: &KernelCase) -> Option<String> {
    let config = case.build().ok()?;
    let kernel = BatchKernel::new(std::slice::from_ref(&config)).solve().pop().expect("one lane");
    let scalar = batch::evaluate_one(&config, None, None);
    lane_mismatch(&kernel, &scalar)
}

/// Candidate one-step simplifications, structurally smaller first —
/// the same walk as the simulation fuzzer's shrinker, with the same
/// 16-processor sampler floor so a shrunk repro stays in-region.
fn shrink_candidates(case: &KernelCase) -> Vec<KernelCase> {
    let mut out = Vec::new();
    if case.clusters > 1 && (case.clusters / 2) * case.nodes_per_cluster >= 16 {
        out.push(KernelCase { clusters: case.clusters / 2, ..*case });
    }
    if case.nodes_per_cluster > 2 && case.clusters * (case.nodes_per_cluster / 2) >= 16 {
        out.push(KernelCase { nodes_per_cluster: case.nodes_per_cluster / 2, ..*case });
    }
    if case.message_bytes > 64 {
        out.push(KernelCase { message_bytes: case.message_bytes / 2, ..*case });
    }
    if case.service_model != ServiceTimeModel::Exponential {
        out.push(KernelCase { service_model: ServiceTimeModel::Exponential, ..*case });
    }
    if case.architecture == Architecture::Blocking {
        out.push(KernelCase { architecture: Architecture::NonBlocking, ..*case });
    }
    if case.utilization > 0.15 {
        out.push(KernelCase { utilization: case.utilization * 0.5, ..*case });
    }
    out
}

/// Greedily shrinks a failing case: repeatedly takes the first
/// simplification that still mismatches, until none does.
fn shrink(case: KernelCase, mismatch: String) -> (KernelCase, String) {
    let mut current = (case, mismatch);
    for _ in 0..64 {
        let mut advanced = false;
        for candidate in shrink_candidates(&current.0) {
            if let Some(mismatch) = check_solo(&candidate) {
                current = (candidate, mismatch);
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    current
}

/// Renders a ready-to-paste regression test for a shrunk mismatch.
fn regression_snippet(seed: u64, index: u32, case: &KernelCase, mismatch: &str) -> String {
    let scenario = match case.scenario {
        Scenario::Case1 => "Scenario::Case1",
        Scenario::Case2 => "Scenario::Case2",
    };
    let architecture = match case.architecture {
        Architecture::NonBlocking => "Architecture::NonBlocking",
        Architecture::Blocking => "Architecture::Blocking",
    };
    let service = match case.service_model {
        ServiceTimeModel::Exponential => String::new(),
        ServiceTimeModel::Deterministic => {
            "\n        .with_service_model(ServiceTimeModel::Deterministic)".to_string()
        }
        ServiceTimeModel::Erlang(k) => {
            format!("\n        .with_service_model(ServiceTimeModel::Erlang({k}))")
        }
        ServiceTimeModel::HyperExponential(scv) => {
            format!("\n        .with_service_model(ServiceTimeModel::HyperExponential({scv:?}))")
        }
    };
    let lambda = case
        .build()
        .map(|c| format!("{:.6e}", c.lambda_per_us))
        .unwrap_or_else(|_| "/* rebuild failed */ 0.0".to_string());
    format!(
        "#[test]\n\
         fn kernel_regression_c{c}_n{n}_m{m}() {{\n\
         \x20   // Found by kernel_properties seed {seed} (case {index}):\n\
         \x20   // {mismatch}\n\
         \x20   let config = SystemConfig::new({c}, {n}, {m}, {lambda}, {scenario}, {architecture})\n\
         \x20       .unwrap(){service};\n\
         \x20   let kernel = BatchKernel::new(std::slice::from_ref(&config)).solve().pop().unwrap();\n\
         \x20   let scalar = batch::evaluate_one(&config, None, None);\n\
         \x20   assert!(lane_mismatch(&kernel, &scalar).is_none());\n\
         }}\n",
        c = case.clusters,
        n = case.nodes_per_cluster,
        m = case.message_bytes,
    )
}

const SEED: u64 = 2005;
const CASES: u32 = 200;

/// 200 seeded configurations across the validity region, solved as the
/// lanes of a single heterogeneous [`BatchKernel`], each compared
/// bit-for-bit against an independent scalar evaluation.
#[test]
fn batched_kernel_is_bit_identical_to_scalar() {
    let cases: Vec<KernelCase> = (0..CASES).map(|i| sample_case(SEED, i)).collect();
    let configs: Vec<SystemConfig> =
        cases.iter().map(|c| c.build().expect("sampled cases are valid")).collect();
    let lanes = BatchKernel::new(&configs).solve();
    assert_eq!(lanes.len(), configs.len());
    for (i, (lane, config)) in lanes.iter().zip(&configs).enumerate() {
        let scalar = batch::evaluate_one(config, None, None);
        if let Some(mismatch) = lane_mismatch(lane, &scalar) {
            let case = cases[i];
            // Reproduce solo so the shrinker has a standalone check;
            // lanes are independent, so a batch failure reproduces
            // solo unless the batch composition itself is the bug.
            let (case, mismatch) = match check_solo(&case) {
                Some(m) => shrink(case, m),
                None => (case, format!("{mismatch} (only in a {CASES}-lane batch)")),
            };
            panic!(
                "kernel/scalar mismatch at case {i}: {mismatch}\n\
                 suggested regression test:\n{}",
                regression_snippet(SEED, i as u32, &case, &mismatch)
            );
        }
    }
}

/// Lane results must not depend on batch composition: a lane solved
/// among 200 others is bit-identical to the same configuration solved
/// alone. (This is also what makes solo shrinking sound above.)
#[test]
fn lane_results_are_independent_of_batch_composition() {
    let cases: Vec<KernelCase> = (0..24).map(|i| sample_case(SEED ^ 0xba7c4, i)).collect();
    let configs: Vec<SystemConfig> =
        cases.iter().map(|c| c.build().expect("sampled cases are valid")).collect();
    let together = BatchKernel::new(&configs).solve();
    for (i, config) in configs.iter().enumerate() {
        let solo = BatchKernel::new(std::slice::from_ref(config)).solve().pop().expect("one lane");
        assert!(
            lane_mismatch(&together[i], &solo).is_none(),
            "lane {i} differs between a 24-lane batch and a solo solve"
        );
    }
}
