//! Property tests for the QNA refinement: structural guarantees that
//! must hold for any valid configuration.

use hmcs_core::config::{ServiceTimeModel, SystemConfig};
use hmcs_core::model::AnalyticalModel;
use hmcs_core::qna;
use hmcs_core::scenario::Scenario;
use hmcs_topology::transmission::Architecture;
use proptest::prelude::*;

fn any_scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![Just(Scenario::Case1), Just(Scenario::Case2)]
}

fn any_architecture() -> impl Strategy<Value = Architecture> {
    prop_oneof![Just(Architecture::NonBlocking), Just(Architecture::Blocking)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Under exponential service the QNA model must coincide with the
    /// base model: cd² = 1 is a fixed point of the SCV propagation.
    #[test]
    fn qna_is_exact_superset_of_base_for_exponential_service(
        clusters in 1usize..20,
        n0 in 1usize..20,
        scenario in any_scenario(),
        arch in any_architecture(),
        lambda_exp in -6.0f64..-3.0,
    ) {
        prop_assume!(clusters * n0 >= 2);
        let cfg = SystemConfig::new(
            clusters,
            n0,
            1024,
            10f64.powf(lambda_exp),
            scenario,
            arch,
        )
        .unwrap();
        let base = AnalyticalModel::evaluate(&cfg).unwrap();
        let refined = qna::evaluate(&cfg).unwrap();
        let rel = (refined.latency.mean_message_latency_us
            - base.latency.mean_message_latency_us)
            .abs()
            / base.latency.mean_message_latency_us;
        prop_assert!(rel < 1e-6, "divergence {rel} at C={clusters} N0={n0}");
        prop_assert!((refined.scv.ecn1_ca2 - 1.0).abs() < 1e-6);
        prop_assert!((refined.scv.icn2_ca2 - 1.0).abs() < 1e-6);
    }

    /// Under deterministic service, departures are smoother than
    /// Poisson: propagated SCVs stay in [0, 1] and QNA's latency never
    /// exceeds the base (P–K already captures service SCV; QNA also
    /// lowers arrival SCVs).
    #[test]
    fn qna_smooths_under_deterministic_service(
        clusters in 2usize..20,
        n0 in 2usize..20,
        lambda_exp in -5.0f64..-3.2,
    ) {
        let cfg = SystemConfig::new(
            clusters,
            n0,
            1024,
            10f64.powf(lambda_exp),
            Scenario::Case1,
            Architecture::NonBlocking,
        )
        .unwrap()
        .with_service_model(ServiceTimeModel::Deterministic);
        let base = AnalyticalModel::evaluate(&cfg).unwrap();
        let refined = qna::evaluate(&cfg).unwrap();
        prop_assert!(refined.scv.ecn1_ca2 <= 1.0 + 1e-9);
        prop_assert!(refined.scv.icn2_ca2 <= 1.0 + 1e-9);
        prop_assert!(refined.scv.ecn1_ca2 >= 0.0);
        prop_assert!(
            refined.latency.mean_message_latency_us
                <= base.latency.mean_message_latency_us * (1.0 + 1e-9)
        );
    }

    /// Under hyper-exponential service, departures of loaded centres are
    /// burstier than Poisson and QNA predicts more waiting than the base
    /// model at the downstream centres (or equal when those centres are
    /// idle).
    #[test]
    fn qna_amplifies_under_bursty_service(
        clusters in 2usize..16,
        lambda_exp in -4.2f64..-3.4,
    ) {
        let cfg = SystemConfig::new(
            clusters,
            16,
            1024,
            10f64.powf(lambda_exp),
            Scenario::Case1,
            Architecture::NonBlocking,
        )
        .unwrap()
        .with_service_model(ServiceTimeModel::HyperExponential(4.0));
        let refined = qna::evaluate(&cfg).unwrap();
        prop_assert!(refined.scv.icn2_ca2 >= 1.0 - 1e-9);
        prop_assert!(refined.latency.mean_message_latency_us.is_finite());
        prop_assert!(refined.lambda_eff > 0.0);
    }
}
