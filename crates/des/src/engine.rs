//! The event loop.
//!
//! A [`Model`] owns all simulation state and processes one event at a
//! time; the [`Engine`] advances the clock, dispatches events, and
//! enforces stop conditions. Follow-up events are scheduled through the
//! [`Scheduler`], which wraps the future-event list.

use crate::event::EventQueue;
use crate::time::SimTime;

/// Scheduling interface handed to the model while it processes an event.
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    events_scheduled: u64,
    peak_pending: usize,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler { queue: EventQueue::new(), events_scheduled: 0, peak_pending: 0 }
    }

    fn with_capacity(capacity: usize) -> Self {
        Scheduler {
            queue: EventQueue::with_capacity(capacity),
            events_scheduled: 0,
            peak_pending: 0,
        }
    }

    /// Grows the future-event list to hold at least `additional` more
    /// pending events without reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Drops all pending events and zeroes the lifetime counters, so a
    /// reused scheduler behaves exactly like a fresh one while keeping
    /// the event list's storage warm.
    fn reset(&mut self) {
        self.queue.reset();
        self.events_scheduled = 0;
        self.peak_pending = 0;
    }

    /// Schedules `event` at the absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.events_scheduled += 1;
        self.queue.push(at, event);
        self.peak_pending = self.peak_pending.max(self.queue.len());
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_in(&mut self, now: SimTime, delay: SimTime, event: E) {
        self.schedule_at(now + delay, event);
    }

    /// Number of events scheduled so far (lifetime counter).
    pub fn events_scheduled(&self) -> u64 {
        self.events_scheduled
    }

    /// Number of currently pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Largest number of simultaneously pending events seen so far —
    /// the high-water mark of the future-event list.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }
}

/// A simulation model: state plus an event handler.
pub trait Model {
    /// The event payload type.
    type Event;

    /// Processes one event at simulation time `now`. Follow-up events go
    /// through `scheduler`.
    fn handle(&mut self, now: SimTime, event: Self::Event, scheduler: &mut Scheduler<Self::Event>);
}

/// Reason the engine stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The future-event list drained.
    Exhausted,
    /// The configured event budget was reached.
    EventLimit,
    /// The configured time horizon was reached (the offending event is
    /// left unprocessed).
    TimeLimit,
    /// The model's stop predicate returned true.
    Predicate,
}

/// The DES event loop driving a [`Model`].
#[derive(Debug)]
pub struct Engine<M: Model> {
    model: M,
    scheduler: Scheduler<M::Event>,
    now: SimTime,
    events_processed: u64,
}

impl<M: Model> Engine<M> {
    /// Creates an engine at time zero with an empty event list.
    pub fn new(model: M) -> Self {
        Engine { model, scheduler: Scheduler::new(), now: SimTime::ZERO, events_processed: 0 }
    }

    /// Creates an engine whose future-event list is pre-sized for
    /// `capacity` pending events, so a run with a known peak event
    /// population (e.g. one think-time event per traffic source)
    /// never reallocates the event list.
    pub fn with_capacity(model: M, capacity: usize) -> Self {
        Engine {
            model,
            scheduler: Scheduler::with_capacity(capacity),
            now: SimTime::ZERO,
            events_processed: 0,
        }
    }

    /// Rewinds the engine to time zero with an empty event list and
    /// zeroed counters, keeping the model and the event-list storage.
    /// The caller is responsible for resetting the model's own state;
    /// after that, a reused engine reproduces a fresh engine exactly.
    pub fn reset(&mut self) {
        self.scheduler.reset();
        self.now = SimTime::ZERO;
        self.events_processed = 0;
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to read statistics out).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Immutable access to the scheduler (e.g. to read its counters).
    pub fn scheduler(&self) -> &Scheduler<M::Event> {
        &self.scheduler
    }

    /// Mutable access to the scheduler (e.g. to seed initial events).
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<M::Event> {
        &mut self.scheduler
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Processes a single event. Returns `false` when the event list is
    /// empty.
    pub fn step(&mut self) -> bool {
        match self.scheduler.queue.pop() {
            Some((time, event)) => {
                debug_assert!(time >= self.now, "time must not run backwards");
                self.now = time;
                self.events_processed += 1;
                self.model.handle(time, event, &mut self.scheduler);
                true
            }
            None => false,
        }
    }

    /// Runs until the event list drains.
    pub fn run_to_completion(&mut self) -> StopReason {
        while self.step() {}
        StopReason::Exhausted
    }

    /// Runs until the event list drains, `max_events` have been
    /// processed, the clock would pass `horizon`, or `stop(model)`
    /// becomes true (checked after each event).
    pub fn run_until(
        &mut self,
        max_events: Option<u64>,
        horizon: Option<SimTime>,
        mut stop: impl FnMut(&M) -> bool,
    ) -> StopReason {
        loop {
            if let Some(limit) = max_events {
                if self.events_processed >= limit {
                    return StopReason::EventLimit;
                }
            }
            if let Some(h) = horizon {
                match self.scheduler.queue.peek_time() {
                    Some(t) if t > h => return StopReason::TimeLimit,
                    _ => {}
                }
            }
            if !self.step() {
                return StopReason::Exhausted;
            }
            if stop(&self.model) {
                return StopReason::Predicate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model producing a chain of events with a fixed spacing.
    struct Chain {
        remaining: u32,
        spacing: SimTime,
        fired_at: Vec<SimTime>,
    }

    impl Model for Chain {
        type Event = ();
        fn handle(&mut self, now: SimTime, _e: (), s: &mut Scheduler<()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                s.schedule_in(now, self.spacing, ());
            }
        }
    }

    fn chain(n: u32) -> Engine<Chain> {
        let mut e = Engine::new(Chain {
            remaining: n,
            spacing: SimTime::from_us(10.0),
            fired_at: Vec::new(),
        });
        e.scheduler_mut().schedule_at(SimTime::ZERO, ());
        e
    }

    #[test]
    fn runs_to_completion() {
        let mut e = chain(4);
        assert_eq!(e.run_to_completion(), StopReason::Exhausted);
        assert_eq!(e.events_processed(), 5);
        assert_eq!(e.now(), SimTime::from_us(40.0));
        assert_eq!(e.model().fired_at.len(), 5);
    }

    #[test]
    fn event_limit_stops_early() {
        let mut e = chain(100);
        assert_eq!(e.run_until(Some(3), None, |_| false), StopReason::EventLimit);
        assert_eq!(e.events_processed(), 3);
    }

    #[test]
    fn time_horizon_leaves_future_events_unprocessed() {
        let mut e = chain(100);
        assert_eq!(
            e.run_until(None, Some(SimTime::from_us(25.0)), |_| false),
            StopReason::TimeLimit
        );
        // Events at 0, 10, 20 fire; 30 is beyond the horizon.
        assert_eq!(e.events_processed(), 3);
        assert_eq!(e.now(), SimTime::from_us(20.0));
        assert_eq!(e.scheduler_mut().pending(), 1);
    }

    #[test]
    fn predicate_stops_the_run() {
        let mut e = chain(100);
        let reason = e.run_until(None, None, |m| m.fired_at.len() >= 7);
        assert_eq!(reason, StopReason::Predicate);
        assert_eq!(e.model().fired_at.len(), 7);
    }

    #[test]
    fn empty_engine_exhausts_immediately() {
        let mut e =
            Engine::new(Chain { remaining: 0, spacing: SimTime::ZERO, fired_at: Vec::new() });
        assert_eq!(e.run_to_completion(), StopReason::Exhausted);
        assert!(!e.step());
        assert_eq!(e.events_processed(), 0);
    }

    #[test]
    fn scheduler_counters() {
        let mut e = chain(2);
        e.run_to_completion();
        assert_eq!(e.scheduler_mut().events_scheduled(), 3);
        assert_eq!(e.scheduler_mut().pending(), 0);
        // The chain never holds more than one pending event at a time.
        assert_eq!(e.scheduler().peak_pending(), 1);
    }

    #[test]
    fn peak_pending_tracks_high_water_mark() {
        let mut e =
            Engine::new(Chain { remaining: 0, spacing: SimTime::ZERO, fired_at: Vec::new() });
        for i in 0..5 {
            e.scheduler_mut().schedule_at(SimTime::from_us(i as f64), ());
        }
        assert_eq!(e.scheduler().peak_pending(), 5);
        e.run_to_completion();
        assert_eq!(e.scheduler().pending(), 0);
        assert_eq!(e.scheduler().peak_pending(), 5, "peak survives the drain");
    }

    #[test]
    fn with_capacity_and_reset_reproduce_a_fresh_run() {
        let model =
            |n| Chain { remaining: n, spacing: SimTime::from_us(10.0), fired_at: Vec::new() };
        let mut fresh = Engine::new(model(4));
        fresh.scheduler_mut().schedule_at(SimTime::ZERO, ());
        fresh.run_to_completion();

        let mut reused = Engine::with_capacity(model(4), 8);
        reused.scheduler_mut().schedule_at(SimTime::ZERO, ());
        reused.run_to_completion();
        // Rewind the engine, restore the model, and run again.
        reused.reset();
        *reused.model_mut() = model(4);
        reused.scheduler_mut().schedule_at(SimTime::ZERO, ());
        reused.run_to_completion();

        assert_eq!(reused.now(), fresh.now());
        assert_eq!(reused.events_processed(), fresh.events_processed());
        assert_eq!(reused.model().fired_at, fresh.model().fired_at);
        assert_eq!(reused.scheduler().events_scheduled(), fresh.scheduler().events_scheduled());
        assert_eq!(reused.scheduler().peak_pending(), fresh.scheduler().peak_pending());
    }

    #[test]
    fn scheduler_reserve_grows_the_event_list() {
        let mut e =
            Engine::new(Chain { remaining: 0, spacing: SimTime::ZERO, fired_at: Vec::new() });
        e.scheduler_mut().reserve(64);
        for i in 0..64 {
            e.scheduler_mut().schedule_at(SimTime::from_us(i as f64), ());
        }
        assert_eq!(e.scheduler().pending(), 64);
    }

    #[test]
    fn into_model_returns_state() {
        let mut e = chain(1);
        e.run_to_completion();
        let m = e.into_model();
        assert_eq!(m.fired_at, vec![SimTime::ZERO, SimTime::from_us(10.0)]);
    }
}
