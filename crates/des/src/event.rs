//! The future-event list.
//!
//! An indexed 4-ary min-heap keyed by `(time, seq)`, where `seq` is a
//! monotone sequence number so that simultaneous events pop in FIFO
//! (insertion) order — the determinism guarantee every reproducible DES
//! needs.
//!
//! Why not `std::collections::BinaryHeap`? Three reasons:
//!
//! * **Pre-sizing.** The simulators know their peak pending population
//!   (one think-time event per traffic source plus in-flight hops), so
//!   [`EventQueue::with_capacity`] lets a run never reallocate the
//!   event list; pops are shrink-free so a reused queue stays warm.
//! * **Indexed storage.** The heap array holds compact `Copy` entries
//!   (key + slab slot): ordering scans touch only small entries (four
//!   children per node span ~1.5 cache lines per sift level, at half
//!   the depth of a binary heap), while payloads sit still in a
//!   free-list slab and never travel with the comparisons.
//! * **Stable API.** `len`/`is_empty`/`reserve`/`reset` expose the
//!   queue state the engine and the replication-reuse path need
//!   without round-tripping through iterator adapters.
//!
//! Determinism is structural: `(time, seq)` is a strict total order
//! (`seq` is unique), and the heap orders by the full key — so the pop
//! sequence is identical to any correct min-heap's and swapping the
//! implementation cannot perturb simulation results.

use crate::time::SimTime;

/// Sort key of one pending event.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key {
    time: SimTime,
    seq: u64,
}

impl Key {
    /// Strict `(time, seq)` ordering — total because `seq` is unique.
    #[inline]
    fn earlier_than(&self, other: &Key) -> bool {
        match self.time.cmp(&other.time) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// Heap arity. Four children per node: half the depth of a binary
/// heap, and the children's 16-byte keys span a single cache line per
/// level of the sift scan.
const ARITY: usize = 4;

/// One heap entry: the sort key plus the payload's slab slot.
///
/// 24 bytes and `Copy`, so sifting moves registers, never payloads.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    key: Key,
    slot: u32,
}

/// A time-ordered, FIFO-stable event queue.
///
/// An *indexed* heap: the heap array holds compact `Copy` entries
/// (key + slot index) while payloads live in a slab recycled through a
/// free list — sift operations never move a payload, and a payload
/// slot freed by a pop is reused by the next push, so steady-state
/// operation is allocation-free.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: Vec<HeapEntry>,
    slots: Vec<Option<E>>,
    free: Vec<u32>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` pending events,
    /// so a simulation with a known event population never reallocates
    /// mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Grows the backing storage to hold at least `additional` more
    /// pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
        self.slots.reserve(additional);
    }

    /// Number of pending events the queue can hold without
    /// reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity().min(self.slots.capacity())
    }

    /// Inserts an event to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let key = Key { time, seq: self.next_seq };
        self.next_seq += 1;
        // Recycle a freed slab slot if one exists; steady-state
        // push/pop cycles therefore never allocate.
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event population fits in u32");
                self.slots.push(Some(payload));
                slot
            }
        };
        self.heap.push(HeapEntry { key, slot });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event (FIFO among ties). The
    /// backing storage is kept (shrink-free), so a later push at the
    /// same population is allocation-free.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let entry = self.heap.pop().expect("len checked above");
        if last > 0 {
            self.sift_down(0);
        }
        let payload = self.slots[entry.slot as usize].take().expect("pending slot is occupied");
        self.free.push(entry.slot);
        Some((entry.key.time, payload))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.key.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events (storage is kept).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
    }

    /// Removes all pending events **and** restores the FIFO sequence
    /// counter, so a reused queue reproduces a fresh queue exactly.
    pub fn reset(&mut self) {
        self.clear();
        self.next_seq = 0;
    }

    /// Moves the entry at `pos` up until its parent is not later.
    ///
    /// Entries are small and `Copy`: the moving entry is held in
    /// registers and parent entries shift down into the hole —
    /// payloads never move.
    #[inline]
    fn sift_up(&mut self, mut pos: usize) {
        let moving = self.heap[pos];
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            let p = self.heap[parent];
            if moving.key.earlier_than(&p.key) {
                self.heap[pos] = p;
                pos = parent;
            } else {
                break;
            }
        }
        self.heap[pos] = moving;
    }

    /// Moves the entry at `pos` down until no child is earlier.
    #[inline]
    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        let moving = self.heap[pos];
        loop {
            let first_child = pos * ARITY + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + ARITY).min(len);
            // Find the earliest among up to four children.
            let mut min_child = first_child;
            for child in first_child + 1..last_child {
                if self.heap[child].key.earlier_than(&self.heap[min_child].key) {
                    min_child = child;
                }
            }
            let c = self.heap[min_child];
            if c.key.earlier_than(&moving.key) {
                self.heap[pos] = c;
                pos = min_child;
            } else {
                break;
            }
        }
        self.heap[pos] = moving;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(30.0), "c");
        q.push(SimTime::from_us(10.0), "a");
        q.push(SimTime::from_us(20.0), "b");
        assert_eq!(q.pop(), Some((SimTime::from_us(10.0), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_us(20.0), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_us(30.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_pushes_respect_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(10.0), 1);
        q.push(SimTime::from_us(10.0), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_us(10.0), 3);
        q.push(SimTime::from_us(5.0), 4);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_us(7.0), ());
        q.push(SimTime::from_us(3.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(3.0)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_tracks_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(100.0), 1);
        q.push(SimTime::from_us(50.0), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(50.0)));
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(100.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn with_capacity_never_reallocates_within_budget() {
        let mut q = EventQueue::with_capacity(64);
        let cap = q.capacity();
        assert!(cap >= 64);
        for i in 0..64u64 {
            q.push(SimTime::from_us((i % 7) as f64 * 1000.0), i);
        }
        assert_eq!(q.capacity(), cap, "no growth within the declared capacity");
        // Shrink-free pop: draining keeps the storage.
        while q.pop().is_some() {}
        assert_eq!(q.capacity(), cap, "pop must not shrink the storage");
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn reserve_grows_capacity() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.reserve(100);
        assert!(q.capacity() >= 100);
    }

    #[test]
    fn reset_restarts_the_fifo_sequence() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(1.0);
        q.push(t, 1);
        q.push(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        q.reset();
        // After a reset, ties behave exactly as in a fresh queue.
        q.push(t, 10);
        q.push(t, 11);
        assert_eq!(q.pop(), Some((t, 10)));
        assert_eq!(q.pop(), Some((t, 11)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_breaking_matches_stable_sort() {
        // Deterministic pseudo-random times with heavy duplication.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut q = EventQueue::with_capacity(512);
        let mut reference: Vec<(u64, usize)> = Vec::new();
        let mut popped = Vec::new();
        let mut id = 0usize;
        for _round in 0..50 {
            for _ in 0..20 {
                let t = next() % 8; // only 8 distinct times -> many ties
                q.push(SimTime::from_us(t as f64), id);
                reference.push((t, id));
                id += 1;
            }
            for _ in 0..10 {
                popped.push(q.pop().unwrap().1);
            }
        }
        while let Some((_, v)) = q.pop() {
            popped.push(v);
        }
        // Replay with a naive priority scan to build the exact
        // expectation: among the events available at each pop, the
        // smallest (time, insertion id) must come out.
        let mut expected = Vec::new();
        let mut pending: Vec<(u64, usize)> = Vec::new();
        let mut feed = reference.into_iter();
        for _round in 0..50 {
            for _ in 0..20 {
                pending.push(feed.next().unwrap());
            }
            for _ in 0..10 {
                let best = pending
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(t, id))| (t, id))
                    .map(|(i, _)| i)
                    .unwrap();
                expected.push(pending.remove(best).1);
            }
        }
        pending.sort_unstable();
        expected.extend(pending.into_iter().map(|(_, v)| v));
        assert_eq!(popped, expected);
    }

    /// Differential check against a naive reference queue across a
    /// DES-shaped workload: a bimodal mix of short service delays and
    /// long think delays scheduled relative to the advancing clock.
    #[test]
    fn matches_reference_on_des_shaped_workload() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut q = EventQueue::new();
        let mut reference: Vec<(f64, u64)> = Vec::new();
        let mut id = 0u64;
        // Seed a population of think-time events.
        for _ in 0..200 {
            let t = (next() % 4_000_000) as f64 / 1_000.0;
            q.push(SimTime::from_us(t), id);
            reference.push((t, id));
            id += 1;
        }
        for _ in 0..5_000 {
            // Pop one event from each and compare.
            let best = reference
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            let (exp_t, exp_id) = reference.remove(best);
            let (got_t, got_id) = q.pop().unwrap();
            assert_eq!((got_t.as_us(), got_id), (exp_t, exp_id));
            let now = exp_t;
            // Reschedule: 90% short service hop, 10% long think time.
            let delay = if next() % 10 == 0 {
                (next() % 4_000_000) as f64 / 1_000.0
            } else {
                (next() % 200_000) as f64 / 1_000.0
            };
            let t = now + delay;
            q.push(SimTime::from_us(t), id);
            reference.push((t, id));
            id += 1;
        }
        assert_eq!(q.len(), reference.len());
    }
}
