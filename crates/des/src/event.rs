//! The future-event list.
//!
//! A binary-heap priority queue keyed by event time, with a monotone
//! sequence number so that simultaneous events pop in FIFO (insertion)
//! order — the determinism guarantee every reproducible DES needs.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the future-event list.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time (then
        // the lowest sequence number) pops first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered, FIFO-stable event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Inserts an event to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(30.0), "c");
        q.push(SimTime::from_us(10.0), "a");
        q.push(SimTime::from_us(20.0), "b");
        assert_eq!(q.pop(), Some((SimTime::from_us(10.0), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_us(20.0), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_us(30.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_pushes_respect_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(10.0), 1);
        q.push(SimTime::from_us(10.0), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_us(10.0), 3);
        q.push(SimTime::from_us(5.0), 4);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_us(7.0), ());
        q.push(SimTime::from_us(3.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(3.0)));
        q.clear();
        assert!(q.is_empty());
    }
}
