//! # hmcs-des
//!
//! A small discrete-event simulation (DES) kernel, built to support the
//! validation simulators of *Performance Analysis of Heterogeneous
//! Multi-Cluster Systems* (Javadi, Akbari & Abawajy, ICPPW 2005, §6).
//!
//! The kernel is deliberately generic — nothing in this crate knows
//! about clusters or networks:
//!
//! * [`time`] — the simulation clock type ([`time::SimTime`],
//!   microseconds).
//! * [`event`] — a stable future-event list: a binary heap ordered by
//!   time with FIFO tie-breaking.
//! * [`engine`] — the event loop: a [`engine::Model`] handles one event
//!   at a time and schedules follow-ups through the
//!   [`engine::Scheduler`].
//! * [`rng`] — seedable, stream-split random-number generation and the
//!   sampling distributions the paper's simulators need (exponential
//!   inter-arrival times, uniform destinations).
//! * [`stats`] — output analysis: online moments (Welford), time-weighted
//!   averages for queue lengths, histograms, confidence intervals and
//!   batch means.
//! * [`quantile`] — P² streaming quantile estimation for latency tails.
//! * [`trace`] — bounded ring-buffer event tracing for debugging runs.
//! * [`queue`] — an instrumented FCFS single-server queue component,
//!   the building block for the paper's service centres.
//!
//! ```
//! use hmcs_des::engine::{Engine, Model, Scheduler};
//! use hmcs_des::time::SimTime;
//!
//! // A model that counts three ticks, one every 5 µs.
//! struct Ticker { count: u32 }
//! impl Model for Ticker {
//!     type Event = ();
//!     fn handle(&mut self, now: SimTime, _e: (), sched: &mut Scheduler<()>) {
//!         self.count += 1;
//!         if self.count < 3 {
//!             sched.schedule_in(now, SimTime::from_us(5.0), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Ticker { count: 0 });
//! engine.scheduler_mut().schedule_at(SimTime::ZERO, ());
//! engine.run_to_completion();
//! assert_eq!(engine.model().count, 3);
//! assert_eq!(engine.now(), SimTime::from_us(10.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod quantile;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Engine, Model, Scheduler};
pub use time::SimTime;
