//! Streaming quantile estimation with the P² algorithm
//! (Jain & Chlamtac, 1985).
//!
//! Latency *tails* matter as much as means for interconnect evaluation,
//! but storing every observation of a long simulation run is wasteful.
//! P² maintains five markers and estimates an arbitrary quantile in
//! O(1) memory with piecewise-parabolic marker adjustment — the classic
//! tool for exactly this job.

/// A P² estimator for a single quantile `q ∈ (0, 1)`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the quantile positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: u64,
    /// Initial observations buffered until five are available.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must lie strictly in (0,1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The targeted quantile level.
    pub fn level(&self) -> f64 {
        self.q
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Discards all observations, returning the estimator to its
    /// just-constructed state for the same quantile level (the initial
    /// buffer keeps its storage).
    pub fn reset(&mut self) {
        let q = self.q;
        self.heights = [0.0; 5];
        self.positions = [1.0, 2.0, 3.0, 4.0, 5.0];
        self.desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0];
        self.increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0];
        self.count = 0;
        self.initial.clear();
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }

        // Locate the cell containing x and update extreme heights.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x < self.heights[1] {
            0
        } else if x < self.heights[2] {
            1
        } else if x < self.heights[3] {
            2
        } else if x <= self.heights[4] {
            3
        } else {
            self.heights[4] = x;
            3
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let parabolic = self.parabolic(i, sign);
                let new_height =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, sign)
                    };
                self.heights[i] = new_height;
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + sign / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = if sign > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i])
                / (self.positions[j] - self.positions[i]).abs().max(1.0)
    }

    /// Current quantile estimate. `None` before any observation; exact
    /// (from the sorted buffer) for fewer than five observations.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            let rank = ((self.q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            return Some(sorted[rank - 1]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStream;

    fn exact_quantile(data: &mut [f64], q: f64) -> f64 {
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * data.len() as f64).ceil() as usize).clamp(1, data.len());
        data[rank - 1]
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        p.record(3.0);
        assert_eq!(p.estimate(), Some(3.0));
        p.record(1.0);
        p.record(2.0);
        assert_eq!(p.estimate(), Some(2.0));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = RngStream::new(42, 0);
        let mut data = Vec::new();
        for _ in 0..50_000 {
            let x = rng.uniform();
            p.record(x);
            data.push(x);
        }
        let exact = exact_quantile(&mut data, 0.5);
        let est = p.estimate().unwrap();
        assert!((est - exact).abs() < 0.01, "P2 {est} vs exact {exact}");
    }

    #[test]
    fn p95_of_exponential_stream() {
        let mut p = P2Quantile::new(0.95);
        let mut rng = RngStream::new(7, 1);
        let mut data = Vec::new();
        for _ in 0..80_000 {
            let x = rng.exponential_mean(10.0);
            p.record(x);
            data.push(x);
        }
        let exact = exact_quantile(&mut data, 0.95);
        let est = p.estimate().unwrap();
        // Theory: p95 of Exp(mean 10) = -10 ln(0.05) ~ 29.96.
        assert!((est - exact).abs() / exact < 0.05, "P2 {est} vs exact {exact}");
        assert!((est - 29.96).abs() < 2.0);
    }

    #[test]
    fn p99_of_bimodal_stream() {
        let mut p = P2Quantile::new(0.99);
        let mut rng = RngStream::new(9, 2);
        let mut data = Vec::new();
        for _ in 0..60_000 {
            let x = if rng.bernoulli(0.9) {
                rng.uniform() // fast path
            } else {
                100.0 + rng.uniform() * 50.0 // slow tail
            };
            p.record(x);
            data.push(x);
        }
        let exact = exact_quantile(&mut data, 0.99);
        let est = p.estimate().unwrap();
        assert!((est - exact).abs() / exact < 0.10, "bimodal tail: P2 {est} vs exact {exact}");
    }

    #[test]
    fn monotone_increasing_stream() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..10_001 {
            p.record(i as f64);
        }
        let est = p.estimate().unwrap();
        assert!((est - 5000.0).abs() < 250.0, "median of 0..10000 ~ 5000, got {est}");
    }

    #[test]
    fn constant_stream() {
        let mut p = P2Quantile::new(0.9);
        for _ in 0..1000 {
            p.record(7.5);
        }
        assert_eq!(p.estimate(), Some(7.5));
    }

    #[test]
    #[should_panic(expected = "strictly in (0,1)")]
    fn rejects_degenerate_levels() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn level_accessor() {
        assert_eq!(P2Quantile::new(0.25).level(), 0.25);
    }

    #[test]
    fn reset_is_bit_identical_to_a_fresh_estimator() {
        let mut reused = P2Quantile::new(0.95);
        // Pollute with one stream, then reset.
        for i in 0..500 {
            reused.record((i % 37) as f64 * 0.25);
        }
        reused.reset();
        assert_eq!(reused.count(), 0);
        assert_eq!(reused.estimate(), None);
        let mut fresh = P2Quantile::new(0.95);
        for i in 0..1000u64 {
            let x = ((i * 2654435761) % 10007) as f64 * 1e-3;
            reused.record(x);
            fresh.record(x);
        }
        assert_eq!(
            reused.estimate().unwrap().to_bits(),
            fresh.estimate().unwrap().to_bits(),
            "reset estimator must replay a stream exactly like a fresh one"
        );
    }
}
