//! An instrumented FCFS single-server queue component.
//!
//! Each of the paper's communication networks (ICN1, ECN1, ICN2) behaves
//! as a single server with a FIFO queue: a message arriving at a busy
//! network waits; service times are drawn by the caller (exponential in
//! the paper's model). The component is engine-agnostic: the caller
//! decides what "time" is and schedules the completion events; the
//! component tracks ordering and statistics.

use crate::stats::{OnlineStats, TimeWeighted};
use std::collections::VecDeque;

/// What the caller must do after notifying the queue of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceDirective<T> {
    /// Start serving this customer now (schedule its completion).
    StartService(T),
    /// Nothing to do (customer queued behind others, or queue empty).
    Idle,
}

/// An FCFS single-server queue with waiting-time and queue-length
/// instrumentation.
#[derive(Debug, Clone)]
pub struct FcfsServer<T> {
    waiting: VecDeque<(T, f64)>, // (customer, arrival time)
    in_service: Option<(T, f64)>,
    waiting_times: OnlineStats,
    queue_length: TimeWeighted,
    arrivals: u64,
    departures: u64,
    busy_area: TimeWeighted,
    instrumented: bool,
}

impl<T: Clone> Default for FcfsServer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> FcfsServer<T> {
    /// Creates an idle, empty server.
    pub fn new() -> Self {
        FcfsServer {
            waiting: VecDeque::new(),
            in_service: None,
            waiting_times: OnlineStats::new(),
            queue_length: TimeWeighted::new(),
            arrivals: 0,
            departures: 0,
            busy_area: TimeWeighted::new(),
            instrumented: true,
        }
    }

    /// Switches the per-event statistics (waiting times, time-weighted
    /// queue length, busy area) on or off. With instrumentation off the
    /// queueing *behaviour* is unchanged — directives, ordering, and
    /// arrival/departure counts stay exact — but
    /// [`FcfsServer::waiting_time_stats`],
    /// [`FcfsServer::mean_number_in_system`] and
    /// [`FcfsServer::utilization`] report empty/zero. Callers that only
    /// read latency means can turn it off to drop two time-weighted
    /// updates per event from the hot path. Survives [`FcfsServer::reset`].
    pub fn set_instrumented(&mut self, instrumented: bool) {
        self.instrumented = instrumented;
    }

    /// Number of customers present (waiting + in service).
    pub fn len(&self) -> usize {
        self.waiting.len() + usize::from(self.in_service.is_some())
    }

    /// True when no customer is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the server is serving someone.
    pub fn is_busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// A customer arrives at `now`. If the server is idle the caller
    /// receives `StartService` and must schedule the completion.
    pub fn arrive(&mut self, now: f64, customer: T) -> ServiceDirective<T> {
        self.arrivals += 1;
        let directive = if self.in_service.is_none() {
            self.in_service = Some((customer.clone(), now));
            if self.instrumented {
                self.waiting_times.record(0.0);
            }
            ServiceDirective::StartService(customer)
        } else {
            self.waiting.push_back((customer, now));
            ServiceDirective::Idle
        };
        self.record_state(now);
        directive
    }

    /// The customer in service completes at `now`; returns the customer
    /// and, if someone was waiting, the next customer to start serving.
    ///
    /// # Panics
    ///
    /// Panics if the server was idle (a completion without a service is a
    /// simulation logic error).
    pub fn complete(&mut self, now: f64) -> (T, ServiceDirective<T>) {
        let (done, _started) = self.in_service.take().expect("completion on an idle server");
        self.departures += 1;
        let directive = match self.waiting.pop_front() {
            Some((next, arrived)) => {
                if self.instrumented {
                    self.waiting_times.record(now - arrived);
                }
                self.in_service = Some((next.clone(), now));
                ServiceDirective::StartService(next)
            }
            None => ServiceDirective::Idle,
        };
        self.record_state(now);
        (done, directive)
    }

    fn record_state(&mut self, now: f64) {
        if !self.instrumented {
            return;
        }
        self.queue_length.update(now, self.len() as f64);
        self.busy_area.update(now, if self.is_busy() { 1.0 } else { 0.0 });
    }

    /// Returns the server to its just-constructed state while keeping
    /// the waiting deque's storage, so a reused server behaves exactly
    /// like a fresh one without reallocating.
    pub fn reset(&mut self) {
        self.waiting.clear();
        self.in_service = None;
        self.waiting_times = OnlineStats::new();
        self.queue_length = TimeWeighted::new();
        self.busy_area = TimeWeighted::new();
        self.arrivals = 0;
        self.departures = 0;
    }

    /// Statistics of time spent waiting before service starts.
    pub fn waiting_time_stats(&self) -> &OnlineStats {
        &self.waiting_times
    }

    /// Time-weighted mean number in system up to `now`.
    pub fn mean_number_in_system(&self, now: f64) -> f64 {
        self.queue_length.mean_until(now)
    }

    /// Fraction of time the server was busy up to `now`.
    pub fn utilization(&self, now: f64) -> f64 {
        self.busy_area.mean_until(now)
    }

    /// Total arrivals so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Total service completions so far.
    pub fn departures(&self) -> u64 {
        self.departures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s: FcfsServer<u32> = FcfsServer::new();
        assert_eq!(s.arrive(0.0, 1), ServiceDirective::StartService(1));
        assert!(s.is_busy());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s: FcfsServer<u32> = FcfsServer::new();
        s.arrive(0.0, 1);
        assert_eq!(s.arrive(1.0, 2), ServiceDirective::Idle);
        assert_eq!(s.arrive(2.0, 3), ServiceDirective::Idle);
        assert_eq!(s.len(), 3);
        let (done, next) = s.complete(5.0);
        assert_eq!(done, 1);
        assert_eq!(next, ServiceDirective::StartService(2));
        let (done, next) = s.complete(9.0);
        assert_eq!(done, 2);
        assert_eq!(next, ServiceDirective::StartService(3));
        let (done, next) = s.complete(12.0);
        assert_eq!(done, 3);
        assert_eq!(next, ServiceDirective::Idle);
        assert!(s.is_empty());
    }

    #[test]
    fn waiting_times_are_tracked() {
        let mut s: FcfsServer<u32> = FcfsServer::new();
        s.arrive(0.0, 1); // waits 0
        s.arrive(1.0, 2); // served at 5 => waited 4
        s.complete(5.0);
        s.complete(8.0);
        let w = s.waiting_time_stats();
        assert_eq!(w.count(), 2);
        assert!((w.mean() - 2.0).abs() < 1e-12);
        assert_eq!(w.max(), Some(4.0));
    }

    #[test]
    fn utilization_and_queue_length() {
        let mut s: FcfsServer<u32> = FcfsServer::new();
        s.arrive(0.0, 1);
        s.complete(4.0); // busy [0,4]
                         // idle [4,10]
        s.arrive(10.0, 2);
        s.complete(12.0); // busy [10,12]
        assert!((s.utilization(20.0) - 6.0 / 20.0).abs() < 1e-12);
        assert!((s.mean_number_in_system(20.0) - 6.0 / 20.0).abs() < 1e-12);
        assert_eq!(s.arrivals(), 2);
        assert_eq!(s.departures(), 2);
    }

    #[test]
    #[should_panic(expected = "idle server")]
    fn completion_on_idle_server_is_a_bug() {
        let mut s: FcfsServer<u32> = FcfsServer::new();
        s.complete(1.0);
    }

    #[test]
    fn reset_restores_the_fresh_state() {
        let mut s: FcfsServer<u32> = FcfsServer::new();
        s.arrive(0.0, 1);
        s.arrive(1.0, 2);
        s.complete(5.0);
        s.reset();
        assert!(s.is_empty());
        assert!(!s.is_busy());
        assert_eq!(s.arrivals(), 0);
        assert_eq!(s.departures(), 0);
        assert_eq!(s.waiting_time_stats().count(), 0);
        // A replayed history produces the same statistics as on a
        // fresh server.
        let mut fresh: FcfsServer<u32> = FcfsServer::new();
        for q in [&mut s, &mut fresh] {
            q.arrive(0.0, 1);
            q.arrive(1.0, 2);
            q.complete(5.0);
            q.complete(8.0);
        }
        assert_eq!(s.waiting_time_stats(), fresh.waiting_time_stats());
        assert_eq!(s.utilization(10.0).to_bits(), fresh.utilization(10.0).to_bits());
        assert_eq!(
            s.mean_number_in_system(10.0).to_bits(),
            fresh.mean_number_in_system(10.0).to_bits()
        );
    }
}
