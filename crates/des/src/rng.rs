//! Random-number streams and sampling distributions.
//!
//! The paper's simulators need exponential inter-arrival times
//! (assumption 1), uniformly distributed destinations (assumption 3) and
//! exponential service times (§5.2). Reproducibility requirements:
//!
//! * a single master seed determines the whole experiment;
//! * every component (each processor, each service centre) gets its own
//!   **stream** derived from the master seed and a stream id, so adding
//!   instrumentation or reordering component construction does not
//!   perturb unrelated streams.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 — used only to expand `(master_seed, stream_id)` into the
/// 64-bit seed for a stream. Standard constants from Steele et al.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A seedable random stream with the sampling methods the simulators
/// need.
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: SmallRng,
}

impl RngStream {
    /// Creates the stream identified by `stream_id` under `master_seed`.
    pub fn new(master_seed: u64, stream_id: u64) -> Self {
        let mixed = splitmix64(master_seed ^ splitmix64(stream_id));
        RngStream { rng: SmallRng::seed_from_u64(mixed) }
    }

    /// A uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// An exponential sample with the given rate (mean `1/rate`), via
    /// inversion. Uses `1 − U` so a zero uniform cannot produce `∞`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate.is_finite() && rate > 0.0, "exponential rate must be positive");
        -(1.0 - self.uniform()).ln() / rate
    }

    /// An exponential sample specified by its mean.
    #[inline]
    pub fn exponential_mean(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "exponential mean must be positive");
        -(1.0 - self.uniform()).ln() * mean
    }

    /// An Erlang-k sample with the given overall mean (sum of `k`
    /// exponential phases).
    pub fn erlang(&mut self, mean: f64, phases: u32) -> f64 {
        assert!(phases >= 1, "Erlang needs at least one phase");
        let phase_mean = mean / phases as f64;
        (0..phases).map(|_| self.exponential_mean(phase_mean)).sum()
    }

    /// A two-phase hyper-exponential sample with the given mean and
    /// squared coefficient of variation ≥ 1 (balanced-means fit).
    pub fn hyper_exponential(&mut self, mean: f64, scv: f64) -> f64 {
        assert!(scv >= 1.0, "hyper-exponential SCV must be >= 1");
        // Balanced-means two-phase fit: p1 = (1 + sqrt((scv-1)/(scv+1)))/2.
        let p1 = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
        let (p, m) = if self.uniform() < p1 {
            (p1, mean / (2.0 * p1))
        } else {
            (1.0 - p1, mean / (2.0 * (1.0 - p1)))
        };
        debug_assert!(p > 0.0);
        self.exponential_mean(m)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn uniform_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_below needs a positive bound");
        self.rng.gen_range(0..n)
    }

    /// A uniformly random element of `0..n` **excluding** `skip` — the
    /// paper's uniform destination draw (assumption 3: "any node in the
    /// system ... with uniform distribution", destinations differ from
    /// the source).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `skip >= n`.
    #[inline]
    pub fn uniform_excluding(&mut self, n: usize, skip: usize) -> usize {
        assert!(n >= 2, "need at least two values to exclude one");
        assert!(skip < n, "skip out of range");
        let draw = self.uniform_below(n - 1);
        if draw >= skip {
            draw + 1
        } else {
            draw
        }
    }

    /// A Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.uniform() < p
    }

    /// The next raw 64 bits of the stream (one underlying draw).
    #[inline]
    fn next_raw(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// A precomputed uniform-integer sampler over `[0, n)`.
///
/// [`RngStream::uniform_below`] recomputes its rejection zone —
/// `u64::MAX - (u64::MAX % span)`, an integer division — on every
/// call. The simulators draw destinations from the same one or two
/// ranges millions of times per run, so this caches the `(span, zone)`
/// pair once at model-build time. A draw consumes the same underlying
/// 64-bit stream values and applies the same rejection rule, so the
/// samples are **bit-identical** to the per-call path.
#[derive(Debug, Clone, Copy)]
pub struct UniformInt {
    span: u64,
    zone: u64,
}

impl UniformInt {
    /// Builds the sampler for `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "uniform_below needs a positive bound");
        let span = n as u64;
        UniformInt { span, zone: u64::MAX - (u64::MAX % span) }
    }

    /// A uniform draw from `[0, n)` on `stream` — bit-identical to
    /// `stream.uniform_below(n)`.
    #[inline]
    pub fn sample(&self, stream: &mut RngStream) -> usize {
        // Unbiased rejection sampling, mirroring `gen_range` exactly.
        loop {
            let v = stream.next_raw();
            if v < self.zone {
                return (v % self.span) as usize;
            }
        }
    }

    /// A uniform draw from `0..=n` **excluding** `skip` — bit-identical
    /// to `stream.uniform_excluding(n + 1, skip)` for a sampler built
    /// with `UniformInt::new(n)`.
    #[inline]
    pub fn sample_excluding(&self, stream: &mut RngStream, skip: usize) -> usize {
        let draw = self.sample(stream);
        if draw >= skip {
            draw + 1
        } else {
            draw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = RngStream::new(42, 7);
        let mut b = RngStream::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = RngStream::new(42, 0);
        let mut b = RngStream::new(42, 1);
        let same = (0..64).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RngStream::new(1, 0);
        let mut b = RngStream::new(2, 0);
        let same = (0..64).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn exponential_mean_is_right() {
        let mut r = RngStream::new(7, 0);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(0.25)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "sample mean {mean}, want 4");
    }

    #[test]
    fn exponential_is_memoryless_in_distribution() {
        // P(X > 2m) should be about P(X > m)^2.
        let mut r = RngStream::new(9, 3);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.exponential_mean(1.0)).collect();
        let p1 = samples.iter().filter(|&&x| x > 1.0).count() as f64 / n as f64;
        let p2 = samples.iter().filter(|&&x| x > 2.0).count() as f64 / n as f64;
        assert!((p2 - p1 * p1).abs() < 0.01);
    }

    #[test]
    fn erlang_reduces_variance() {
        let mut r = RngStream::new(11, 0);
        let n = 100_000;
        let sample_var = |samples: &[f64]| {
            let m = samples.iter().sum::<f64>() / samples.len() as f64;
            samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / samples.len() as f64
        };
        let e1: Vec<f64> = (0..n).map(|_| r.erlang(1.0, 1)).collect();
        let e4: Vec<f64> = (0..n).map(|_| r.erlang(1.0, 4)).collect();
        let (v1, v4) = (sample_var(&e1), sample_var(&e4));
        // SCV: 1 vs 0.25.
        assert!((v1 - 1.0).abs() < 0.05);
        assert!((v4 - 0.25).abs() < 0.02);
    }

    #[test]
    fn hyper_exponential_matches_moments() {
        let mut r = RngStream::new(13, 0);
        let n = 400_000;
        let samples: Vec<f64> = (0..n).map(|_| r.hyper_exponential(2.0, 4.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let scv = var / (mean * mean);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((scv - 4.0).abs() < 0.3, "scv {scv}");
    }

    #[test]
    fn uniform_below_covers_range() {
        let mut r = RngStream::new(3, 3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.uniform_below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_excluding_never_returns_skip_and_is_uniform() {
        let mut r = RngStream::new(5, 5);
        let n = 8;
        let skip = 3;
        let mut counts = vec![0u32; n];
        let draws = 70_000;
        for _ in 0..draws {
            let v = r.uniform_excluding(n, skip);
            assert_ne!(v, skip);
            counts[v] += 1;
        }
        let expect = draws as f64 / (n - 1) as f64;
        for (i, &c) in counts.iter().enumerate() {
            if i == skip {
                assert_eq!(c, 0);
            } else {
                assert!((c as f64 - expect).abs() < 0.05 * expect, "value {i}: {c}");
            }
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = RngStream::new(17, 0);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn uniform_int_is_bit_identical_to_uniform_below() {
        for n in [1usize, 2, 3, 7, 10, 255, 1000, 65_537] {
            let sampler = UniformInt::new(n);
            let mut a = RngStream::new(99, 4);
            let mut b = RngStream::new(99, 4);
            for _ in 0..2_000 {
                assert_eq!(sampler.sample(&mut a), b.uniform_below(n), "n = {n}");
            }
        }
    }

    #[test]
    fn uniform_int_excluding_is_bit_identical() {
        let n = 12;
        let sampler = UniformInt::new(n - 1);
        let mut a = RngStream::new(123, 8);
        let mut b = RngStream::new(123, 8);
        for skip in 0..n {
            for _ in 0..500 {
                assert_eq!(
                    sampler.sample_excluding(&mut a, skip),
                    b.uniform_excluding(n, skip),
                    "skip = {skip}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn uniform_int_rejects_zero_bound() {
        UniformInt::new(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        RngStream::new(0, 0).exponential(0.0);
    }

    #[test]
    #[should_panic(expected = "skip out of range")]
    fn uniform_excluding_validates_skip() {
        RngStream::new(0, 0).uniform_excluding(4, 4);
    }
}
