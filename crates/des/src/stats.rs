//! Output statistics for simulation runs.
//!
//! * [`OnlineStats`] — numerically stable (Welford) running mean /
//!   variance / extrema for observation-based data such as message
//!   latencies (the paper's "sink module").
//! * [`TimeWeighted`] — time-weighted averages for state variables such
//!   as queue lengths.
//! * [`Histogram`] — fixed-width binning for latency distributions.
//! * [`confidence_interval`] — normal-approximation confidence
//!   half-widths for sample means.
//! * [`BatchMeans`] — the classic single-run output-analysis method:
//!   groups a correlated observation series into batches whose means are
//!   approximately independent.

/// Numerically stable running moments (Welford's algorithm).
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    /// Same as [`OnlineStats::new`]. (A derived `Default` would zero
    /// the `min`/`max` sentinels instead of using ±∞, making the first
    /// recorded observation compare against a phantom `0.0`.)
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    ///
    /// Returns the documented sentinel `0.0` with fewer than 2
    /// observations (the variance is undefined there, but a NaN would
    /// poison every downstream CI computation — a single-replication
    /// run must format as "± 0.0", not "± NaN").
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford
    /// combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted statistics for a piecewise-constant state variable
/// (e.g. a queue length).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    last_time: f64,
    last_value: f64,
    area: f64,
    start_time: f64,
    max: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Creates an accumulator; the first `update` sets the initial time
    /// and value.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: 0.0,
            last_value: 0.0,
            area: 0.0,
            start_time: 0.0,
            max: f64::NEG_INFINITY,
            started: false,
        }
    }

    /// Records that the variable changed to `value` at `time`
    /// (non-decreasing times required).
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous update.
    pub fn update(&mut self, time: f64, value: f64) {
        if !self.started {
            self.started = true;
            self.start_time = time;
        } else {
            assert!(time >= self.last_time, "time must be non-decreasing");
            self.area += (time - self.last_time) * self.last_value;
        }
        self.last_time = time;
        self.last_value = value;
        self.max = self.max.max(value);
    }

    /// Time-weighted mean over `[start, until]`.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes the last update.
    pub fn mean_until(&self, until: f64) -> f64 {
        if !self.started || until <= self.start_time {
            return 0.0;
        }
        assert!(until >= self.last_time, "until precedes the last update");
        let area = self.area + (until - self.last_time) * self.last_value;
        area / (until - self.start_time)
    }

    /// Maximum observed value (`None` before any update).
    pub fn max(&self) -> Option<f64> {
        self.started.then_some(self.max)
    }

    /// Current value (`None` before any update).
    pub fn current(&self) -> Option<f64> {
        self.started.then_some(self.last_value)
    }
}

/// A fixed-width histogram over `[low, high)` with overflow/underflow
/// buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning
    /// `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics unless `low < high` and `bins ≥ 1`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(low < high, "invalid histogram range");
        assert!(bins >= 1, "histogram needs at least one bin");
        Histogram {
            low,
            width: (high - low) / bins as f64,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.low {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.low) / self.width) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn bin_len(&self) -> usize {
        self.bins.len()
    }

    /// `[low, high)` range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let lo = self.low + i as f64 * self.width;
        (lo, lo + self.width)
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// Approximate quantile from bin midpoints (`None` when empty or `q`
    /// outside `[0,1]`). Underflow/overflow observations clamp to the
    /// range ends.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) || self.total() == 0 {
            return None;
        }
        let target = (q * self.total() as f64).ceil().max(1.0) as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return Some(self.low);
        }
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                let (lo, hi) = self.bin_range(i);
                return Some(0.5 * (lo + hi));
            }
        }
        Some(self.low + self.width * self.bins.len() as f64)
    }
}

/// Two-sided normal-approximation confidence half-width for a sample
/// mean: `z · s/√n`. Supported levels: 0.90, 0.95, 0.99.
///
/// With fewer than 2 observations the half-width is the documented
/// sentinel `0.0` (via [`OnlineStats::std_error`]), never NaN, so a
/// single-replication run still formats a finite `± 0.0` interval.
///
/// # Panics
///
/// Panics on an unsupported level.
pub fn confidence_interval(stats: &OnlineStats, level: f64) -> f64 {
    let z = match level {
        l if (l - 0.90).abs() < 1e-9 => 1.6449,
        l if (l - 0.95).abs() < 1e-9 => 1.9600,
        l if (l - 0.99).abs() < 1e-9 => 2.5758,
        _ => panic!("unsupported confidence level {level}; use 0.90, 0.95 or 0.99"),
    };
    z * stats.std_error()
}

/// Batch-means output analysis: splits a correlated series into `k`
/// equal batches and summarises the batch means, whose correlation is
/// far weaker than the raw series'.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: usize,
    current: Vec<f64>,
    batch_means: OnlineStats,
}

impl BatchMeans {
    /// Creates an accumulator with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current: Vec::with_capacity(batch_size),
            batch_means: OnlineStats::new(),
        }
    }

    /// Adds one observation; completes a batch when full.
    pub fn record(&mut self, x: f64) {
        self.current.push(x);
        if self.current.len() == self.batch_size {
            let mean = self.current.iter().sum::<f64>() / self.batch_size as f64;
            self.batch_means.record(mean);
            self.current.clear();
        }
    }

    /// Statistics over completed batch means.
    pub fn batch_stats(&self) -> &OnlineStats {
        &self.batch_means
    }

    /// Number of completed batches.
    pub fn completed_batches(&self) -> u64 {
        self.batch_means.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_new_including_extrema_sentinels() {
        // Regression: the derived Default zeroed min/max, so
        // OnlineStats::default() + record(5.0) reported min = Some(0.0).
        assert_eq!(OnlineStats::default(), OnlineStats::new());
        let mut s = OnlineStats::default();
        s.record(5.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
        let mut neg = OnlineStats::default();
        neg.record(-3.0);
        assert_eq!(neg.max(), Some(-3.0));
    }

    #[test]
    fn single_observation_ci_is_finite_zero() {
        // A 1-replication run must report "± 0.0", never NaN: the
        // count < 2 sentinel has to hold through std_error and every
        // supported confidence level.
        let mut s = OnlineStats::new();
        s.record(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        for level in [0.90, 0.95, 0.99] {
            let half = confidence_interval(&s, level);
            assert!(half.is_finite(), "CI at {level} must be finite, got {half}");
            assert_eq!(half, 0.0);
        }
    }

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(1.0);
        a.record(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn time_weighted_mean() {
        let mut t = TimeWeighted::new();
        t.update(0.0, 0.0); // empty queue
        t.update(10.0, 2.0); // 2 customers from t=10
        t.update(30.0, 1.0); // 1 from t=30
                             // Mean over [0, 40]: (10*0 + 20*2 + 10*1)/40 = 1.25.
        assert!((t.mean_until(40.0) - 1.25).abs() < 1e-12);
        assert_eq!(t.max(), Some(2.0));
        assert_eq!(t.current(), Some(1.0));
    }

    #[test]
    fn time_weighted_before_start_is_zero() {
        let t = TimeWeighted::new();
        assert_eq!(t.mean_until(100.0), 0.0);
        assert_eq!(t.max(), None);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_weighted_rejects_time_travel() {
        let mut t = TimeWeighted::new();
        t.update(10.0, 1.0);
        t.update(5.0, 2.0);
    }

    #[test]
    fn histogram_bins_and_tails() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_count(0), 2); // 0.0, 1.9
        assert_eq!(h.bin_count(1), 1); // 2.0
        assert_eq!(h.bin_count(4), 1); // 9.99
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_range(1), (2.0, 4.0));
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 49.5).abs() <= 1.0);
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 95.0);
        assert_eq!(Histogram::new(0.0, 1.0, 2).quantile(0.5), None, "empty");
        assert_eq!(h.quantile(1.5), None);
    }

    #[test]
    fn confidence_interval_shrinks_with_n() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        let mut seed = 123456789u64;
        for i in 0..10_000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = (seed >> 33) as f64 / (u32::MAX as f64);
            if i < 100 {
                small.record(x);
            }
            large.record(x);
        }
        assert!(confidence_interval(&large, 0.95) < confidence_interval(&small, 0.95));
        assert!(confidence_interval(&large, 0.99) > confidence_interval(&large, 0.95));
        assert!(confidence_interval(&large, 0.90) < confidence_interval(&large, 0.95));
    }

    #[test]
    #[should_panic(expected = "unsupported confidence level")]
    fn confidence_interval_validates_level() {
        confidence_interval(&OnlineStats::new(), 0.42);
    }

    #[test]
    fn batch_means_reduces_to_batches() {
        let mut bm = BatchMeans::new(10);
        for i in 0..95 {
            bm.record(i as f64);
        }
        // 9 complete batches; the partial 10th is pending.
        assert_eq!(bm.completed_batches(), 9);
        // First batch mean = 4.5, second = 14.5, ...
        assert!((bm.batch_stats().mean() - 44.5).abs() < 1e-12);
    }
}
