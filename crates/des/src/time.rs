//! Simulation time.
//!
//! Time is kept as a `f64` count of microseconds wrapped in a newtype so
//! that durations and instants cannot be confused with other floats. The
//! whole workspace uses microseconds (the unit of the paper's latency
//! constants) and converts to milliseconds only for reporting.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant (or duration) on the simulation clock, in microseconds.
///
/// `SimTime` is totally ordered; constructing or deriving a NaN time is
/// a programming error and panics on comparison.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from microseconds.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative input.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        assert!(us >= 0.0, "SimTime must be non-negative, got {us}");
        SimTime(us)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Self::from_us(ms * 1e3)
    }

    /// Creates a time from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        Self::from_us(s * 1e6)
    }

    /// Value in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0
    }

    /// Value in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 / 1e3
    }

    /// Value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1e6
    }

    /// Saturating subtraction: `max(self − other, 0)`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("NaN SimTime")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Difference between two instants.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative (durations are
    /// non-negative by construction).
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        assert!(self.0 >= rhs.0, "SimTime subtraction underflow: {} - {}", self.0, rhs.0);
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} s", self.as_secs())
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} ms", self.as_ms())
        } else {
            write!(f, "{:.3} µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ms(1.5);
        assert_eq!(t.as_us(), 1500.0);
        assert_eq!(t.as_ms(), 1.5);
        assert_eq!(SimTime::from_secs(2.0).as_us(), 2e6);
        assert_eq!(SimTime::from_secs(2.0).as_secs(), 2.0);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_us(10.0);
        let b = SimTime::from_us(20.0);
        assert!(a < b);
        assert_eq!(a + a, b);
        assert_eq!(b - a, a);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        let mut c = a;
        c += a;
        assert_eq!(c, b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_us(1.0) - SimTime::from_us(2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        SimTime::from_us(-1.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_us(5.0)), "5.000 µs");
        assert_eq!(format!("{}", SimTime::from_us(5000.0)), "5.000 ms");
        assert_eq!(format!("{}", SimTime::from_secs(5.0)), "5.000 s");
    }
}
