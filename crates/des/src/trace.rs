//! Bounded event tracing for simulation debugging and auditing.
//!
//! A [`Tracer`] keeps the last `capacity` trace records in a ring
//! buffer — enough to reconstruct "what led up to this" when an
//! invariant fires deep into a run, without unbounded memory. Records
//! carry the simulation time, a static category, and a formatted
//! detail string; the tracer counts everything it ever saw, including
//! records that have since been evicted.

use crate::time::SimTime;
use std::collections::VecDeque;

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub time: SimTime,
    /// Static category label (e.g. "arrival", "service-start").
    pub category: &'static str,
    /// Free-form detail.
    pub detail: String,
}

/// A bounded, always-on event trace.
#[derive(Debug, Clone)]
pub struct Tracer {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    total_recorded: u64,
    enabled: bool,
}

impl Tracer {
    /// Creates a tracer retaining the last `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (disable with [`Tracer::set_enabled`]
    /// instead).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            capacity,
            records: VecDeque::with_capacity(capacity),
            total_recorded: 0,
            enabled: true,
        }
    }

    /// Turns recording on or off (counting stops too when off).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    pub fn record(&mut self, time: SimTime, category: &'static str, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.total_recorded += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(TraceRecord { time, category, detail: detail.into() });
    }

    /// Records seen over the tracer's lifetime (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Currently retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Retained records of one category, oldest first.
    pub fn by_category<'a>(
        &'a self,
        category: &'static str,
    ) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.category == category)
    }

    /// Renders the retained trace as one line per record.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!("[{}] {}: {}\n", r.time, r.category, r.detail));
        }
        out
    }

    /// Clears retained records (the lifetime counter is kept).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: f64) -> SimTime {
        SimTime::from_us(us)
    }

    #[test]
    fn retains_only_the_tail() {
        let mut tr = Tracer::new(3);
        for i in 0..10 {
            tr.record(t(i as f64), "tick", format!("event {i}"));
        }
        assert_eq!(tr.total_recorded(), 10);
        let kept: Vec<&str> = tr.records().map(|r| r.detail.as_str()).collect();
        assert_eq!(kept, vec!["event 7", "event 8", "event 9"]);
    }

    #[test]
    fn category_filtering() {
        let mut tr = Tracer::new(10);
        tr.record(t(1.0), "arrival", "msg 1");
        tr.record(t(2.0), "departure", "msg 1");
        tr.record(t(3.0), "arrival", "msg 2");
        assert_eq!(tr.by_category("arrival").count(), 2);
        assert_eq!(tr.by_category("departure").count(), 1);
        assert_eq!(tr.by_category("unknown").count(), 0);
    }

    #[test]
    fn disable_stops_recording() {
        let mut tr = Tracer::new(4);
        tr.record(t(1.0), "a", "kept");
        tr.set_enabled(false);
        assert!(!tr.is_enabled());
        tr.record(t(2.0), "a", "dropped");
        assert_eq!(tr.total_recorded(), 1);
        assert_eq!(tr.records().count(), 1);
        tr.set_enabled(true);
        tr.record(t(3.0), "a", "kept again");
        assert_eq!(tr.total_recorded(), 2);
    }

    #[test]
    fn render_and_clear() {
        let mut tr = Tracer::new(4);
        tr.record(t(1500.0), "service", "start msg 7");
        let s = tr.render();
        assert!(s.contains("1.500 ms"));
        assert!(s.contains("service"));
        assert!(s.contains("start msg 7"));
        tr.clear();
        assert_eq!(tr.records().count(), 0);
        assert_eq!(tr.total_recorded(), 1, "lifetime counter survives clear");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        Tracer::new(0);
    }
}
