//! Bounded event tracing for simulation debugging and auditing.
//!
//! A [`Tracer`] keeps the last `capacity` trace records in a ring
//! buffer — enough to reconstruct "what led up to this" when an
//! invariant fires deep into a run, without unbounded memory. Records
//! carry the simulation time, a static category, and a formatted
//! detail string; the tracer counts everything it ever saw — both in
//! total and per category — including records that have since been
//! evicted, and can export the trace as JSON lines
//! ([`Tracer::export_jsonl`]) for offline analysis.

use crate::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub time: SimTime,
    /// Static category label (e.g. "arrival", "service-start").
    pub category: &'static str,
    /// Free-form detail.
    pub detail: String,
}

/// A bounded, always-on event trace.
#[derive(Debug, Clone)]
pub struct Tracer {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    total_recorded: u64,
    category_counts: BTreeMap<&'static str, u64>,
    enabled: bool,
}

/// The lifetime summary carried by a JSON-lines trace export: total
/// records ever seen and the per-category counts, both including
/// records evicted from the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Records seen over the tracer's lifetime.
    pub total_recorded: u64,
    /// Lifetime record count per category.
    pub categories: BTreeMap<String, u64>,
}

impl Tracer {
    /// Creates a tracer retaining the last `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (disable with [`Tracer::set_enabled`]
    /// instead).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            capacity,
            records: VecDeque::with_capacity(capacity),
            total_recorded: 0,
            category_counts: BTreeMap::new(),
            enabled: true,
        }
    }

    /// Turns recording on or off (counting stops too when off).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    pub fn record(&mut self, time: SimTime, category: &'static str, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.total_recorded += 1;
        *self.category_counts.entry(category).or_insert(0) += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(TraceRecord { time, category, detail: detail.into() });
    }

    /// Records seen over the tracer's lifetime (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Currently retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Retained records of one category, oldest first.
    pub fn by_category<'a>(
        &'a self,
        category: &'static str,
    ) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.category == category)
    }

    /// Renders the retained trace as one line per record.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!("[{}] {}: {}\n", r.time, r.category, r.detail));
        }
        out
    }

    /// Lifetime record count per category, including evicted records
    /// (cleared by nothing — like [`Tracer::total_recorded`]).
    pub fn category_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.category_counts
    }

    /// Exports the trace as JSON lines: one object per retained record
    /// (`{"time_us":…,"category":…,"detail":…}`) followed by one
    /// summary object carrying the lifetime totals
    /// (`{"type":"summary","total_recorded":…,"categories":{…}}`).
    /// The summary covers *every* record ever seen, so category counts
    /// survive ring-buffer eviction; [`Tracer::parse_jsonl_summary`]
    /// round-trips it.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "{{\"time_us\":{},\"category\":{},\"detail\":{}}}\n",
                r.time.as_us(),
                json_string(r.category),
                json_string(&r.detail)
            ));
        }
        out.push_str(&format!(
            "{{\"type\":\"summary\",\"total_recorded\":{},\"categories\":{{",
            self.total_recorded
        ));
        for (i, (category, count)) in self.category_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{count}", json_string(category)));
        }
        out.push_str("}}\n");
        out
    }

    /// Parses the summary line of a [`Tracer::export_jsonl`] export.
    /// Returns `None` when no summary line is present. This reads the
    /// tracer's own export format (it is not a general JSON parser).
    pub fn parse_jsonl_summary(jsonl: &str) -> Option<TraceSummary> {
        let line =
            jsonl.lines().rev().find(|l| l.trim_start().starts_with("{\"type\":\"summary\""))?;
        let total_key = "\"total_recorded\":";
        let start = line.find(total_key)? + total_key.len();
        let digits: String = line[start..].chars().take_while(char::is_ascii_digit).collect();
        let total_recorded = digits.parse().ok()?;

        let cat_key = "\"categories\":{";
        let mut rest = &line[line.find(cat_key)? + cat_key.len()..];
        let mut categories = BTreeMap::new();
        while !rest.starts_with('}') {
            let (name, after) = parse_json_string(rest)?;
            rest = after.strip_prefix(':')?;
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            rest = &rest[digits.len()..];
            categories.insert(name, digits.parse().ok()?);
            rest = rest.strip_prefix(',').unwrap_or(rest);
        }
        Some(TraceSummary { total_recorded, categories })
    }

    /// Clears retained records (the lifetime counters are kept).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

/// Serialises `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a JSON string literal at the head of `input`, returning the
/// unescaped value and the remainder after the closing quote.
fn parse_json_string(input: &str) -> Option<(String, &str)> {
    let rest = input.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &rest[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let (j, _) = chars.next()?;
                    let hex = rest.get(j..j + 4)?;
                    out.push(char::from_u32(u32::from_str_radix(hex, 16).ok()?)?);
                    for _ in 0..3 {
                        chars.next()?;
                    }
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: f64) -> SimTime {
        SimTime::from_us(us)
    }

    #[test]
    fn retains_only_the_tail() {
        let mut tr = Tracer::new(3);
        for i in 0..10 {
            tr.record(t(i as f64), "tick", format!("event {i}"));
        }
        assert_eq!(tr.total_recorded(), 10);
        let kept: Vec<&str> = tr.records().map(|r| r.detail.as_str()).collect();
        assert_eq!(kept, vec!["event 7", "event 8", "event 9"]);
    }

    #[test]
    fn category_filtering() {
        let mut tr = Tracer::new(10);
        tr.record(t(1.0), "arrival", "msg 1");
        tr.record(t(2.0), "departure", "msg 1");
        tr.record(t(3.0), "arrival", "msg 2");
        assert_eq!(tr.by_category("arrival").count(), 2);
        assert_eq!(tr.by_category("departure").count(), 1);
        assert_eq!(tr.by_category("unknown").count(), 0);
    }

    #[test]
    fn disable_stops_recording() {
        let mut tr = Tracer::new(4);
        tr.record(t(1.0), "a", "kept");
        tr.set_enabled(false);
        assert!(!tr.is_enabled());
        tr.record(t(2.0), "a", "dropped");
        assert_eq!(tr.total_recorded(), 1);
        assert_eq!(tr.records().count(), 1);
        tr.set_enabled(true);
        tr.record(t(3.0), "a", "kept again");
        assert_eq!(tr.total_recorded(), 2);
    }

    #[test]
    fn render_and_clear() {
        let mut tr = Tracer::new(4);
        tr.record(t(1500.0), "service", "start msg 7");
        let s = tr.render();
        assert!(s.contains("1.500 ms"));
        assert!(s.contains("service"));
        assert!(s.contains("start msg 7"));
        tr.clear();
        assert_eq!(tr.records().count(), 0);
        assert_eq!(tr.total_recorded(), 1, "lifetime counter survives clear");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        Tracer::new(0);
    }

    #[test]
    fn category_counts_survive_eviction_and_clear() {
        let mut tr = Tracer::new(2);
        for i in 0..7 {
            tr.record(t(i as f64), if i % 2 == 0 { "arrival" } else { "departure" }, "x");
        }
        assert_eq!(tr.records().count(), 2, "ring keeps only the tail");
        assert_eq!(tr.category_counts()["arrival"], 4);
        assert_eq!(tr.category_counts()["departure"], 3);
        tr.clear();
        assert_eq!(tr.category_counts()["arrival"], 4, "lifetime counts survive clear");
    }

    #[test]
    fn jsonl_export_round_trips_category_counts_including_evicted() {
        // Capacity 3 but 10 records: 7 are evicted, yet the exported
        // summary must still carry the full lifetime counts.
        let mut tr = Tracer::new(3);
        for i in 0..6 {
            tr.record(t(i as f64), "arrival", format!("msg {i}"));
        }
        for i in 0..3 {
            tr.record(t(10.0 + i as f64), "service-start", format!("msg {i}"));
        }
        tr.record(t(20.0), "drop", "queue \"full\"\nbuffer at limit");

        let jsonl = tr.export_jsonl();
        // 3 retained records + 1 summary line.
        assert_eq!(jsonl.lines().count(), 4);

        let summary = Tracer::parse_jsonl_summary(&jsonl).unwrap();
        assert_eq!(summary.total_recorded, 10);
        assert_eq!(summary.categories["arrival"], 6);
        assert_eq!(summary.categories["service-start"], 3);
        assert_eq!(summary.categories["drop"], 1);

        // The retained record lines carry escaped details verbatim.
        assert!(jsonl.contains("queue \\\"full\\\"\\nbuffer at limit"));
    }

    #[test]
    fn jsonl_summary_parser_handles_escaped_category_names() {
        let raw = "{\"type\":\"summary\",\"total_recorded\":2,\
                   \"categories\":{\"a\\\\b\":1,\"c \\\"d\\\"\":1}}\n";
        let summary = Tracer::parse_jsonl_summary(raw).unwrap();
        assert_eq!(summary.categories["a\\b"], 1);
        assert_eq!(summary.categories["c \"d\""], 1);
    }

    #[test]
    fn jsonl_summary_parser_rejects_garbage() {
        assert_eq!(Tracer::parse_jsonl_summary(""), None);
        assert_eq!(Tracer::parse_jsonl_summary("not json\n"), None);
    }

    #[test]
    fn empty_tracer_exports_empty_summary() {
        let tr = Tracer::new(4);
        let jsonl = tr.export_jsonl();
        let summary = Tracer::parse_jsonl_summary(&jsonl).unwrap();
        assert_eq!(summary, TraceSummary::default());
    }
}
