//! Stress and determinism tests for the DES kernel: large event
//! volumes, chronological ordering under churn, and bit-exact replay.

use hmcs_des::engine::{Engine, Model, Scheduler};
use hmcs_des::rng::RngStream;
use hmcs_des::time::SimTime;

/// A model that schedules bursts of randomly-timed future events and
/// records the order it sees them in.
struct Churn {
    rng: RngStream,
    seen: Vec<f64>,
    spawned: u64,
    budget: u64,
}

impl Model for Churn {
    type Event = u64;

    fn handle(&mut self, now: SimTime, _id: u64, s: &mut Scheduler<u64>) {
        self.seen.push(now.as_us());
        // Spawn up to 3 future events while the budget lasts.
        for _ in 0..3 {
            if self.spawned < self.budget {
                self.spawned += 1;
                let delay = self.rng.exponential_mean(50.0);
                s.schedule_in(now, SimTime::from_us(delay), self.spawned);
            }
        }
    }
}

fn run_churn(seed: u64, budget: u64) -> Vec<f64> {
    let mut e =
        Engine::new(Churn { rng: RngStream::new(seed, 0), seen: Vec::new(), spawned: 0, budget });
    e.scheduler_mut().schedule_at(SimTime::ZERO, 0);
    e.run_to_completion();
    e.into_model().seen
}

#[test]
fn one_hundred_thousand_events_stay_chronological() {
    let seen = run_churn(42, 100_000);
    assert_eq!(seen.len(), 100_001);
    for w in seen.windows(2) {
        assert!(w[0] <= w[1], "time ran backwards: {} then {}", w[0], w[1]);
    }
}

#[test]
fn replay_is_bit_exact() {
    let a = run_churn(7, 20_000);
    let b = run_churn(7, 20_000);
    assert_eq!(a, b);
    let c = run_churn(8, 20_000);
    assert_ne!(a, c);
}

/// Simultaneous events drain in scheduling order even under heavy ties.
struct TieStorm {
    order: Vec<u32>,
}

impl Model for TieStorm {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, id: u32, _s: &mut Scheduler<u32>) {
        self.order.push(id);
    }
}

#[test]
fn ten_thousand_ties_drain_fifo() {
    let mut e = Engine::new(TieStorm { order: Vec::new() });
    let t = SimTime::from_us(123.0);
    for i in 0..10_000 {
        e.scheduler_mut().schedule_at(t, i);
    }
    e.run_to_completion();
    let order = e.into_model().order;
    assert_eq!(order.len(), 10_000);
    assert!(order.windows(2).all(|w| w[0] < w[1]), "ties must drain FIFO");
}

/// Event-limit stops are exact even mid-burst.
#[test]
fn event_limit_is_exact_under_churn() {
    let mut e = Engine::new(Churn {
        rng: RngStream::new(3, 1),
        seen: Vec::new(),
        spawned: 0,
        budget: 50_000,
    });
    e.scheduler_mut().schedule_at(SimTime::ZERO, 0);
    e.run_until(Some(12_345), None, |_| false);
    assert_eq!(e.events_processed(), 12_345);
}
