//! End-to-end kernel validation: simulate an M/M/1 queue with the DES
//! engine and compare against the exact closed forms. This is the same
//! validation pattern the paper applies to its analytical model (§6),
//! executed here on a system whose answer is known exactly.

use hmcs_des::engine::{Engine, Model, Scheduler};
use hmcs_des::queue::{FcfsServer, ServiceDirective};
use hmcs_des::rng::RngStream;
use hmcs_des::stats::OnlineStats;
use hmcs_des::time::SimTime;

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival,
    Departure,
}

struct MM1Sim {
    lambda: f64,
    mu: f64,
    arrivals_rng: RngStream,
    service_rng: RngStream,
    server: FcfsServer<u64>,
    next_id: u64,
    entered: std::collections::HashMap<u64, f64>,
    sojourns: OnlineStats,
    completed_limit: u64,
}

impl MM1Sim {
    fn new(lambda: f64, mu: f64, seed: u64, completed_limit: u64) -> Self {
        MM1Sim {
            lambda,
            mu,
            arrivals_rng: RngStream::new(seed, 0),
            service_rng: RngStream::new(seed, 1),
            server: FcfsServer::new(),
            next_id: 0,
            entered: std::collections::HashMap::new(),
            sojourns: OnlineStats::new(),
            completed_limit,
        }
    }

    fn schedule_service(&mut self, now: SimTime, s: &mut Scheduler<Ev>) {
        let svc = self.service_rng.exponential(self.mu);
        s.schedule_in(now, SimTime::from_us(svc), Ev::Departure);
    }
}

impl Model for MM1Sim {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, s: &mut Scheduler<Ev>) {
        match event {
            Ev::Arrival => {
                let id = self.next_id;
                self.next_id += 1;
                self.entered.insert(id, now.as_us());
                if let ServiceDirective::StartService(_) = self.server.arrive(now.as_us(), id) {
                    self.schedule_service(now, s);
                }
                // Next arrival (open Poisson source).
                let gap = self.arrivals_rng.exponential(self.lambda);
                s.schedule_in(now, SimTime::from_us(gap), Ev::Arrival);
            }
            Ev::Departure => {
                let (done, directive) = self.server.complete(now.as_us());
                let t0 = self.entered.remove(&done).expect("unknown customer");
                self.sojourns.record(now.as_us() - t0);
                if let ServiceDirective::StartService(_) = directive {
                    self.schedule_service(now, s);
                }
            }
        }
    }
}

fn run_mm1(lambda: f64, mu: f64, seed: u64, messages: u64) -> (f64, f64, f64) {
    let mut engine = Engine::new(MM1Sim::new(lambda, mu, seed, messages));
    engine.scheduler_mut().schedule_at(SimTime::ZERO, Ev::Arrival);
    engine.run_until(None, None, |m| m.sojourns.count() >= m.completed_limit);
    let m = engine.model();
    let now = engine.now().as_us();
    (m.sojourns.mean(), m.server.utilization(now), m.server.mean_number_in_system(now))
}

#[test]
fn mm1_simulation_matches_theory_at_moderate_load() {
    // rho = 0.5: W = 1/(mu - lambda) = 2/mu.
    let (lambda, mu) = (0.005, 0.01); // per µs
    let (w, util, l) = run_mm1(lambda, mu, 42, 200_000);
    let w_theory = 1.0 / (mu - lambda);
    assert!((w - w_theory).abs() / w_theory < 0.03, "sojourn: sim {w:.1} vs theory {w_theory:.1}");
    assert!((util - 0.5).abs() < 0.02, "utilization {util}");
    let l_theory = 1.0; // rho/(1-rho)
    assert!((l - l_theory).abs() / l_theory < 0.05, "L: sim {l} vs 1.0");
}

#[test]
fn mm1_simulation_matches_theory_at_high_load() {
    // rho = 0.9: heavier correlation, wider tolerance.
    let (lambda, mu) = (0.009, 0.01);
    let (w, util, _) = run_mm1(lambda, mu, 7, 400_000);
    let w_theory = 1.0 / (mu - lambda);
    assert!((w - w_theory).abs() / w_theory < 0.08, "sojourn: sim {w:.1} vs theory {w_theory:.1}");
    assert!((util - 0.9).abs() < 0.02);
}

#[test]
fn mm1_results_are_seed_reproducible() {
    let a = run_mm1(0.004, 0.01, 99, 20_000);
    let b = run_mm1(0.004, 0.01, 99, 20_000);
    assert_eq!(a, b);
    let c = run_mm1(0.004, 0.01, 100, 20_000);
    assert_ne!(a, c, "different seeds should differ");
}

#[test]
fn littles_law_holds_in_simulation() {
    let (lambda, mu) = (0.006, 0.01);
    let mut engine = Engine::new(MM1Sim::new(lambda, mu, 5, 150_000));
    engine.scheduler_mut().schedule_at(SimTime::ZERO, Ev::Arrival);
    engine.run_until(None, None, |m| m.sojourns.count() >= m.completed_limit);
    let now = engine.now().as_us();
    let m = engine.model();
    let l = m.server.mean_number_in_system(now);
    let throughput = m.server.departures() as f64 / now;
    let w = m.sojourns.mean();
    // L = X * W within sampling noise.
    assert!((l - throughput * w).abs() / l < 0.03, "L={l} X*W={}", throughput * w);
}
