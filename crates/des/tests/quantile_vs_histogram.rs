//! Cross-validation of the two tail-estimation tools: the P² streaming
//! estimator against the binned histogram quantiles, on identical
//! streams.

use hmcs_des::quantile::P2Quantile;
use hmcs_des::rng::RngStream;
use hmcs_des::stats::Histogram;

fn stream(seed: u64, n: usize, f: impl Fn(&mut RngStream) -> f64) -> Vec<f64> {
    let mut rng = RngStream::new(seed, 0);
    (0..n).map(|_| f(&mut rng)).collect()
}

fn check_agreement(data: &[f64], level: f64, range_hi: f64, tolerance: f64) {
    let mut p2 = P2Quantile::new(level);
    let mut hist = Histogram::new(0.0, range_hi, 2_000);
    for &x in data {
        p2.record(x);
        hist.record(x);
    }
    let a = p2.estimate().unwrap();
    let b = hist.quantile(level).unwrap();
    assert!((a - b).abs() <= tolerance * b.max(1.0), "q{level}: P2 {a} vs histogram {b}");
}

#[test]
fn uniform_stream_agreement() {
    let data = stream(1, 60_000, |r| r.uniform() * 100.0);
    check_agreement(&data, 0.5, 100.0, 0.03);
    check_agreement(&data, 0.95, 100.0, 0.03);
}

#[test]
fn exponential_stream_agreement() {
    let data = stream(2, 60_000, |r| r.exponential_mean(20.0));
    check_agreement(&data, 0.5, 400.0, 0.05);
    check_agreement(&data, 0.99, 400.0, 0.08);
}

#[test]
fn erlang_stream_agreement() {
    let data = stream(3, 60_000, |r| r.erlang(10.0, 4));
    check_agreement(&data, 0.5, 100.0, 0.05);
    check_agreement(&data, 0.95, 100.0, 0.05);
}

#[test]
fn heavy_tailed_hyperexponential_agreement() {
    let data = stream(4, 80_000, |r| r.hyper_exponential(5.0, 9.0));
    // Heavy tails are the hard case for both estimators; allow wider
    // slack but demand the same order of magnitude.
    check_agreement(&data, 0.95, 300.0, 0.15);
}
