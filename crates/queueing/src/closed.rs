//! Closed queueing-network results: the machine-repairman model and
//! exact Mean Value Analysis (MVA).
//!
//! Assumption 4 of the paper — "processors which are source of request
//! must be waiting until they get service and cannot generate any other
//! request in wait state" — makes the *real* system a closed network:
//! `N` customers (processors) alternate between a think state
//! (exponential, rate λ) and the communication-network service centres.
//! The paper approximates this with an open network plus the effective-
//! rate fixed point of eq. 7. This module provides the exact closed-form
//! alternatives used to assess that approximation
//! (`ablation-accounting` experiment).

use crate::error::{check_pos_rate, QueueingError};

/// The classic machine-repairman (finite-source) model:
/// `N` machines each failing at exponential rate λ (think rate), a single
/// exponential repairman of rate µ, FCFS repair queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineRepairman {
    population: u32,
    think_rate: f64,
    service_rate: f64,
}

/// Steady-state metrics of a [`MachineRepairman`] system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairmanMetrics {
    /// Mean number of machines at the repair station (queue + service).
    pub mean_number_at_server: f64,
    /// Server (repairman) utilization.
    pub utilization: f64,
    /// System throughput: completed repairs per unit time.
    pub throughput: f64,
    /// Mean response time at the repair station (Little on the station).
    pub mean_response_time: f64,
    /// Effective per-machine request rate: throughput / population.
    pub effective_rate_per_machine: f64,
}

impl MachineRepairman {
    /// Creates a machine-repairman model.
    pub fn new(population: u32, think_rate: f64, service_rate: f64) -> Result<Self, QueueingError> {
        if population == 0 {
            return Err(QueueingError::InvalidParameter {
                name: "population",
                reason: "must be at least 1",
            });
        }
        check_pos_rate("think_rate", think_rate)?;
        check_pos_rate("service_rate", service_rate)?;
        Ok(MachineRepairman { population, think_rate, service_rate })
    }

    /// Steady-state distribution `π_n` of the number of machines at the
    /// repair station, n = 0..=N. Computed from the birth–death balance
    /// `π_n = π_0 · Π_{i<n} (N−i)λ/µ` with normalisation, evaluated in a
    /// numerically safe way (running maximum subtraction in log space is
    /// unnecessary for N ≤ a few thousand, so plain scaling is used).
    pub fn state_distribution(&self) -> Vec<f64> {
        let n = self.population as usize;
        let r = self.think_rate / self.service_rate;
        let mut unnorm = Vec::with_capacity(n + 1);
        let mut cur = 1.0f64;
        unnorm.push(cur);
        for i in 0..n {
            cur *= (self.population as f64 - i as f64) * r;
            unnorm.push(cur);
            // Rescale to avoid overflow with large N / r.
            if cur > 1e280 {
                for v in &mut unnorm {
                    *v /= cur;
                }
                cur = 1.0;
            }
        }
        let total: f64 = unnorm.iter().sum();
        unnorm.into_iter().map(|v| v / total).collect()
    }

    /// Solves the model exactly.
    pub fn solve(&self) -> RepairmanMetrics {
        let pi = self.state_distribution();
        let l: f64 = pi.iter().enumerate().map(|(n, p)| n as f64 * p).sum();
        let utilization = 1.0 - pi[0];
        let throughput = self.service_rate * utilization;
        let mean_response_time = if throughput > 0.0 { l / throughput } else { 0.0 };
        RepairmanMetrics {
            mean_number_at_server: l,
            utilization,
            throughput,
            effective_rate_per_machine: throughput / self.population as f64,
            mean_response_time,
        }
    }
}

/// A service station in a closed product-form network solved by MVA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MvaStation {
    /// A single-server FCFS queueing station with the given mean service
    /// demand per visit (`visit ratio × mean service time`).
    Queueing {
        /// Mean total service demand a customer places on this station
        /// per cycle.
        demand: f64,
    },
    /// An infinite-server (delay/think) station with the given mean
    /// demand; customers never queue here.
    Delay {
        /// Mean total delay per cycle.
        demand: f64,
    },
}

/// Result of an exact MVA evaluation of a closed network.
#[derive(Debug, Clone, PartialEq)]
pub struct MvaSolution {
    /// Network population the solution was computed for.
    pub population: u32,
    /// System throughput (cycles per unit time).
    pub throughput: f64,
    /// Per-station mean residence time per cycle (same order as input).
    pub residence_times: Vec<f64>,
    /// Per-station mean queue lengths (customers present).
    pub queue_lengths: Vec<f64>,
    /// Mean cycle (response) time: Σ residence times.
    pub cycle_time: f64,
}

/// Exact Mean Value Analysis for a single-class closed product-form
/// network.
///
/// Classic recursion (Reiser & Lavenberg): for n = 1..N
/// `Rᵢ(n) = Dᵢ·(1 + Qᵢ(n−1))` for queueing stations,
/// `Rᵢ(n) = Dᵢ` for delay stations, `X(n) = n / Σ Rᵢ(n)`,
/// `Qᵢ(n) = X(n)·Rᵢ(n)`.
///
/// # Errors
///
/// Rejects empty station lists, non-positive/non-finite demands and zero
/// population.
pub fn mva(stations: &[MvaStation], population: u32) -> Result<MvaSolution, QueueingError> {
    if stations.is_empty() {
        return Err(QueueingError::InvalidParameter {
            name: "stations",
            reason: "closed network must have at least one station",
        });
    }
    if population == 0 {
        return Err(QueueingError::InvalidParameter {
            name: "population",
            reason: "must be at least 1",
        });
    }
    for s in stations {
        let d = match *s {
            MvaStation::Queueing { demand } | MvaStation::Delay { demand } => demand,
        };
        if !d.is_finite() || d < 0.0 {
            return Err(QueueingError::InvalidRate { name: "demand", value: d });
        }
    }

    let k = stations.len();
    let mut q = vec![0.0f64; k];
    let mut r = vec![0.0f64; k];
    let mut x = 0.0f64;
    for n in 1..=population {
        let mut total_r = 0.0;
        for (i, s) in stations.iter().enumerate() {
            r[i] = match *s {
                MvaStation::Queueing { demand } => demand * (1.0 + q[i]),
                MvaStation::Delay { demand } => demand,
            };
            total_r += r[i];
        }
        if total_r <= 0.0 {
            return Err(QueueingError::InvalidParameter {
                name: "demand",
                reason: "total demand must be positive",
            });
        }
        x = n as f64 / total_r;
        for i in 0..k {
            q[i] = x * r[i];
        }
    }
    let cycle_time = r.iter().sum();
    Ok(MvaSolution { population, throughput: x, residence_times: r, queue_lengths: q, cycle_time })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repairman_single_machine() {
        // N=1: machine alternates Exp(lambda) think, Exp(mu) repair.
        // Utilization of server = lambda/(lambda+mu) by renewal reward.
        let m = MachineRepairman::new(1, 2.0, 3.0).unwrap().solve();
        assert!((m.utilization - 2.0 / 5.0).abs() < 1e-12);
        // Response time = 1/mu (never queues).
        assert!((m.mean_response_time - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn repairman_distribution_sums_to_one() {
        let m = MachineRepairman::new(50, 0.5, 4.0).unwrap();
        let pi = m.state_distribution();
        assert_eq!(pi.len(), 51);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pi.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn repairman_saturation_limit() {
        // Very fast failures: server always busy, throughput -> mu.
        let m = MachineRepairman::new(20, 100.0, 1.0).unwrap().solve();
        assert!(m.utilization > 0.999);
        assert!((m.throughput - 1.0).abs() < 1e-3);
        // Nearly all machines queued.
        assert!(m.mean_number_at_server > 18.0);
    }

    #[test]
    fn repairman_light_load_limit() {
        // Very slow failures: station nearly empty, response ~ 1/mu.
        let m = MachineRepairman::new(10, 1e-4, 1.0).unwrap().solve();
        assert!(m.mean_number_at_server < 0.01);
        assert!((m.mean_response_time - 1.0).abs() < 0.01);
        assert!((m.effective_rate_per_machine - 1e-4).abs() < 1e-6);
    }

    #[test]
    fn repairman_handles_large_population_without_overflow() {
        let m = MachineRepairman::new(2000, 10.0, 1.0).unwrap().solve();
        assert!(m.utilization > 0.999);
        assert!(m.mean_number_at_server.is_finite());
    }

    #[test]
    fn repairman_rejects_bad_input() {
        assert!(MachineRepairman::new(0, 1.0, 1.0).is_err());
        assert!(MachineRepairman::new(1, 0.0, 1.0).is_err());
        assert!(MachineRepairman::new(1, 1.0, -1.0).is_err());
    }

    #[test]
    fn mva_single_station_single_customer() {
        // One customer, one queueing station with demand D: X = 1/D.
        let sol = mva(&[MvaStation::Queueing { demand: 2.0 }], 1).unwrap();
        assert!((sol.throughput - 0.5).abs() < 1e-12);
        assert!((sol.cycle_time - 2.0).abs() < 1e-12);
        assert!((sol.queue_lengths[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mva_matches_machine_repairman() {
        // Repairman == closed network {delay Z=1/lambda, queueing D=1/mu}.
        let (n, lambda, mu) = (12u32, 0.8, 2.0);
        let exact = MachineRepairman::new(n, lambda, mu).unwrap().solve();
        let sol = mva(
            &[
                MvaStation::Delay { demand: 1.0 / lambda },
                MvaStation::Queueing { demand: 1.0 / mu },
            ],
            n,
        )
        .unwrap();
        assert!((sol.throughput - exact.throughput).abs() < 1e-9);
        assert!((sol.queue_lengths[1] - exact.mean_number_at_server).abs() < 1e-9);
        assert!((sol.residence_times[1] - exact.mean_response_time).abs() < 1e-9);
    }

    #[test]
    fn mva_population_conservation() {
        let stations = [
            MvaStation::Delay { demand: 5.0 },
            MvaStation::Queueing { demand: 1.0 },
            MvaStation::Queueing { demand: 0.5 },
        ];
        for n in [1u32, 2, 7, 31] {
            let sol = mva(&stations, n).unwrap();
            let total: f64 = sol.queue_lengths.iter().sum();
            assert!((total - n as f64).abs() < 1e-9, "population {n} not conserved");
        }
    }

    #[test]
    fn mva_bottleneck_law() {
        // Throughput is bounded by 1/D_max; approaches it as N grows.
        let stations = [
            MvaStation::Queueing { demand: 1.0 }, // bottleneck
            MvaStation::Queueing { demand: 0.25 },
            MvaStation::Delay { demand: 2.0 },
        ];
        let sol = mva(&stations, 200).unwrap();
        assert!(sol.throughput <= 1.0 + 1e-12);
        assert!(sol.throughput > 0.99);
    }

    #[test]
    fn mva_throughput_monotone_in_population() {
        let stations = [MvaStation::Queueing { demand: 1.0 }, MvaStation::Delay { demand: 3.0 }];
        let mut prev = 0.0;
        for n in 1..=50 {
            let x = mva(&stations, n).unwrap().throughput;
            assert!(x >= prev - 1e-12);
            prev = x;
        }
    }

    #[test]
    fn mva_rejects_bad_input() {
        assert!(mva(&[], 1).is_err());
        assert!(mva(&[MvaStation::Queueing { demand: 1.0 }], 0).is_err());
        assert!(mva(&[MvaStation::Queueing { demand: -1.0 }], 1).is_err());
        assert!(mva(&[MvaStation::Queueing { demand: f64::NAN }], 1).is_err());
        assert!(mva(&[MvaStation::Delay { demand: 0.0 }], 1).is_err(), "zero total demand");
    }
}
