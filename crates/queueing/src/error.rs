//! Error type shared by all queueing computations.

use std::fmt;

/// Errors reported by queueing-theory computations.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueingError {
    /// A rate (arrival or service) was negative, zero where positivity is
    /// required, NaN or infinite.
    InvalidRate {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The offered load meets or exceeds capacity, so no steady state
    /// exists (ρ ≥ 1 for an unbounded queue).
    Unstable {
        /// Offered load ρ = λ/(c·µ).
        rho: f64,
    },
    /// A structural parameter (server count, buffer size, population …)
    /// was out of range.
    InvalidParameter {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        reason: &'static str,
    },
    /// A routing matrix row summed to more than one, contained negative
    /// entries, or the traffic equations were singular.
    InvalidRouting {
        /// Index of the offending station (or row).
        station: usize,
        /// Description of the violation.
        reason: &'static str,
    },
    /// An iterative solver failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual magnitude at the last iterate.
        residual: f64,
    },
    /// The linear system arising from the traffic equations is singular.
    SingularSystem,
}

impl fmt::Display for QueueingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueingError::InvalidRate { name, value } => {
                write!(f, "invalid rate {name} = {value}")
            }
            QueueingError::Unstable { rho } => {
                write!(f, "queue is unstable: offered load rho = {rho} >= 1")
            }
            QueueingError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            QueueingError::InvalidRouting { station, reason } => {
                write!(f, "invalid routing at station {station}: {reason}")
            }
            QueueingError::NoConvergence { iterations, residual } => {
                write!(
                    f,
                    "solver did not converge after {iterations} iterations \
                     (residual {residual:e})"
                )
            }
            QueueingError::SingularSystem => {
                write!(f, "traffic equations are singular")
            }
        }
    }
}

impl std::error::Error for QueueingError {}

/// Validates that `value` is a finite, non-negative rate.
pub(crate) fn check_nonneg_rate(name: &'static str, value: f64) -> Result<(), QueueingError> {
    if !value.is_finite() || value < 0.0 {
        return Err(QueueingError::InvalidRate { name, value });
    }
    Ok(())
}

/// Validates that `value` is a finite, strictly positive rate.
pub(crate) fn check_pos_rate(name: &'static str, value: f64) -> Result<(), QueueingError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(QueueingError::InvalidRate { name, value });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let cases: Vec<QueueingError> = vec![
            QueueingError::InvalidRate { name: "lambda", value: -1.0 },
            QueueingError::Unstable { rho: 1.5 },
            QueueingError::InvalidParameter { name: "servers", reason: "must be >= 1" },
            QueueingError::InvalidRouting { station: 3, reason: "row sums to 1.2" },
            QueueingError::NoConvergence { iterations: 100, residual: 1e-3 },
            QueueingError::SingularSystem,
        ];
        for c in cases {
            let s = format!("{c}");
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn rate_checks_accept_valid_values() {
        assert!(check_nonneg_rate("x", 0.0).is_ok());
        assert!(check_nonneg_rate("x", 1.5).is_ok());
        assert!(check_pos_rate("x", 1e-12).is_ok());
    }

    #[test]
    fn rate_checks_reject_invalid_values() {
        assert!(check_nonneg_rate("x", -0.1).is_err());
        assert!(check_nonneg_rate("x", f64::NAN).is_err());
        assert!(check_nonneg_rate("x", f64::INFINITY).is_err());
        assert!(check_pos_rate("x", 0.0).is_err());
        assert!(check_pos_rate("x", -1.0).is_err());
        assert!(check_pos_rate("x", f64::NAN).is_err());
    }

    #[test]
    fn error_implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(QueueingError::SingularSystem);
        assert_eq!(e.to_string(), "traffic equations are singular");
    }
}
