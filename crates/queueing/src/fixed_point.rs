//! Scalar fixed-point and root-finding helpers.
//!
//! The paper solves eq. 7 — `λ_eff = λ·(N − L(λ_eff))/N` — "iteratively
//! ... until no considerable change is observed". Naive Picard iteration
//! of that map diverges (oscillates) whenever any service centre is close
//! to saturation, because `L` is extremely steep there. This module
//! provides the damped iteration the paper implicitly relies on, plus a
//! guaranteed-convergence bisection fallback used by `hmcs-core`'s
//! solver: for monotone decreasing `g`, the root of `x − g(x)` is unique
//! and bracketed.

use crate::error::QueueingError;

/// Outcome of a fixed-point / root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Solution {
    /// The located fixed point / root.
    pub value: f64,
    /// Number of iterations consumed.
    pub iterations: usize,
    /// Residual `|x − g(x)|` (fixed point) or `|f(x)|` (root) at the
    /// returned value.
    pub residual: f64,
}

/// Options controlling the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Absolute tolerance on the residual.
    pub tolerance: f64,
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Damping factor `d ∈ (0, 1]` for Picard iteration:
    /// `x ← (1−d)·x + d·g(x)`.
    pub damping: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions { tolerance: 1e-10, max_iterations: 10_000, damping: 0.5 }
    }
}

/// Damped Picard iteration for a fixed point of `g`.
///
/// Converges for contractive maps; the damping extends convergence to
/// many monotone non-expansive maps. Returns
/// [`QueueingError::NoConvergence`] when the iteration budget runs out.
pub fn damped_fixed_point(
    g: impl Fn(f64) -> f64,
    x0: f64,
    opts: SolverOptions,
) -> Result<Solution, QueueingError> {
    assert!(opts.damping > 0.0 && opts.damping <= 1.0, "damping must be in (0,1]");
    let mut x = x0;
    for it in 0..opts.max_iterations {
        let gx = g(x);
        let residual = (gx - x).abs();
        if residual <= opts.tolerance {
            return Ok(Solution { value: x, iterations: it, residual });
        }
        x = (1.0 - opts.damping) * x + opts.damping * gx;
        if !x.is_finite() {
            return Err(QueueingError::NoConvergence { iterations: it, residual: f64::INFINITY });
        }
    }
    let residual = (g(x) - x).abs();
    Err(QueueingError::NoConvergence { iterations: opts.max_iterations, residual })
}

/// Bisection for a root of `f` on `[lo, hi]`.
///
/// Requires `f(lo)` and `f(hi)` to have opposite signs (or one of them to
/// be an exact root). Always converges; returns the midpoint once the
/// bracket is narrower than `tolerance` (absolute, on x) or `|f| ≤
/// tolerance.
pub fn bisect(
    f: impl Fn(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
    opts: SolverOptions,
) -> Result<Solution, QueueingError> {
    assert!(lo <= hi, "invalid bracket [{lo}, {hi}]");
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo.abs() <= opts.tolerance {
        return Ok(Solution { value: lo, iterations: 0, residual: flo.abs() });
    }
    if fhi.abs() <= opts.tolerance {
        return Ok(Solution { value: hi, iterations: 0, residual: fhi.abs() });
    }
    if flo.signum() == fhi.signum() {
        return Err(QueueingError::InvalidParameter {
            name: "bracket",
            reason: "f(lo) and f(hi) must have opposite signs",
        });
    }
    for it in 0..opts.max_iterations {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid.abs() <= opts.tolerance || (hi - lo) <= opts.tolerance {
            return Ok(Solution { value: mid, iterations: it, residual: fmid.abs() });
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    let mid = 0.5 * (lo + hi);
    Err(QueueingError::NoConvergence { iterations: opts.max_iterations, residual: f(mid).abs() })
}

/// Relative bracket width at which [`bisect_seeded`] stops. Two
/// independent solves each land this close to the unique root of a
/// monotone `f`, so they agree pairwise to twice this value —
/// comfortably inside the 1e-12 relative reproducibility budget the
/// sweeps promise.
pub const SEEDED_REL_TOL: f64 = 1e-13;

/// Bisection for a root of `f` on `[lo, hi]`, optionally warm-started
/// from a caller-supplied guess near the root.
///
/// Designed for the effective-rate sweeps: consecutive sweep points have
/// nearby roots, so seeding each solve with the neighbouring point's
/// converged value lets the search start from a much tighter bracket.
/// The seed is used only to shrink the bracket — `f(seed)`'s sign says
/// which side of the seed the root is on, and a short geometric probe
/// ladder then tightens the far end — so correctness never depends on
/// the seed's quality; a wild seed degrades gracefully to plain
/// bisection.
///
/// Unlike [`bisect`], convergence uses a fixed **relative** bracket
/// width ([`SEEDED_REL_TOL`], with midpoint/endpoint collision as the
/// hard floor), independent of the starting bracket. Two calls that
/// start from different brackets — e.g. a cold start and a warm start —
/// therefore each land within `SEEDED_REL_TOL` of the unique root of a
/// monotone `f`, so they agree pairwise to `2·SEEDED_REL_TOL ≤ 1e-12`
/// relative, which is what lets warm-started sweeps reproduce
/// cold-started results. `opts.tolerance` is not consulted;
/// `opts.max_iterations` caps the number of `f` evaluations (the
/// returned `iterations` counts them all, probes included).
pub fn bisect_seeded(
    f: impl Fn(f64) -> f64,
    lo: f64,
    hi: f64,
    seed: Option<f64>,
    opts: SolverOptions,
) -> Result<Solution, QueueingError> {
    assert!(lo <= hi, "invalid bracket [{lo}, {hi}]");
    let mut lo = lo;
    let mut hi = hi;
    let mut evals: usize = 0;
    let mut flo = f(lo);
    let fhi = f(hi);
    evals += 2;
    if flo == 0.0 {
        return Ok(Solution { value: lo, iterations: evals, residual: 0.0 });
    }
    if fhi == 0.0 {
        return Ok(Solution { value: hi, iterations: evals, residual: 0.0 });
    }
    if flo.signum() == fhi.signum() {
        return Err(QueueingError::InvalidParameter {
            name: "bracket",
            reason: "f(lo) and f(hi) must have opposite signs",
        });
    }

    if let Some(s) = seed {
        if s > lo && s < hi && s.is_finite() {
            let fs = f(s);
            evals += 1;
            if fs == 0.0 {
                return Ok(Solution { value: s, iterations: evals, residual: 0.0 });
            }
            // One bracket end moves to the seed for free...
            let root_above_seed = fs.signum() == flo.signum();
            if root_above_seed {
                lo = s;
                flo = fs;
            } else {
                hi = s;
            }
            // ...then probe geometrically outward from the seed to pull
            // the far end in. Each failed probe still tightens the
            // bracket, so the ladder never wastes its evaluations.
            for frac in [1e-12, 1e-9, 1e-6, 1e-3] {
                let t = if root_above_seed { s + (hi - s) * frac } else { s - (s - lo) * frac };
                if t <= lo || t >= hi {
                    continue;
                }
                let ft = f(t);
                evals += 1;
                if ft == 0.0 {
                    return Ok(Solution { value: t, iterations: evals, residual: 0.0 });
                }
                if ft.signum() == flo.signum() {
                    lo = t;
                    flo = ft;
                    if !root_above_seed {
                        break; // bracketed: root in [t, previous hi=s side]
                    }
                } else {
                    hi = t;
                    if root_above_seed {
                        break; // bracketed: root in [seed side, t]
                    }
                }
            }
        }
    }

    while evals < opts.max_iterations {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi || (hi - lo) <= SEEDED_REL_TOL * mid.abs() {
            // Relative convergence (or the bracket collapsed to
            // adjacent floats). The residual probe counts too:
            // `iterations` reports every evaluation of `f`.
            return Ok(Solution { value: mid, iterations: evals + 1, residual: f(mid).abs() });
        }
        let fmid = f(mid);
        evals += 1;
        if fmid == 0.0 {
            return Ok(Solution { value: mid, iterations: evals, residual: 0.0 });
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    let mid = 0.5 * (lo + hi);
    Err(QueueingError::NoConvergence { iterations: evals, residual: f(mid).abs() })
}

/// Hybrid solver for the common shape in the effective-rate problem:
/// finds the fixed point of a **monotone non-increasing** map `g` on
/// `[lo, hi]`, i.e. the root of `h(x) = g(x) − x`, which is unique for
/// such `g`. Tries fast damped iteration first, then falls back to
/// bisection (guaranteed for this class).
pub fn monotone_fixed_point(
    g: impl Fn(f64) -> f64 + Copy,
    lo: f64,
    hi: f64,
    opts: SolverOptions,
) -> Result<Solution, QueueingError> {
    if let Ok(sol) = damped_fixed_point(g, 0.5 * (lo + hi), opts) {
        if sol.value >= lo - opts.tolerance && sol.value <= hi + opts.tolerance {
            return Ok(sol);
        }
    }
    bisect(move |x| g(x) - x, lo, hi, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn damped_iteration_finds_cosine_fixed_point() {
        // x = cos x has the Dottie number ~0.739085.
        let sol = damped_fixed_point(|x| x.cos(), 0.0, SolverOptions::default()).unwrap();
        assert!((sol.value - 0.739_085_133_2).abs() < 1e-8);
    }

    #[test]
    fn undamped_oscillating_map_fails_but_damped_succeeds() {
        // g(x) = 2.5 - x oscillates forever undamped (period 2 orbit),
        // fixed point x = 1.25.
        let undamped = SolverOptions { damping: 1.0, max_iterations: 100, ..Default::default() };
        assert!(damped_fixed_point(|x| 2.5 - x, 0.0, undamped).is_err());
        let damped = SolverOptions { damping: 0.5, ..Default::default() };
        let sol = damped_fixed_point(|x| 2.5 - x, 0.0, damped).unwrap();
        assert!((sol.value - 1.25).abs() < 1e-8);
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let sol = bisect(|x| x * x - 2.0, 0.0, 2.0, SolverOptions::default()).unwrap();
        assert!((sol.value - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn bisect_accepts_root_at_endpoint() {
        let sol = bisect(|x| x, 0.0, 1.0, SolverOptions::default()).unwrap();
        assert_eq!(sol.value, 0.0);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn bisect_rejects_same_sign_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, SolverOptions::default()),
            Err(QueueingError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn monotone_solver_handles_steep_effective_rate_shape() {
        // Mimics eq. 7 near saturation: g(x) = lambda * (N - L(x))/N with
        // L(x) = rho/(1-rho), rho = x/mu. Extremely steep near x = mu.
        let (lambda, mu, n) = (250.0, 21.7, 256.0);
        let g = move |x: f64| {
            let rho = (x / mu).min(0.999_999_999);
            let l = (rho / (1.0 - rho)).min(n);
            lambda * (n - l) / n
        };
        let sol = monotone_fixed_point(g, 0.0, lambda, SolverOptions::default()).unwrap();
        // Verify it is a genuine fixed point.
        assert!((g(sol.value) - sol.value).abs() < 1e-6);
        // And strictly inside the stable region.
        assert!(sol.value < mu);
    }

    #[test]
    fn monotone_solver_trivial_when_load_is_light() {
        // L ~ 0 => fixed point ~ lambda.
        let g = |x: f64| 10.0 * (1.0 - 0.001 * x / 10.0);
        let sol = monotone_fixed_point(g, 0.0, 10.0, SolverOptions::default()).unwrap();
        assert!((sol.value - g(sol.value)).abs() < 1e-8);
        assert!(sol.value > 9.9);
    }

    #[test]
    fn seeded_bisect_matches_cold_start_within_budget() {
        // Steep effective-rate shape: the warm and cold starts must land
        // on the same root to within 2x the relative stopping width.
        let (lambda, mu, n) = (250.0, 21.7, 256.0);
        let h = move |x: f64| {
            let rho = (x / mu).min(0.999_999_999);
            let l = (rho / (1.0 - rho)).min(n);
            lambda * (n - l) / n - x
        };
        let opts = SolverOptions::default();
        let cold = bisect_seeded(h, 0.0, lambda, None, opts).unwrap();
        for seed in [cold.value * 0.999, cold.value * 1.001, cold.value, 1.0, 240.0] {
            let warm = bisect_seeded(h, 0.0, lambda, Some(seed), opts).unwrap();
            let rel = (warm.value - cold.value).abs() / cold.value;
            assert!(
                rel <= 2.0 * SEEDED_REL_TOL,
                "seed {seed}: warm {} vs cold {}",
                warm.value,
                cold.value
            );
        }
    }

    #[test]
    fn seeded_bisect_near_root_saves_iterations() {
        let f = |x: f64| 2.0 - x * x; // root sqrt(2)
        let opts = SolverOptions::default();
        let cold = bisect_seeded(f, 0.0, 2.0, None, opts).unwrap();
        let warm = bisect_seeded(f, 0.0, 2.0, Some(std::f64::consts::SQRT_2 * (1.0 + 1e-9)), opts)
            .unwrap();
        assert!((warm.value - cold.value).abs() <= 2.0 * SEEDED_REL_TOL * cold.value);
        // The probe ladder narrows the bracket to within ~1000x the
        // seed's error (the rung spacing), so a near-root seed saves a
        // double-digit number of evaluations over the full [0, 2]
        // bracket. Both counts are deterministic.
        assert!(
            warm.iterations + 10 <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn seeded_bisect_survives_a_wild_seed() {
        let f = |x: f64| 2.0 - x * x;
        let opts = SolverOptions::default();
        // Seeds outside the bracket are ignored; bad in-bracket seeds
        // only cost a few probes.
        for seed in [Some(-5.0), Some(100.0), Some(1e-12), Some(1.999_999), None] {
            let sol = bisect_seeded(f, 0.0, 2.0, seed, opts).unwrap();
            assert!((sol.value - std::f64::consts::SQRT_2).abs() < 1e-12);
        }
    }

    #[test]
    fn seeded_bisect_rejects_same_sign_bracket() {
        assert!(matches!(
            bisect_seeded(|x| x * x + 1.0, -1.0, 1.0, Some(0.5), SolverOptions::default()),
            Err(QueueingError::InvalidParameter { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn damping_must_be_positive() {
        let opts = SolverOptions { damping: 0.0, ..Default::default() };
        let _ = damped_fixed_point(|x| x, 0.0, opts);
    }

    #[test]
    fn diverging_map_reports_no_convergence() {
        let opts = SolverOptions { max_iterations: 50, ..Default::default() };
        let err = damped_fixed_point(|x| 2.0 * x + 1.0, 1.0, opts).unwrap_err();
        assert!(matches!(err, QueueingError::NoConvergence { .. }));
    }
}
