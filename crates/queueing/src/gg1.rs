//! GI/G/1 two-moment approximations: Kingman's bound, Allen–Cunneen,
//! and the Krämer–Langenbach-Belz (KLB) refinement.
//!
//! The paper approximates every internal arrival process as Poisson
//! ("this approximation has often been invoked to determine the arrival
//! process in store-and-forward networks", assumption 2). The
//! reproduction's validation shows where that costs accuracy (EXPERIMENTS.md,
//! Figure 7 at C = 4): departure processes of near-saturated neighbours
//! are not Poisson. These classical approximations parameterise the
//! arrival process by its squared coefficient of variation `ca²` and let
//! a QNA-style analysis quantify the gap.

use crate::error::{check_nonneg_rate, QueueingError};
use crate::mg1::ServiceDistribution;

/// A GI/G/1 queue summarised by arrival rate + arrival SCV and a
/// two-moment service description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GG1 {
    lambda: f64,
    arrival_scv: f64,
    service: ServiceDistribution,
}

/// Which waiting-time approximation to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Approximation {
    /// Kingman's upper bound (heavy-traffic):
    /// `Wq ≤ ρ/(1−ρ)·(ca²+cs²)/2·E[S]`.
    Kingman,
    /// Allen–Cunneen: the same expression used as an estimate (exact
    /// for M/G/1 when `ca² = 1`).
    #[default]
    AllenCunneen,
    /// Krämer–Langenbach-Belz: Allen–Cunneen times a correction factor
    /// `g(ρ, ca², cs²)` that markedly improves light-traffic accuracy
    /// for `ca² < 1`.
    KLB,
}

impl GG1 {
    /// Creates a stable GI/G/1 queue (`ρ = λ·E[S] < 1`).
    pub fn new(
        lambda: f64,
        arrival_scv: f64,
        service: ServiceDistribution,
    ) -> Result<Self, QueueingError> {
        check_nonneg_rate("lambda", lambda)?;
        if !arrival_scv.is_finite() || arrival_scv < 0.0 {
            return Err(QueueingError::InvalidParameter {
                name: "arrival_scv",
                reason: "must be finite and non-negative",
            });
        }
        service.validate()?;
        let rho = lambda * service.mean();
        if rho >= 1.0 {
            return Err(QueueingError::Unstable { rho });
        }
        Ok(GG1 { lambda, arrival_scv, service })
    }

    /// Arrival rate λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Arrival-process squared coefficient of variation `ca²`.
    #[inline]
    pub fn arrival_scv(&self) -> f64 {
        self.arrival_scv
    }

    /// Utilization ρ = λ·E[S].
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.lambda * self.service.mean()
    }

    /// Approximate mean waiting time in queue under the chosen
    /// approximation.
    pub fn mean_waiting_time(&self, approx: Approximation) -> f64 {
        let rho = self.utilization();
        if self.lambda == 0.0 {
            return 0.0;
        }
        let ca2 = self.arrival_scv;
        let cs2 = self.service.scv();
        let base = rho / (1.0 - rho) * (ca2 + cs2) / 2.0 * self.service.mean();
        match approx {
            Approximation::Kingman | Approximation::AllenCunneen => base,
            Approximation::KLB => {
                let g = if ca2 <= 1.0 {
                    // exp(-2(1-rho)(1-ca2)^2 / (3 rho (ca2+cs2)))
                    let denom = 3.0 * rho * (ca2 + cs2);
                    if denom <= 0.0 {
                        1.0
                    } else {
                        (-2.0 * (1.0 - rho) * (1.0 - ca2).powi(2) / denom).exp()
                    }
                } else {
                    // exp(-(1-rho)(ca2-1)/(ca2+4cs2))
                    (-(1.0 - rho) * (ca2 - 1.0) / (ca2 + 4.0 * cs2)).exp()
                };
                base * g
            }
        }
    }

    /// Approximate mean sojourn time `W = Wq + E[S]`.
    pub fn mean_sojourn_time(&self, approx: Approximation) -> f64 {
        self.mean_waiting_time(approx) + self.service.mean()
    }

    /// Approximate mean number in system via Little's law.
    pub fn mean_number_in_system(&self, approx: Approximation) -> f64 {
        self.lambda * self.mean_sojourn_time(approx)
    }

    /// SCV of the **departure process** under Marshall's approximation,
    /// `cd² ≈ ρ²·cs² + (1−ρ²)·ca²` — the linkage equation of QNA-style
    /// network decomposition (departures of one centre feed the next).
    pub fn departure_scv(&self) -> f64 {
        let rho2 = self.utilization().powi(2);
        rho2 * self.service.scv() + (1.0 - rho2) * self.arrival_scv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::MM1;

    fn exp_service(mean: f64) -> ServiceDistribution {
        ServiceDistribution::Exponential(mean)
    }

    #[test]
    fn allen_cunneen_is_exact_for_mm1() {
        let g = GG1::new(0.6, 1.0, exp_service(1.0)).unwrap();
        let exact = MM1::new(0.6, 1.0).unwrap();
        assert!(
            (g.mean_waiting_time(Approximation::AllenCunneen) - exact.mean_waiting_time()).abs()
                < 1e-12
        );
        assert!(
            (g.mean_sojourn_time(Approximation::AllenCunneen) - exact.mean_sojourn_time()).abs()
                < 1e-12
        );
    }

    #[test]
    fn allen_cunneen_matches_pollaczek_khinchine_for_poisson_arrivals() {
        use crate::mg1::MG1;
        let svc = ServiceDistribution::Erlang { mean: 2.0, phases: 3 };
        let g = GG1::new(0.3, 1.0, svc).unwrap();
        let pk = MG1::new(0.3, svc).unwrap();
        assert!(
            (g.mean_waiting_time(Approximation::AllenCunneen) - pk.mean_waiting_time()).abs()
                < 1e-12
        );
    }

    #[test]
    fn klb_corrects_downward_for_smooth_arrivals() {
        // D/M/1-ish: ca2 = 0 arrivals are smoother than Poisson; true
        // waiting is below Allen-Cunneen, and KLB reflects that.
        let g = GG1::new(0.5, 0.0, exp_service(1.0)).unwrap();
        let ac = g.mean_waiting_time(Approximation::AllenCunneen);
        let klb = g.mean_waiting_time(Approximation::KLB);
        assert!(klb < ac);
        assert!(klb > 0.0);
    }

    #[test]
    fn klb_equals_ac_for_poisson() {
        let g = GG1::new(0.7, 1.0, exp_service(1.0)).unwrap();
        let ac = g.mean_waiting_time(Approximation::AllenCunneen);
        let klb = g.mean_waiting_time(Approximation::KLB);
        assert!((ac - klb).abs() < 1e-12, "g(rho,1,cs2) must be 1");
    }

    #[test]
    fn klb_shrinks_bursty_arrivals_less_at_high_load() {
        // For ca2 > 1 the correction approaches 1 as rho -> 1.
        let light = GG1::new(0.2, 4.0, exp_service(1.0)).unwrap();
        let heavy = GG1::new(0.95, 4.0, exp_service(1.0)).unwrap();
        let ratio = |q: &GG1| {
            q.mean_waiting_time(Approximation::KLB)
                / q.mean_waiting_time(Approximation::AllenCunneen)
        };
        assert!(ratio(&light) < ratio(&heavy));
        assert!(ratio(&heavy) > 0.9);
    }

    #[test]
    fn dd1_has_no_waiting() {
        // Deterministic arrivals + deterministic service, rho < 1:
        // Wq = 0 under every approximation.
        let g = GG1::new(0.5, 0.0, ServiceDistribution::Deterministic(1.0)).unwrap();
        for approx in [Approximation::Kingman, Approximation::AllenCunneen, Approximation::KLB] {
            assert_eq!(g.mean_waiting_time(approx), 0.0, "{approx:?}");
        }
    }

    #[test]
    fn waiting_grows_with_arrival_variability() {
        let wq = |ca2: f64| {
            GG1::new(0.6, ca2, exp_service(1.0))
                .unwrap()
                .mean_waiting_time(Approximation::AllenCunneen)
        };
        assert!(wq(0.0) < wq(1.0));
        assert!(wq(1.0) < wq(4.0));
    }

    #[test]
    fn departure_scv_interpolates() {
        // rho -> 0: departures look like arrivals; rho -> 1: like
        // services.
        let smooth_service = ServiceDistribution::Deterministic(1.0);
        let light = GG1::new(0.01, 3.0, smooth_service).unwrap();
        assert!((light.departure_scv() - 3.0).abs() < 0.01);
        let heavy = GG1::new(0.99, 3.0, smooth_service).unwrap();
        assert!(heavy.departure_scv() < 0.1);
        // Poisson/exponential fixed point: cd2 = 1 for M/M/1.
        let mm1 = GG1::new(0.5, 1.0, exp_service(1.0)).unwrap();
        assert!((mm1.departure_scv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(GG1::new(-1.0, 1.0, exp_service(1.0)).is_err());
        assert!(GG1::new(0.5, -0.1, exp_service(1.0)).is_err());
        assert!(GG1::new(0.5, f64::NAN, exp_service(1.0)).is_err());
        assert!(GG1::new(1.1, 1.0, exp_service(1.0)).is_err());
    }

    #[test]
    fn idle_queue_has_zero_waiting() {
        let g = GG1::new(0.0, 1.0, exp_service(2.0)).unwrap();
        assert_eq!(g.mean_waiting_time(Approximation::AllenCunneen), 0.0);
        assert!((g.mean_sojourn_time(Approximation::KLB) - 2.0).abs() < 1e-12);
    }
}
