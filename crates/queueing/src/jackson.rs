//! Open Jackson queueing networks.
//!
//! The ICPPW'05 model (Figure 2 of the paper) is a small open Jackson
//! network: processors inject Poisson traffic that is routed through the
//! ICN1/ECN1/ICN2 service centres with fixed probabilities. This module
//! provides the general machinery — traffic equations, product-form
//! station metrics, and end-to-end latency along a visit path — of which
//! the paper's closed-form rate equations (eqs. 1–5) are a special case.
//! `hmcs-core` cross-checks its closed forms against this solver.

use crate::error::{check_nonneg_rate, check_pos_rate, QueueingError};
use crate::linalg::{self, Matrix};
use crate::mm1::MM1;
use crate::mmc::MMc;

/// A single service station of an open Jackson network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Station {
    /// Per-server exponential service rate µ.
    pub service_rate: f64,
    /// Number of identical parallel servers (≥ 1).
    pub servers: u32,
    /// External (Poisson) arrival rate γ entering the network at this
    /// station.
    pub external_arrival_rate: f64,
}

impl Station {
    /// Convenience constructor for a single-server station.
    pub fn single(service_rate: f64, external_arrival_rate: f64) -> Self {
        Station { service_rate, servers: 1, external_arrival_rate }
    }
}

/// Steady-state metrics of one station in a solved network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationMetrics {
    /// Total (effective) arrival rate λᵢ from the traffic equations.
    pub arrival_rate: f64,
    /// Per-server utilization ρᵢ.
    pub utilization: f64,
    /// Mean number of customers in the station (in queue + in service).
    pub mean_number_in_system: f64,
    /// Mean sojourn time per visit, `Wᵢ`.
    pub mean_sojourn_time: f64,
}

/// Solution of an open Jackson network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSolution {
    /// Per-station metrics, indexed like the input stations.
    pub stations: Vec<StationMetrics>,
    /// Total external arrival rate Λ = Σγᵢ.
    pub total_external_rate: f64,
}

impl NetworkSolution {
    /// Mean total number of customers in the network,
    /// `L = Σᵢ Lᵢ`.
    pub fn mean_number_in_network(&self) -> f64 {
        self.stations.iter().map(|s| s.mean_number_in_system).sum()
    }

    /// Mean time a customer spends in the network end-to-end, by
    /// Little's law: `W = L / Λ`. Returns 0 for an empty network.
    pub fn mean_time_in_network(&self) -> f64 {
        if self.total_external_rate == 0.0 {
            0.0
        } else {
            self.mean_number_in_network() / self.total_external_rate
        }
    }

    /// Expected latency along an explicit visit path, `Σ Wᵢ` over the
    /// listed station indices (stations may repeat — e.g. the paper's
    /// external path visits ECN1 twice).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn path_latency(&self, path: &[usize]) -> f64 {
        path.iter().map(|&i| self.stations[i].mean_sojourn_time).sum()
    }

    /// Expected latency averaged over a set of weighted paths
    /// (`(probability, path)` pairs). Weights need not sum to one; they
    /// are normalised. Returns 0 when all weights are zero.
    pub fn mixed_path_latency(&self, paths: &[(f64, &[usize])]) -> f64 {
        let total_w: f64 = paths.iter().map(|(w, _)| *w).sum();
        if total_w == 0.0 {
            return 0.0;
        }
        paths.iter().map(|(w, p)| w * self.path_latency(p)).sum::<f64>() / total_w
    }
}

/// An open Jackson network: `n` stations, external Poisson arrivals and a
/// substochastic routing matrix `R` where `R[i][j]` is the probability a
/// customer finishing at station `i` proceeds to station `j`
/// (`1 − Σⱼ R[i][j]` is the probability of leaving the network).
#[derive(Debug, Clone, PartialEq)]
pub struct JacksonNetwork {
    stations: Vec<Station>,
    routing: Vec<Vec<f64>>,
}

impl JacksonNetwork {
    /// Builds a network after validating rates and routing.
    ///
    /// # Errors
    ///
    /// * [`QueueingError::InvalidRate`] / `InvalidParameter` for bad
    ///   station parameters.
    /// * [`QueueingError::InvalidRouting`] if the matrix shape is wrong,
    ///   an entry is negative/non-finite, or a row sums to more than 1
    ///   (beyond rounding).
    pub fn new(stations: Vec<Station>, routing: Vec<Vec<f64>>) -> Result<Self, QueueingError> {
        let n = stations.len();
        if n == 0 {
            return Err(QueueingError::InvalidParameter {
                name: "stations",
                reason: "network must have at least one station",
            });
        }
        for (i, s) in stations.iter().enumerate() {
            check_pos_rate("service_rate", s.service_rate)?;
            check_nonneg_rate("external_arrival_rate", s.external_arrival_rate)?;
            if s.servers == 0 {
                return Err(QueueingError::InvalidRouting {
                    station: i,
                    reason: "server count must be >= 1",
                });
            }
        }
        if routing.len() != n {
            return Err(QueueingError::InvalidRouting {
                station: routing.len(),
                reason: "routing matrix must have one row per station",
            });
        }
        for (i, row) in routing.iter().enumerate() {
            if row.len() != n {
                return Err(QueueingError::InvalidRouting {
                    station: i,
                    reason: "routing row length must equal station count",
                });
            }
            let mut sum = 0.0;
            for &p in row {
                if !p.is_finite() || p < 0.0 {
                    return Err(QueueingError::InvalidRouting {
                        station: i,
                        reason: "routing probabilities must be finite and non-negative",
                    });
                }
                sum += p;
            }
            if sum > 1.0 + 1e-9 {
                return Err(QueueingError::InvalidRouting {
                    station: i,
                    reason: "routing row sums to more than 1",
                });
            }
        }
        Ok(JacksonNetwork { stations, routing })
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// True when the network has no stations (never constructible via
    /// [`JacksonNetwork::new`], provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// Solves the traffic equations `λ = γ + Rᵀ·λ` for the effective
    /// per-station arrival rates.
    pub fn traffic_rates(&self) -> Result<Vec<f64>, QueueingError> {
        let n = self.len();
        // (I - R^T) lambda = gamma
        let mut a = Matrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] -= self.routing[j][i];
            }
        }
        let gamma: Vec<f64> = self.stations.iter().map(|s| s.external_arrival_rate).collect();
        let lambda = linalg::solve(a, gamma)?;
        for (i, &l) in lambda.iter().enumerate() {
            if l < -1e-9 {
                return Err(QueueingError::InvalidRouting {
                    station: i,
                    reason: "traffic equations produced a negative rate",
                });
            }
        }
        Ok(lambda.into_iter().map(|l| l.max(0.0)).collect())
    }

    /// Solves the network: traffic equations plus per-station M/M/c
    /// product-form metrics.
    ///
    /// # Errors
    ///
    /// [`QueueingError::Unstable`] if any station has ρᵢ ≥ 1.
    pub fn solve(&self) -> Result<NetworkSolution, QueueingError> {
        let lambda = self.traffic_rates()?;
        let mut metrics = Vec::with_capacity(self.len());
        for (s, &l) in self.stations.iter().zip(&lambda) {
            let (util, l_sys, w) = if s.servers == 1 {
                let q = MM1::new(l, s.service_rate)?;
                (q.utilization(), q.mean_number_in_system(), q.mean_sojourn_time())
            } else {
                let q = MMc::new(l, s.service_rate, s.servers)?;
                (q.utilization(), q.mean_number_in_system(), q.mean_sojourn_time())
            };
            metrics.push(StationMetrics {
                arrival_rate: l,
                utilization: util,
                mean_number_in_system: l_sys,
                mean_sojourn_time: w,
            });
        }
        Ok(NetworkSolution {
            stations: metrics,
            total_external_rate: self.stations.iter().map(|s| s.external_arrival_rate).sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_station_reduces_to_mm1() {
        let net = JacksonNetwork::new(vec![Station::single(1.0, 0.5)], vec![vec![0.0]]).unwrap();
        let sol = net.solve().unwrap();
        let q = MM1::new(0.5, 1.0).unwrap();
        assert!((sol.stations[0].mean_sojourn_time - q.mean_sojourn_time()).abs() < 1e-12);
        assert!((sol.mean_time_in_network() - q.mean_sojourn_time()).abs() < 1e-12);
    }

    #[test]
    fn feedback_queue_amplifies_traffic() {
        // Single station, customers return with probability 1/2 =>
        // lambda_total = gamma / (1 - 0.5) = 2*gamma.
        let net = JacksonNetwork::new(vec![Station::single(10.0, 1.0)], vec![vec![0.5]]).unwrap();
        let rates = net.traffic_rates().unwrap();
        assert!((rates[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tandem_network_traffic_and_latency() {
        // Two stations in series: all traffic enters at 0, proceeds to 1,
        // then leaves. lambda_0 = lambda_1 = gamma.
        let net = JacksonNetwork::new(
            vec![Station::single(2.0, 1.0), Station::single(3.0, 0.0)],
            vec![vec![0.0, 1.0], vec![0.0, 0.0]],
        )
        .unwrap();
        let sol = net.solve().unwrap();
        assert!((sol.stations[0].arrival_rate - 1.0).abs() < 1e-12);
        assert!((sol.stations[1].arrival_rate - 1.0).abs() < 1e-12);
        // End-to-end: W = 1/(2-1) + 1/(3-1) = 1.5.
        assert!((sol.mean_time_in_network() - 1.5).abs() < 1e-12);
        assert!((sol.path_latency(&[0, 1]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn probabilistic_split_balances_load() {
        // Station 0 splits 30/70 to stations 1 and 2.
        let net = JacksonNetwork::new(
            vec![
                Station::single(10.0, 2.0),
                Station::single(10.0, 0.0),
                Station::single(10.0, 0.0),
            ],
            vec![vec![0.0, 0.3, 0.7], vec![0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0]],
        )
        .unwrap();
        let rates = net.traffic_rates().unwrap();
        assert!((rates[1] - 0.6).abs() < 1e-12);
        assert!((rates[2] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn paper_shaped_network_rates_match_closed_forms() {
        // A miniature of the paper's Figure 2 for one cluster plus the
        // global stage: processors feed ICN1 with prob 1-P and ECN1 with
        // prob P; ECN1 forwards to ICN2; ICN2 returns to ECN1; ECN1
        // terminates the feedback path. Model the *forward* and
        // *feedback* passes through ECN1 as two stations to expose the
        // visit structure: [ICN1, ECN1_fwd, ICN2, ECN1_fb].
        let n0 = 8.0;
        let lam = 0.01; // per processor
        let p = 0.4;
        let gamma_icn1 = n0 * (1.0 - p) * lam;
        let gamma_ecn1 = n0 * p * lam;
        let net = JacksonNetwork::new(
            vec![
                Station::single(1.0, gamma_icn1),
                Station::single(1.0, gamma_ecn1),
                Station::single(1.0, 0.0),
                Station::single(1.0, 0.0),
            ],
            vec![
                vec![0.0, 0.0, 0.0, 0.0], // ICN1 -> out
                vec![0.0, 0.0, 1.0, 0.0], // ECN1 fwd -> ICN2
                vec![0.0, 0.0, 0.0, 1.0], // ICN2 -> ECN1 fb
                vec![0.0, 0.0, 0.0, 0.0], // ECN1 fb -> out
            ],
        )
        .unwrap();
        let rates = net.traffic_rates().unwrap();
        // eq. 1: lambda_I1 = N0 (1-P) lambda
        assert!((rates[0] - n0 * (1.0 - p) * lam).abs() < 1e-12);
        // eq. 2/4: each ECN1 pass carries N0 P lambda; total 2 N0 P lambda (eq. 5)
        assert!((rates[1] + rates[3] - 2.0 * n0 * p * lam).abs() < 1e-12);
        // eq. 3 for C=1 cluster: lambda_I2 = N0 P lambda
        assert!((rates[2] - n0 * p * lam).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_routing() {
        let s = vec![Station::single(1.0, 0.1)];
        assert!(JacksonNetwork::new(s.clone(), vec![vec![1.2]]).is_err());
        assert!(JacksonNetwork::new(s.clone(), vec![vec![-0.1]]).is_err());
        assert!(JacksonNetwork::new(s.clone(), vec![vec![0.0, 0.0]]).is_err());
        assert!(JacksonNetwork::new(s.clone(), vec![]).is_err());
        assert!(JacksonNetwork::new(vec![], vec![]).is_err());
    }

    #[test]
    fn detects_station_overload() {
        // Feedback of 0.9 multiplies external rate by 10 => rho = 1.0.
        let net = JacksonNetwork::new(vec![Station::single(1.0, 0.1)], vec![vec![0.9]]).unwrap();
        assert!(matches!(net.solve(), Err(QueueingError::Unstable { .. })));
    }

    #[test]
    fn closed_loop_routing_is_singular() {
        // A pure loop (row sums exactly 1) has no exit; with external
        // input the traffic equations are singular/divergent.
        let net = JacksonNetwork::new(vec![Station::single(1.0, 0.1)], vec![vec![1.0]]).unwrap();
        assert!(net.traffic_rates().is_err());
    }

    #[test]
    fn multiserver_station_uses_erlang_c() {
        let net = JacksonNetwork::new(
            vec![Station { service_rate: 1.0, servers: 4, external_arrival_rate: 3.0 }],
            vec![vec![0.0]],
        )
        .unwrap();
        let sol = net.solve().unwrap();
        let q = MMc::new(3.0, 1.0, 4).unwrap();
        assert!((sol.stations[0].mean_sojourn_time - q.mean_sojourn_time()).abs() < 1e-12);
    }

    #[test]
    fn mixed_path_latency_weights_paths() {
        let net = JacksonNetwork::new(
            vec![Station::single(2.0, 0.5), Station::single(4.0, 0.5)],
            vec![vec![0.0; 2], vec![0.0; 2]],
        )
        .unwrap();
        let sol = net.solve().unwrap();
        let w0 = sol.stations[0].mean_sojourn_time;
        let w1 = sol.stations[1].mean_sojourn_time;
        let mixed = sol.mixed_path_latency(&[(0.25, &[0][..]), (0.75, &[1][..])]);
        assert!((mixed - (0.25 * w0 + 0.75 * w1)).abs() < 1e-12);
        assert_eq!(sol.mixed_path_latency(&[]), 0.0);
    }
}
