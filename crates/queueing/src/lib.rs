//! # hmcs-queueing
//!
//! Queueing-theory primitives used by the analytical model of
//! *Performance Analysis of Heterogeneous Multi-Cluster Systems*
//! (Javadi, Akbari & Abawajy, ICPPW 2005).
//!
//! The crate is a self-contained, dependency-free library of classical
//! queueing results:
//!
//! * [`mm1`] — the M/M/1 queue (the paper models every communication
//!   network as an M/M/1 service centre, eq. 16).
//! * [`mmc`] — M/M/c (Erlang C), M/M/1/K and M/M/∞ queues, used for
//!   sensitivity studies and for modelling multi-link networks.
//! * [`mg1`] — the M/G/1 queue via the Pollaczek–Khinchine formula,
//!   used to relax the paper's exponential-service assumption.
//! * [`gg1`] — GI/G/1 two-moment approximations (Kingman,
//!   Allen–Cunneen, Krämer–Langenbach-Belz) for relaxing the Poisson
//!   internal-arrival assumption (assumption 2).
//! * [`priority`] — multi-class M/G/1 priority queues (non-preemptive
//!   and preemptive-resume).
//! * [`jackson`] — open Jackson networks: traffic equations, product-form
//!   station metrics and end-to-end latency (the paper's model is a small
//!   Jackson network, Figure 2).
//! * [`closed`] — closed-network results (machine-repairman model and
//!   exact Mean Value Analysis) that justify and generalise the paper's
//!   effective-rate iteration (eq. 7).
//! * [`operational`] — distribution-free operational laws (utilization,
//!   forced flow, interactive response time) used to cross-check
//!   simulator instrumentation and to bound closed-system throughput.
//! * [`fixed_point`] — robust scalar fixed-point / root-finding helpers
//!   used to solve eq. 7.
//! * [`linalg`] — a small dense linear solver backing the traffic
//!   equations.
//!
//! ## Units
//!
//! The library is unit-agnostic: rates and times may be expressed in any
//! consistent pair of units (the rest of the workspace uses microseconds
//! and events-per-microsecond).
//!
//! ## Example
//!
//! ```
//! use hmcs_queueing::mm1::MM1;
//!
//! // A network switch serving 1 message per 100 µs, offered 5 msg/ms.
//! let q = MM1::new(0.005, 0.01).unwrap();
//! assert!((q.utilization() - 0.5).abs() < 1e-12);
//! assert!((q.mean_sojourn_time() - 200.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed;
pub mod error;
pub mod fixed_point;
pub mod gg1;
pub mod jackson;
pub mod linalg;
pub mod mg1;
pub mod mm1;
pub mod mmc;
pub mod operational;
pub mod priority;

pub use error::QueueingError;
pub use mm1::MM1;
