//! A small dense linear-algebra kernel: Gaussian elimination with
//! partial pivoting, sized for traffic-equation systems (tens to a few
//! hundred stations).
//!
//! Open Jackson networks require solving `λ = γ + Rᵀλ`, i.e.
//! `(I − Rᵀ)·λ = γ` ([`crate::jackson`]). Keeping the solver local avoids
//! pulling a full linear-algebra dependency into the workspace.

use crate::error::QueueingError;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix { rows: r, cols: c, data: rows.concat() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Solves the square system `A·x = b` by Gaussian elimination with
/// partial pivoting. `a` is consumed as scratch space.
///
/// # Errors
///
/// Returns [`QueueingError::SingularSystem`] when a pivot smaller than
/// `1e-12·max|A|` is encountered.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.rows()`.
pub fn solve(mut a: Matrix, mut b: Vec<f64>) -> Result<Vec<f64>, QueueingError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "matrix must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");

    let scale = a.data.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
    let tol = 1e-12 * scale;

    for col in 0..n {
        // Partial pivot: largest magnitude in this column at or below the
        // diagonal.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a[(r1, col)].abs().partial_cmp(&a[(r2, col)].abs()).expect("NaN in matrix")
            })
            .expect("non-empty range");
        if a[(pivot_row, col)].abs() <= tol {
            return Err(QueueingError::SingularSystem);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = a[(col, j)];
                a[(col, j)] = a[(pivot_row, j)];
                a[(pivot_row, j)] = tmp;
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[(col, col)];
        for row in col + 1..n {
            let factor = a[(row, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = a[(col, j)];
                a[(row, j)] -= factor * v;
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for j in row + 1..n {
            acc -= a[(row, j)] * x[j];
        }
        x[row] = acc / a[(row, row)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let x = solve(Matrix::identity(3), vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_small_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // First diagonal entry is zero; naive elimination would fail.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(solve(a, vec![1.0, 2.0]), Err(QueueingError::SingularSystem));
    }

    #[test]
    fn residual_is_small_for_random_like_system() {
        // Deterministic pseudo-random fill.
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        let mut seed = 42u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0; // diagonally dominant => well-conditioned
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = solve(a.clone(), b.clone()).unwrap();
        let ax = a.mul_vec(&x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
