//! The M/G/1 queue via the Pollaczek–Khinchine formula, together with a
//! small algebra of service-time distributions.
//!
//! The paper assumes exponentially distributed network service times
//! ("with assumption of exponential distribution for service time of the
//! communication networks", §5.2). Real message transmission times with a
//! fixed message length are closer to deterministic; this module lets the
//! analytical model swap the service distribution and quantifies how much
//! the exponential assumption inflates predicted latency (the
//! `ablation-service` experiment).

use crate::error::{check_nonneg_rate, check_pos_rate, QueueingError};

/// A service-time distribution summarised by its first two moments.
///
/// Only the mean and the squared coefficient of variation (SCV,
/// `Var/mean²`) matter for M/G/1 mean-value results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceDistribution {
    /// Deterministic service of the given duration (SCV = 0).
    Deterministic(f64),
    /// Exponential service with the given **mean** (SCV = 1).
    Exponential(f64),
    /// Erlang-k service: sum of `k` exponential phases with the given
    /// overall mean (SCV = 1/k).
    Erlang {
        /// Overall mean service time.
        mean: f64,
        /// Number of phases, `k ≥ 1`.
        phases: u32,
    },
    /// Two-phase hyper-exponential service specified by mean and an SCV
    /// larger than one.
    HyperExponential {
        /// Overall mean service time.
        mean: f64,
        /// Squared coefficient of variation, must be ≥ 1.
        scv: f64,
    },
    /// Arbitrary distribution given by mean and SCV directly.
    General {
        /// Mean service time.
        mean: f64,
        /// Squared coefficient of variation (`Var/mean²`), ≥ 0.
        scv: f64,
    },
}

impl ServiceDistribution {
    /// Mean service time.
    pub fn mean(&self) -> f64 {
        match *self {
            ServiceDistribution::Deterministic(m)
            | ServiceDistribution::Exponential(m)
            | ServiceDistribution::Erlang { mean: m, .. }
            | ServiceDistribution::HyperExponential { mean: m, .. }
            | ServiceDistribution::General { mean: m, .. } => m,
        }
    }

    /// Squared coefficient of variation `Var/mean²`.
    pub fn scv(&self) -> f64 {
        match *self {
            ServiceDistribution::Deterministic(_) => 0.0,
            ServiceDistribution::Exponential(_) => 1.0,
            ServiceDistribution::Erlang { phases, .. } => 1.0 / phases as f64,
            ServiceDistribution::HyperExponential { scv, .. }
            | ServiceDistribution::General { scv, .. } => scv,
        }
    }

    /// Second raw moment `E[S²] = mean²·(1 + SCV)`.
    pub fn second_moment(&self) -> f64 {
        let m = self.mean();
        m * m * (1.0 + self.scv())
    }

    /// Validates the distribution parameters.
    pub fn validate(&self) -> Result<(), QueueingError> {
        check_pos_rate("service mean", self.mean())?;
        match *self {
            ServiceDistribution::Erlang { phases: 0, .. } => Err(QueueingError::InvalidParameter {
                name: "phases",
                reason: "Erlang phase count must be >= 1",
            }),
            ServiceDistribution::HyperExponential { scv, .. } if scv < 1.0 => {
                Err(QueueingError::InvalidParameter {
                    name: "scv",
                    reason: "hyper-exponential SCV must be >= 1",
                })
            }
            ServiceDistribution::General { scv, .. } if !(scv.is_finite() && scv >= 0.0) => {
                Err(QueueingError::InvalidParameter {
                    name: "scv",
                    reason: "SCV must be finite and non-negative",
                })
            }
            _ => Ok(()),
        }
    }
}

/// A stationary M/G/1 queue: Poisson arrivals at rate λ, i.i.d. service
/// drawn from a general distribution, one FCFS server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MG1 {
    lambda: f64,
    service: ServiceDistribution,
}

impl MG1 {
    /// Creates a stable M/G/1 queue (requires `ρ = λ·E[S] < 1`).
    pub fn new(lambda: f64, service: ServiceDistribution) -> Result<Self, QueueingError> {
        check_nonneg_rate("lambda", lambda)?;
        service.validate()?;
        let rho = lambda * service.mean();
        if rho >= 1.0 {
            return Err(QueueingError::Unstable { rho });
        }
        Ok(MG1 { lambda, service })
    }

    /// Arrival rate λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The service distribution.
    #[inline]
    pub fn service(&self) -> ServiceDistribution {
        self.service
    }

    /// Server utilization ρ = λ·E[S].
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.lambda * self.service.mean()
    }

    /// Pollaczek–Khinchine mean waiting time
    /// `Wq = λ·E[S²] / (2(1−ρ))`.
    pub fn mean_waiting_time(&self) -> f64 {
        let rho = self.utilization();
        self.lambda * self.service.second_moment() / (2.0 * (1.0 - rho))
    }

    /// Mean sojourn time `W = Wq + E[S]`.
    pub fn mean_sojourn_time(&self) -> f64 {
        self.mean_waiting_time() + self.service.mean()
    }

    /// Mean number in system via Little's law, `L = λ·W`.
    pub fn mean_number_in_system(&self) -> f64 {
        self.lambda * self.mean_sojourn_time()
    }

    /// Mean number waiting in queue, `Lq = λ·Wq`.
    pub fn mean_number_in_queue(&self) -> f64 {
        self.lambda * self.mean_waiting_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::MM1;

    #[test]
    fn exponential_service_reduces_to_mm1() {
        let g = MG1::new(0.6, ServiceDistribution::Exponential(1.0)).unwrap();
        let m = MM1::new(0.6, 1.0).unwrap();
        assert!((g.mean_sojourn_time() - m.mean_sojourn_time()).abs() < 1e-12);
        assert!((g.mean_number_in_system() - m.mean_number_in_system()).abs() < 1e-12);
    }

    #[test]
    fn deterministic_service_halves_the_waiting_time() {
        // M/D/1 waiting is exactly half of M/M/1 waiting at equal rho.
        let md1 = MG1::new(0.6, ServiceDistribution::Deterministic(1.0)).unwrap();
        let mm1 = MG1::new(0.6, ServiceDistribution::Exponential(1.0)).unwrap();
        assert!((md1.mean_waiting_time() - mm1.mean_waiting_time() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_interpolates_between_d_and_m() {
        let wq = |s: ServiceDistribution| MG1::new(0.5, s).unwrap().mean_waiting_time();
        let d = wq(ServiceDistribution::Deterministic(1.0));
        let e4 = wq(ServiceDistribution::Erlang { mean: 1.0, phases: 4 });
        let e1 = wq(ServiceDistribution::Erlang { mean: 1.0, phases: 1 });
        let m = wq(ServiceDistribution::Exponential(1.0));
        assert!(d < e4 && e4 < e1);
        assert!((e1 - m).abs() < 1e-12, "Erlang-1 == exponential");
    }

    #[test]
    fn hyperexponential_is_worse_than_exponential() {
        let h =
            MG1::new(0.5, ServiceDistribution::HyperExponential { mean: 1.0, scv: 4.0 }).unwrap();
        let m = MG1::new(0.5, ServiceDistribution::Exponential(1.0)).unwrap();
        assert!(h.mean_waiting_time() > m.mean_waiting_time());
    }

    #[test]
    fn second_moment_identity() {
        let s = ServiceDistribution::General { mean: 2.0, scv: 0.25 };
        // E[S^2] = mean^2 (1 + scv) = 4 * 1.25 = 5.
        assert!((s.second_moment() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(ServiceDistribution::Erlang { mean: 1.0, phases: 0 }.validate().is_err());
        assert!(ServiceDistribution::HyperExponential { mean: 1.0, scv: 0.5 }.validate().is_err());
        assert!(ServiceDistribution::General { mean: 1.0, scv: -1.0 }.validate().is_err());
        assert!(ServiceDistribution::Deterministic(0.0).validate().is_err());
        assert!(ServiceDistribution::Exponential(-2.0).validate().is_err());
        assert!(MG1::new(1.1, ServiceDistribution::Exponential(1.0)).is_err());
    }

    #[test]
    fn littles_law_holds_for_mg1() {
        let g = MG1::new(0.4, ServiceDistribution::Erlang { mean: 2.0, phases: 3 }).unwrap();
        assert!((g.mean_number_in_queue() - g.lambda() * g.mean_waiting_time()).abs() < 1e-12);
        assert!((g.mean_number_in_system() - g.lambda() * g.mean_sojourn_time()).abs() < 1e-12);
    }

    #[test]
    fn idle_mg1() {
        let g = MG1::new(0.0, ServiceDistribution::Deterministic(3.0)).unwrap();
        assert_eq!(g.mean_waiting_time(), 0.0);
        assert!((g.mean_sojourn_time() - 3.0).abs() < 1e-15);
    }
}
