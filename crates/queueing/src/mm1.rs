//! The M/M/1 queue.
//!
//! The ICPPW'05 model treats every communication network (ICN1, ECN1,
//! ICN2) as an M/M/1 service centre: Poisson arrivals at rate λ,
//! exponential service at rate µ, one server, FCFS, infinite buffer.
//! Eq. 16 of the paper, `W = 1/(µ − λ)`, is
//! [`MM1::mean_sojourn_time`]; the queue length used in eq. 6 is
//! [`MM1::mean_number_in_system`].

use crate::error::{check_nonneg_rate, check_pos_rate, QueueingError};

/// A stationary M/M/1 queue with arrival rate λ and service rate µ.
///
/// Construction fails unless `0 ≤ λ < µ` (the stability condition
/// ρ = λ/µ < 1). All returned moments are exact closed forms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MM1 {
    lambda: f64,
    mu: f64,
}

impl MM1 {
    /// Creates a stable M/M/1 queue.
    ///
    /// # Errors
    ///
    /// * [`QueueingError::InvalidRate`] if either rate is negative,
    ///   non-finite, or µ is zero.
    /// * [`QueueingError::Unstable`] if λ ≥ µ.
    pub fn new(lambda: f64, mu: f64) -> Result<Self, QueueingError> {
        check_nonneg_rate("lambda", lambda)?;
        check_pos_rate("mu", mu)?;
        if lambda >= mu {
            return Err(QueueingError::Unstable { rho: lambda / mu });
        }
        Ok(MM1 { lambda, mu })
    }

    /// Arrival rate λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Service rate µ.
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Mean service time 1/µ.
    #[inline]
    pub fn mean_service_time(&self) -> f64 {
        1.0 / self.mu
    }

    /// Server utilization ρ = λ/µ, which also equals the probability the
    /// server is busy.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Mean number of customers in the system, `L = ρ/(1−ρ)`.
    ///
    /// This is the "queue length of each service centre" of paper eq. 6:
    /// a processor whose message is being transmitted is still waiting,
    /// so the in-service customer is included.
    #[inline]
    pub fn mean_number_in_system(&self) -> f64 {
        let rho = self.utilization();
        rho / (1.0 - rho)
    }

    /// Mean number of customers waiting in queue (excluding the one in
    /// service), `Lq = ρ²/(1−ρ)`.
    #[inline]
    pub fn mean_number_in_queue(&self) -> f64 {
        let rho = self.utilization();
        rho * rho / (1.0 - rho)
    }

    /// Mean sojourn (response) time `W = 1/(µ−λ)` — paper eq. 16.
    #[inline]
    pub fn mean_sojourn_time(&self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Mean waiting time in queue `Wq = ρ/(µ−λ)`.
    #[inline]
    pub fn mean_waiting_time(&self) -> f64 {
        self.utilization() / (self.mu - self.lambda)
    }

    /// Variance of the sojourn time. For M/M/1 the sojourn time is
    /// exponentially distributed with rate µ−λ, so the variance is
    /// `1/(µ−λ)²`.
    #[inline]
    pub fn sojourn_time_variance(&self) -> f64 {
        let w = self.mean_sojourn_time();
        w * w
    }

    /// Steady-state probability of exactly `n` customers in the system,
    /// `P(N = n) = (1−ρ)ρⁿ`.
    #[inline]
    pub fn prob_n_in_system(&self, n: u32) -> f64 {
        let rho = self.utilization();
        (1.0 - rho) * rho.powi(n as i32)
    }

    /// Probability that an arriving customer must wait (server busy).
    /// By PASTA this equals ρ.
    #[inline]
    pub fn prob_wait(&self) -> f64 {
        self.utilization()
    }

    /// Probability that the number in the system exceeds `n`,
    /// `P(N > n) = ρ^{n+1}`.
    #[inline]
    pub fn prob_more_than(&self, n: u32) -> f64 {
        self.utilization().powi(n as i32 + 1)
    }

    /// The `p`-quantile of the sojourn-time distribution
    /// (exponential with rate µ−λ): `−ln(1−p)/(µ−λ)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn sojourn_time_quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile level must be in [0,1), got {p}");
        -(1.0 - p).ln() * self.mean_sojourn_time()
    }

    /// Throughput of the queue; for a stable queue this equals λ.
    #[inline]
    pub fn throughput(&self) -> f64 {
        self.lambda
    }

    /// Verifies Little's law `L = λ·W` as a self-check; returns the
    /// absolute discrepancy (zero up to rounding).
    pub fn littles_law_residual(&self) -> f64 {
        (self.mean_number_in_system() - self.lambda * self.mean_sojourn_time()).abs()
    }
}

/// Mean sojourn time of an M/M/1 queue without constructing the struct,
/// `W = 1/(µ−λ)`. Returns `None` when the queue would be unstable or the
/// inputs are invalid. Convenience for hot solver loops (paper eq. 16).
#[inline]
pub fn sojourn_time(lambda: f64, mu: f64) -> Option<f64> {
    if !lambda.is_finite() || !mu.is_finite() || lambda < 0.0 || mu <= 0.0 || lambda >= mu {
        None
    } else {
        Some(1.0 / (mu - lambda))
    }
}

/// Mean number in system of an M/M/1 queue without constructing the
/// struct, `L = ρ/(1−ρ)`. Returns `None` when unstable or invalid.
#[inline]
pub fn number_in_system(lambda: f64, mu: f64) -> Option<f64> {
    if !lambda.is_finite() || !mu.is_finite() || lambda < 0.0 || mu <= 0.0 || lambda >= mu {
        None
    } else {
        let rho = lambda / mu;
        Some(rho / (1.0 - rho))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(lambda: f64, mu: f64) -> MM1 {
        MM1::new(lambda, mu).unwrap()
    }

    #[test]
    fn rejects_unstable_and_invalid() {
        assert!(matches!(MM1::new(2.0, 1.0), Err(QueueingError::Unstable { .. })));
        assert!(matches!(MM1::new(1.0, 1.0), Err(QueueingError::Unstable { .. })));
        assert!(MM1::new(-1.0, 1.0).is_err());
        assert!(MM1::new(1.0, 0.0).is_err());
        assert!(MM1::new(f64::NAN, 1.0).is_err());
        assert!(MM1::new(0.5, f64::INFINITY).is_err());
    }

    #[test]
    fn zero_arrival_rate_is_an_idle_queue() {
        let idle = q(0.0, 3.0);
        assert_eq!(idle.utilization(), 0.0);
        assert_eq!(idle.mean_number_in_system(), 0.0);
        assert!((idle.mean_sojourn_time() - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(idle.mean_waiting_time(), 0.0);
    }

    #[test]
    fn textbook_example() {
        // Kleinrock vol. 1 style: lambda = 1, mu = 2 => rho = 0.5,
        // L = 1, Lq = 0.5, W = 1, Wq = 0.5.
        let k = q(1.0, 2.0);
        assert!((k.utilization() - 0.5).abs() < 1e-15);
        assert!((k.mean_number_in_system() - 1.0).abs() < 1e-15);
        assert!((k.mean_number_in_queue() - 0.5).abs() < 1e-15);
        assert!((k.mean_sojourn_time() - 1.0).abs() < 1e-15);
        assert!((k.mean_waiting_time() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn littles_law_holds() {
        for (l, m) in [(0.1, 1.0), (0.9, 1.0), (3.0, 10.0), (7.5, 8.0)] {
            assert!(q(l, m).littles_law_residual() < 1e-9, "lambda={l} mu={m}");
        }
    }

    #[test]
    fn state_probabilities_sum_to_one() {
        let k = q(0.7, 1.0);
        let total: f64 = (0..2000).map(|n| k.prob_n_in_system(n)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tail_probability_matches_sum() {
        let k = q(0.6, 1.0);
        let tail_direct = k.prob_more_than(4);
        let tail_sum: f64 = (5..3000).map(|n| k.prob_n_in_system(n)).sum();
        assert!((tail_direct - tail_sum).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bracket_the_mean() {
        let k = q(0.5, 1.0);
        // Exponential: median = ln 2 * mean < mean < p90.
        assert!(k.sojourn_time_quantile(0.5) < k.mean_sojourn_time());
        assert!(k.sojourn_time_quantile(0.9) > k.mean_sojourn_time());
        assert_eq!(k.sojourn_time_quantile(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn quantile_rejects_out_of_range() {
        q(0.5, 1.0).sojourn_time_quantile(1.0);
    }

    #[test]
    fn free_function_helpers_match_struct() {
        let k = q(0.25, 0.8);
        assert_eq!(sojourn_time(0.25, 0.8), Some(k.mean_sojourn_time()));
        assert_eq!(number_in_system(0.25, 0.8), Some(k.mean_number_in_system()));
        assert_eq!(sojourn_time(1.0, 1.0), None);
        assert_eq!(number_in_system(2.0, 1.0), None);
        assert_eq!(sojourn_time(-1.0, 1.0), None);
    }

    #[test]
    fn waiting_plus_service_equals_sojourn() {
        let k = q(0.4, 1.1);
        let w = k.mean_waiting_time() + k.mean_service_time();
        assert!((w - k.mean_sojourn_time()).abs() < 1e-12);
    }

    #[test]
    fn heavy_traffic_blows_up() {
        let k = q(0.999, 1.0);
        assert!(k.mean_number_in_system() > 500.0);
        assert!(k.mean_sojourn_time() > 500.0);
    }
}
