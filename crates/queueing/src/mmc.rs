//! Multi-server and finite-buffer Markovian queues: M/M/c, M/M/1/K and
//! M/M/∞.
//!
//! These generalise the paper's M/M/1 service centres. An M/M/c centre
//! models a network with `c` parallel links (e.g. a trunked inter-cluster
//! uplink); M/M/1/K models a switch with finite buffering; M/M/∞ is the
//! contention-free limit used as a lower bound.

use crate::error::{check_nonneg_rate, check_pos_rate, QueueingError};

/// A stationary M/M/c queue: Poisson arrivals λ, `c` exponential servers
/// each of rate µ, infinite buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MMc {
    lambda: f64,
    mu: f64,
    servers: u32,
}

impl MMc {
    /// Creates a stable M/M/c queue (requires `λ < c·µ`).
    pub fn new(lambda: f64, mu: f64, servers: u32) -> Result<Self, QueueingError> {
        check_nonneg_rate("lambda", lambda)?;
        check_pos_rate("mu", mu)?;
        if servers == 0 {
            return Err(QueueingError::InvalidParameter {
                name: "servers",
                reason: "must be at least 1",
            });
        }
        let rho = lambda / (servers as f64 * mu);
        if rho >= 1.0 {
            return Err(QueueingError::Unstable { rho });
        }
        Ok(MMc { lambda, mu, servers })
    }

    /// Arrival rate λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Per-server service rate µ.
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Number of servers `c`.
    #[inline]
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Offered load in Erlangs, `a = λ/µ`.
    #[inline]
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Per-server utilization ρ = λ/(c·µ).
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.lambda / (self.servers as f64 * self.mu)
    }

    /// Erlang C: the probability an arriving customer has to wait,
    /// `C(c, a)`.
    ///
    /// Computed with the numerically stable recurrence on the Erlang B
    /// blocking probability
    /// `B(0, a) = 1`, `B(k, a) = a·B(k−1, a) / (k + a·B(k−1, a))`,
    /// then `C = B / (1 − ρ(1 − B))`.
    pub fn erlang_c(&self) -> f64 {
        let a = self.offered_load();
        if a == 0.0 {
            return 0.0;
        }
        let mut b = 1.0;
        for k in 1..=self.servers {
            b = a * b / (k as f64 + a * b);
        }
        let rho = self.utilization();
        b / (1.0 - rho * (1.0 - b))
    }

    /// Mean number waiting in queue `Lq = C(c,a)·ρ/(1−ρ)`.
    pub fn mean_number_in_queue(&self) -> f64 {
        let rho = self.utilization();
        self.erlang_c() * rho / (1.0 - rho)
    }

    /// Mean number in system `L = Lq + a`.
    pub fn mean_number_in_system(&self) -> f64 {
        self.mean_number_in_queue() + self.offered_load()
    }

    /// Mean waiting time in queue `Wq = Lq/λ` (0 when λ = 0).
    pub fn mean_waiting_time(&self) -> f64 {
        if self.lambda == 0.0 {
            0.0
        } else {
            self.mean_number_in_queue() / self.lambda
        }
    }

    /// Mean sojourn time `W = Wq + 1/µ`.
    pub fn mean_sojourn_time(&self) -> f64 {
        self.mean_waiting_time() + 1.0 / self.mu
    }
}

/// A finite-buffer M/M/1/K queue: at most `K` customers in the system
/// (including the one in service); arrivals finding the system full are
/// lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MM1K {
    lambda: f64,
    mu: f64,
    capacity: u32,
}

impl MM1K {
    /// Creates an M/M/1/K queue. Finite-buffer queues are always stable,
    /// so λ ≥ µ is allowed.
    pub fn new(lambda: f64, mu: f64, capacity: u32) -> Result<Self, QueueingError> {
        check_nonneg_rate("lambda", lambda)?;
        check_pos_rate("mu", mu)?;
        if capacity == 0 {
            return Err(QueueingError::InvalidParameter {
                name: "capacity",
                reason: "must be at least 1",
            });
        }
        Ok(MM1K { lambda, mu, capacity })
    }

    /// Steady-state probability of `n` customers in the system
    /// (0 for n > K).
    pub fn prob_n_in_system(&self, n: u32) -> f64 {
        if n > self.capacity {
            return 0.0;
        }
        let rho = self.lambda / self.mu;
        let k = self.capacity as i32;
        if (rho - 1.0).abs() < 1e-12 {
            return 1.0 / (k as f64 + 1.0);
        }
        (1.0 - rho) * rho.powi(n as i32) / (1.0 - rho.powi(k + 1))
    }

    /// Probability an arrival is blocked (system full), `P(N = K)`.
    pub fn blocking_probability(&self) -> f64 {
        self.prob_n_in_system(self.capacity)
    }

    /// Effective (carried) arrival rate `λ(1 − P_block)`.
    pub fn effective_lambda(&self) -> f64 {
        self.lambda * (1.0 - self.blocking_probability())
    }

    /// Mean number in system `L = Σ n·P(N=n)`.
    pub fn mean_number_in_system(&self) -> f64 {
        (0..=self.capacity).map(|n| n as f64 * self.prob_n_in_system(n)).sum()
    }

    /// Mean sojourn time of *accepted* customers, `W = L / λ_eff`
    /// (0 when there is no traffic).
    pub fn mean_sojourn_time(&self) -> f64 {
        let le = self.effective_lambda();
        if le == 0.0 {
            0.0
        } else {
            self.mean_number_in_system() / le
        }
    }
}

/// The M/M/∞ queue (infinite servers): every customer is served
/// immediately. Models a contention-free network and lower-bounds any
/// finite-capacity centre with the same service time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MMInf {
    lambda: f64,
    mu: f64,
}

impl MMInf {
    /// Creates an M/M/∞ queue (always stable).
    pub fn new(lambda: f64, mu: f64) -> Result<Self, QueueingError> {
        check_nonneg_rate("lambda", lambda)?;
        check_pos_rate("mu", mu)?;
        Ok(MMInf { lambda, mu })
    }

    /// Mean number in system `L = λ/µ` (Poisson distributed).
    pub fn mean_number_in_system(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Mean sojourn time `W = 1/µ` (no waiting, ever).
    pub fn mean_sojourn_time(&self) -> f64 {
        1.0 / self.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::MM1;

    #[test]
    fn mmc_with_one_server_reduces_to_mm1() {
        let c = MMc::new(0.7, 1.0, 1).unwrap();
        let s = MM1::new(0.7, 1.0).unwrap();
        assert!((c.mean_number_in_system() - s.mean_number_in_system()).abs() < 1e-12);
        assert!((c.mean_sojourn_time() - s.mean_sojourn_time()).abs() < 1e-12);
        assert!((c.erlang_c() - s.prob_wait()).abs() < 1e-12);
    }

    #[test]
    fn mmc_rejects_unstable() {
        assert!(MMc::new(2.0, 1.0, 2).is_err());
        assert!(MMc::new(2.0, 1.0, 3).is_ok());
        assert!(MMc::new(1.0, 1.0, 0).is_err());
    }

    #[test]
    fn erlang_c_textbook_value() {
        // Classic call-centre example: c = 2, lambda = 1.5, mu = 1
        // => a = 1.5, rho = 0.75. Erlang B: B1 = 1.5/2.5 = 0.6,
        // B2 = 1.5*0.6/(2+0.9) = 0.9/2.9. C = B2/(1-0.75(1-B2)).
        let q = MMc::new(1.5, 1.0, 2).unwrap();
        let b2: f64 = 0.9 / 2.9;
        let expected = b2 / (1.0 - 0.75 * (1.0 - b2));
        assert!((q.erlang_c() - expected).abs() < 1e-12);
    }

    #[test]
    fn mmc_more_servers_means_less_waiting() {
        let w2 = MMc::new(1.8, 1.0, 2).unwrap().mean_waiting_time();
        let w4 = MMc::new(1.8, 1.0, 4).unwrap().mean_waiting_time();
        let w8 = MMc::new(1.8, 1.0, 8).unwrap().mean_waiting_time();
        assert!(w2 > w4 && w4 > w8);
    }

    #[test]
    fn mmc_littles_law() {
        let q = MMc::new(2.5, 1.0, 4).unwrap();
        let l = q.mean_number_in_system();
        let w = q.mean_sojourn_time();
        assert!((l - q.lambda() * w).abs() < 1e-10);
    }

    #[test]
    fn mmc_idle_queue() {
        let q = MMc::new(0.0, 1.0, 3).unwrap();
        assert_eq!(q.erlang_c(), 0.0);
        assert_eq!(q.mean_number_in_queue(), 0.0);
        assert_eq!(q.mean_waiting_time(), 0.0);
        assert!((q.mean_sojourn_time() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn mm1k_probabilities_sum_to_one() {
        let q = MM1K::new(0.8, 1.0, 10).unwrap();
        let total: f64 = (0..=10).map(|n| q.prob_n_in_system(n)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(q.prob_n_in_system(11), 0.0);
    }

    #[test]
    fn mm1k_allows_overload() {
        // rho = 2: heavily overloaded but finite.
        let q = MM1K::new(2.0, 1.0, 5).unwrap();
        let p_block = q.blocking_probability();
        assert!(p_block > 0.4, "most arrivals should be blocked, got {p_block}");
        assert!(q.effective_lambda() < 1.0);
    }

    #[test]
    fn mm1k_rho_equal_one_is_uniform() {
        let q = MM1K::new(1.0, 1.0, 4).unwrap();
        for n in 0..=4 {
            assert!((q.prob_n_in_system(n) - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn mm1k_large_buffer_approaches_mm1() {
        let finite = MM1K::new(0.5, 1.0, 200).unwrap();
        let infinite = MM1::new(0.5, 1.0).unwrap();
        assert!((finite.mean_number_in_system() - infinite.mean_number_in_system()).abs() < 1e-9);
        assert!(finite.blocking_probability() < 1e-30);
    }

    #[test]
    fn mminf_has_no_waiting() {
        let q = MMInf::new(100.0, 2.0).unwrap();
        assert!((q.mean_sojourn_time() - 0.5).abs() < 1e-15);
        assert!((q.mean_number_in_system() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_mminf_le_mmc_le_mm1() {
        // Same total capacity: M/M/2 with mu each vs M/M/1 with rate mu
        // (not 2mu) is worse; M/M/inf is best.
        let lam = 0.9;
        let w_inf = MMInf::new(lam, 1.0).unwrap().mean_sojourn_time();
        let w_c = MMc::new(lam, 1.0, 2).unwrap().mean_sojourn_time();
        let w_1 = MM1::new(lam, 1.0).unwrap().mean_sojourn_time();
        assert!(w_inf <= w_c && w_c <= w_1);
    }
}
