//! Operational laws (Denning & Buzen): distribution-free identities
//! that hold for *any* measured interval — the sanity-check layer
//! between the model and the simulators.
//!
//! Unlike the stochastic results elsewhere in this crate, operational
//! laws assume nothing about distributions; they are bookkeeping
//! identities on observed counts and times. The workspace uses them to
//! cross-check simulator instrumentation (utilization law), to bound
//! system throughput (bottleneck analysis) and to reason about the
//! closed system the paper's assumption 4 creates (interactive response
//! time law — which *is* eq. 7 rearranged).

/// Utilization law: `U = X·S` (throughput × mean service time).
pub fn utilization(throughput: f64, mean_service_time: f64) -> f64 {
    throughput * mean_service_time
}

/// Little's law: `N = X·R`.
pub fn number_in_system(throughput: f64, mean_residence_time: f64) -> f64 {
    throughput * mean_residence_time
}

/// Forced-flow law: `X_k = V_k·X` (station throughput = visit ratio ×
/// system throughput).
pub fn station_throughput(visit_ratio: f64, system_throughput: f64) -> f64 {
    visit_ratio * system_throughput
}

/// Service demand: `D_k = V_k·S_k`.
pub fn service_demand(visit_ratio: f64, mean_service_time: f64) -> f64 {
    visit_ratio * mean_service_time
}

/// Interactive response time law: `R = N/X − Z` for `N` users with
/// think time `Z`. This is precisely the relation the paper's eq. 7
/// encodes: `λ_eff = X/N = 1/(Z + R)` with `Z = 1/λ`.
///
/// Returns `None` when `throughput` is not positive.
pub fn interactive_response_time(users: f64, throughput: f64, think_time: f64) -> Option<f64> {
    if throughput <= 0.0 {
        return None;
    }
    Some(users / throughput - think_time)
}

/// Asymptotic bounds on closed-system throughput for `n` users, total
/// demand `d_total = ΣD_k`, bottleneck demand `d_max` and think time
/// `z`:
///
/// `X(n) ≤ min(n/(d_total + z), 1/d_max)`.
pub fn throughput_upper_bound(users: f64, d_total: f64, d_max: f64, think_time: f64) -> f64 {
    (users / (d_total + think_time)).min(1.0 / d_max)
}

/// The population at which the two asymptotic throughput bounds cross,
/// `N* = (d_total + z)/d_max` — beyond it the bottleneck saturates.
pub fn saturation_population(d_total: f64, d_max: f64, think_time: f64) -> f64 {
    (d_total + think_time) / d_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed::{mva, MvaStation};

    #[test]
    fn utilization_law_example() {
        // 50 jobs/s at 15 ms each => 75% busy.
        assert!((utilization(50.0, 0.015) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn littles_law_identity() {
        assert!((number_in_system(2.0, 3.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn forced_flow_and_demand() {
        assert_eq!(station_throughput(4.0, 0.5), 2.0);
        assert_eq!(service_demand(4.0, 0.25), 1.0);
    }

    #[test]
    fn interactive_law_matches_eq7_shape() {
        // N = 256 users, think 1/lambda = 4000 µs, X = 256*2.2e-5:
        // R = N/X - Z.
        let users = 256.0;
        let x = 256.0 * 2.2e-5;
        let z = 4000.0;
        let r = interactive_response_time(users, x, z).unwrap();
        // lambda_eff = 1/(Z+R) must equal X/N.
        let lambda_eff = 1.0 / (z + r);
        assert!((lambda_eff - x / users).abs() < 1e-12);
        assert_eq!(interactive_response_time(1.0, 0.0, 1.0), None);
    }

    #[test]
    fn bounds_envelope_exact_mva() {
        let stations = [
            MvaStation::Delay { demand: 10.0 },
            MvaStation::Queueing { demand: 2.0 },
            MvaStation::Queueing { demand: 1.0 },
        ];
        let (d_total, d_max, z) = (3.0, 2.0, 10.0);
        for n in [1u32, 2, 5, 10, 50] {
            let exact = mva(&stations, n).unwrap().throughput;
            let bound = throughput_upper_bound(n as f64, d_total, d_max, z);
            assert!(exact <= bound + 1e-9, "n={n}: {exact} > {bound}");
        }
        // Far past saturation the bound is tight.
        let exact = mva(&stations, 200).unwrap().throughput;
        assert!((exact - 0.5).abs() < 1e-6);
    }

    #[test]
    fn saturation_population_marks_the_knee() {
        let nstar = saturation_population(3.0, 2.0, 10.0);
        assert!((nstar - 6.5).abs() < 1e-12);
        // Below N*: throughput ~ linear in n. Above: flat.
        let stations = [
            MvaStation::Delay { demand: 10.0 },
            MvaStation::Queueing { demand: 2.0 },
            MvaStation::Queueing { demand: 1.0 },
        ];
        let x3 = mva(&stations, 3).unwrap().throughput;
        let x30 = mva(&stations, 30).unwrap().throughput;
        assert!(x3 < 0.5 * 0.95, "well below saturation");
        assert!((x30 - 0.5).abs() < 0.01, "saturated at 1/d_max");
    }
}
