//! Multi-class M/G/1 priority queues.
//!
//! Extension substrate: multi-cluster schedulers commonly separate
//! latency-critical control traffic from bulk data (the paper's ECN
//! carries "management" traffic alongside application messages, §3).
//! These closed forms let the model study what strict priorities at a
//! network tier would do.
//!
//! Classes are indexed from 0 = **highest** priority. Classic results
//! (Cobham / Kleinrock vol. 2):
//!
//! * non-preemptive: `Wq_k = W₀ / ((1−σ_{k−1})(1−σ_k))` with
//!   `W₀ = Σᵢ λᵢ·E[Sᵢ²]/2` and `σ_k = Σ_{i≤k} ρᵢ`;
//! * preemptive-resume: `T_k = (E[S_k]·(1−σ_{k−1})⁻¹) + (W₀^{(k)} /
//!   ((1−σ_{k−1})(1−σ_k)))` where `W₀^{(k)}` sums residuals over
//!   classes `i ≤ k` only.

use crate::error::{check_nonneg_rate, QueueingError};
use crate::mg1::ServiceDistribution;

/// One priority class: arrival rate plus service description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityClass {
    /// Poisson arrival rate of this class.
    pub lambda: f64,
    /// Service-time distribution of this class.
    pub service: ServiceDistribution,
}

/// Scheduling discipline across classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// The server finishes the current job before switching.
    NonPreemptive,
    /// Higher classes interrupt lower ones; interrupted work resumes.
    PreemptiveResume,
}

/// Per-class steady-state results.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityResults {
    /// Mean waiting time in queue per class (µ-units of the input).
    pub waiting_times: Vec<f64>,
    /// Mean sojourn (response) time per class.
    pub sojourn_times: Vec<f64>,
    /// Per-class utilization ρᵢ.
    pub utilizations: Vec<f64>,
}

/// A multi-class M/G/1 priority queue (class 0 = highest priority).
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityMG1 {
    classes: Vec<PriorityClass>,
}

impl PriorityMG1 {
    /// Creates the queue; requires total utilization Σρᵢ < 1.
    pub fn new(classes: Vec<PriorityClass>) -> Result<Self, QueueingError> {
        if classes.is_empty() {
            return Err(QueueingError::InvalidParameter {
                name: "classes",
                reason: "need at least one priority class",
            });
        }
        let mut total_rho = 0.0;
        for c in &classes {
            check_nonneg_rate("lambda", c.lambda)?;
            c.service.validate()?;
            total_rho += c.lambda * c.service.mean();
        }
        if total_rho >= 1.0 {
            return Err(QueueingError::Unstable { rho: total_rho });
        }
        Ok(PriorityMG1 { classes })
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total utilization Σρᵢ.
    pub fn total_utilization(&self) -> f64 {
        self.classes.iter().map(|c| c.lambda * c.service.mean()).sum()
    }

    /// Solves the queue under the given discipline.
    pub fn solve(&self, discipline: Discipline) -> PriorityResults {
        let k = self.classes.len();
        let rho: Vec<f64> = self.classes.iter().map(|c| c.lambda * c.service.mean()).collect();
        // Cumulative utilizations sigma_k = sum_{i<=k} rho_i; sigma(-1)=0.
        let mut sigma = vec![0.0; k + 1];
        for i in 0..k {
            sigma[i + 1] = sigma[i] + rho[i];
        }
        // Residual work contributed by class i: lambda_i E[S_i^2]/2.
        let residual: Vec<f64> =
            self.classes.iter().map(|c| c.lambda * c.service.second_moment() / 2.0).collect();
        let total_residual: f64 = residual.iter().sum();

        let mut waiting = Vec::with_capacity(k);
        let mut sojourn = Vec::with_capacity(k);
        for i in 0..k {
            match discipline {
                Discipline::NonPreemptive => {
                    let wq = total_residual / ((1.0 - sigma[i]) * (1.0 - sigma[i + 1]));
                    waiting.push(wq);
                    sojourn.push(wq + self.classes[i].service.mean());
                }
                Discipline::PreemptiveResume => {
                    // Only classes <= i delay class i.
                    let w0: f64 = residual[..=i].iter().sum();
                    let service_stretch = self.classes[i].service.mean() / (1.0 - sigma[i]);
                    let wq = w0 / ((1.0 - sigma[i]) * (1.0 - sigma[i + 1]));
                    waiting.push(wq);
                    sojourn.push(service_stretch + wq);
                }
            }
        }
        PriorityResults { waiting_times: waiting, sojourn_times: sojourn, utilizations: rho }
    }

    /// The Kleinrock conservation law for non-preemptive work-conserving
    /// disciplines: `Σ ρᵢ·Wqᵢ` is invariant (equals `ρ·W₀/(1−ρ)`).
    /// Returns the residual between the two sides — a self-check used in
    /// tests.
    pub fn conservation_residual(&self) -> f64 {
        let results = self.solve(Discipline::NonPreemptive);
        let rho_total = self.total_utilization();
        let w0: f64 = self.classes.iter().map(|c| c.lambda * c.service.second_moment() / 2.0).sum();
        let lhs: f64 =
            results.utilizations.iter().zip(&results.waiting_times).map(|(r, w)| r * w).sum();
        let rhs = rho_total * w0 / (1.0 - rho_total);
        (lhs - rhs).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg1::MG1;

    fn exp_class(lambda: f64, mean: f64) -> PriorityClass {
        PriorityClass { lambda, service: ServiceDistribution::Exponential(mean) }
    }

    #[test]
    fn single_class_reduces_to_mg1() {
        let q = PriorityMG1::new(vec![exp_class(0.5, 1.0)]).unwrap();
        let mg1 = MG1::new(0.5, ServiceDistribution::Exponential(1.0)).unwrap();
        for discipline in [Discipline::NonPreemptive, Discipline::PreemptiveResume] {
            let r = q.solve(discipline);
            assert!((r.waiting_times[0] - mg1.mean_waiting_time()).abs() < 1e-12, "{discipline:?}");
            assert!((r.sojourn_times[0] - mg1.mean_sojourn_time()).abs() < 1e-12);
        }
    }

    #[test]
    fn high_priority_waits_less() {
        let q = PriorityMG1::new(vec![exp_class(0.3, 1.0), exp_class(0.3, 1.0)]).unwrap();
        for discipline in [Discipline::NonPreemptive, Discipline::PreemptiveResume] {
            let r = q.solve(discipline);
            assert!(r.waiting_times[0] < r.waiting_times[1], "{discipline:?}");
            assert!(r.sojourn_times[0] < r.sojourn_times[1]);
        }
    }

    #[test]
    fn preemption_shields_the_top_class_completely() {
        // Under preemptive-resume, class 0 never sees class 1 at all:
        // its sojourn equals a solo M/G/1 with only class-0 load.
        let q = PriorityMG1::new(vec![exp_class(0.3, 1.0), exp_class(0.5, 1.0)]).unwrap();
        let solo = MG1::new(0.3, ServiceDistribution::Exponential(1.0)).unwrap();
        let r = q.solve(Discipline::PreemptiveResume);
        assert!((r.sojourn_times[0] - solo.mean_sojourn_time()).abs() < 1e-12);
        // Non-preemptively, class 0 still waits behind in-service
        // class-1 jobs.
        let np = q.solve(Discipline::NonPreemptive);
        assert!(np.waiting_times[0] > r.waiting_times[0]);
    }

    #[test]
    fn conservation_law_holds() {
        let q = PriorityMG1::new(vec![
            exp_class(0.2, 0.5),
            PriorityClass {
                lambda: 0.1,
                service: ServiceDistribution::Erlang { mean: 2.0, phases: 2 },
            },
            PriorityClass { lambda: 0.05, service: ServiceDistribution::Deterministic(3.0) },
        ])
        .unwrap();
        assert!(q.conservation_residual() < 1e-10);
    }

    #[test]
    fn priorities_do_not_change_total_backlog() {
        // Mean number in system summed over classes (weighted by
        // arrival rates via Little) is the same for both class orders
        // when classes are stochastically identical.
        let a = PriorityMG1::new(vec![exp_class(0.25, 1.0), exp_class(0.35, 1.0)]).unwrap();
        let b = PriorityMG1::new(vec![exp_class(0.35, 1.0), exp_class(0.25, 1.0)]).unwrap();
        let total = |q: &PriorityMG1| {
            let r = q.solve(Discipline::NonPreemptive);
            q.classes.iter().zip(&r.sojourn_times).map(|(c, t)| c.lambda * t).sum::<f64>()
        };
        assert!((total(&a) - total(&b)).abs() < 1e-10);
    }

    #[test]
    fn rejects_unstable_and_empty() {
        assert!(PriorityMG1::new(vec![]).is_err());
        assert!(PriorityMG1::new(vec![exp_class(0.6, 1.0), exp_class(0.6, 1.0)]).is_err());
        assert!(PriorityMG1::new(vec![exp_class(-0.1, 1.0)]).is_err());
    }

    #[test]
    fn starving_low_priority_under_heavy_high_priority() {
        let q = PriorityMG1::new(vec![exp_class(0.9, 1.0), exp_class(0.05, 1.0)]).unwrap();
        let r = q.solve(Discipline::PreemptiveResume);
        // Class 1 sees effective capacity 1 - 0.9 = 0.1.
        assert!(r.sojourn_times[1] > 10.0 * r.sojourn_times[0]);
    }
}
