//! Cross-module consistency: classical identities that tie the
//! independent implementations in this crate together. Each test uses
//! two different code paths to compute the same quantity.

use hmcs_queueing::closed::{mva, MachineRepairman, MvaStation};
use hmcs_queueing::gg1::{Approximation, GG1};
use hmcs_queueing::jackson::{JacksonNetwork, Station};
use hmcs_queueing::mg1::{ServiceDistribution, MG1};
use hmcs_queueing::mm1::MM1;
use hmcs_queueing::mmc::MMc;
use hmcs_queueing::operational;
use hmcs_queueing::priority::{Discipline, PriorityClass, PriorityMG1};

/// Burke's theorem consequence: a two-stage M/M/1 tandem has end-to-end
/// time equal to the sum of independent M/M/1 sojourns — the Jackson
/// solver and the direct M/M/1 formulas must agree.
#[test]
fn burke_tandem_identity() {
    let (lambda, mu1, mu2) = (0.4, 1.0, 0.7);
    let net = JacksonNetwork::new(
        vec![Station::single(mu1, lambda), Station::single(mu2, 0.0)],
        vec![vec![0.0, 1.0], vec![0.0, 0.0]],
    )
    .unwrap();
    let jackson = net.solve().unwrap().mean_time_in_network();
    let direct = MM1::new(lambda, mu1).unwrap().mean_sojourn_time()
        + MM1::new(lambda, mu2).unwrap().mean_sojourn_time();
    assert!((jackson - direct).abs() < 1e-12);
}

/// The repairman's utilization obeys the utilization law with its own
/// throughput: U = X·S.
#[test]
fn repairman_satisfies_utilization_law() {
    let m = MachineRepairman::new(30, 0.05, 1.0).unwrap().solve();
    let u = operational::utilization(m.throughput, 1.0);
    assert!((u - m.utilization).abs() < 1e-12);
}

/// MVA cycle time satisfies the interactive response time law exactly.
#[test]
fn mva_satisfies_interactive_law() {
    let z = 25.0;
    let stations = [
        MvaStation::Delay { demand: z },
        MvaStation::Queueing { demand: 3.0 },
        MvaStation::Queueing { demand: 1.5 },
    ];
    for n in [1u32, 4, 16, 64] {
        let sol = mva(&stations, n).unwrap();
        let r_from_law =
            operational::interactive_response_time(n as f64, sol.throughput, z).unwrap();
        let r_from_mva: f64 = sol.residence_times[1..].iter().sum();
        assert!(
            (r_from_law - r_from_mva).abs() < 1e-9,
            "n={n}: law {r_from_law} vs MVA {r_from_mva}"
        );
    }
}

/// A non-preemptive priority M/M/1 with identical classes collapses to
/// plain M/G/1 FCFS for the *aggregate*: rate-weighted mean waiting
/// equals the FCFS waiting (conservation with equal weights).
#[test]
fn identical_priority_classes_average_to_fcfs() {
    let per_class = PriorityClass { lambda: 0.2, service: ServiceDistribution::Exponential(1.0) };
    let q = PriorityMG1::new(vec![per_class; 3]).unwrap();
    let res = q.solve(Discipline::NonPreemptive);
    let weighted: f64 = res.waiting_times.iter().sum::<f64>() / 3.0;
    let fcfs = MG1::new(0.6, ServiceDistribution::Exponential(1.0)).unwrap();
    // Conservation: sum(rho_i Wq_i) = rho Wq_fcfs; with equal rho_i this
    // is the plain average.
    assert!((weighted - fcfs.mean_waiting_time()).abs() < 1e-10);
}

/// Erlang C at c=1 equals the M/M/1 busy probability, and the GG1
/// Poisson/exponential case matches both queueing-time ladders.
#[test]
fn three_ways_to_the_same_mm1() {
    let (lambda, mu) = (0.65, 1.0);
    let mm1 = MM1::new(lambda, mu).unwrap();
    let mmc = MMc::new(lambda, mu, 1).unwrap();
    let gg1 = GG1::new(lambda, 1.0, ServiceDistribution::Exponential(1.0)).unwrap();
    assert!((mmc.erlang_c() - mm1.prob_wait()).abs() < 1e-12);
    assert!((mmc.mean_waiting_time() - mm1.mean_waiting_time()).abs() < 1e-12);
    assert!((gg1.mean_waiting_time(Approximation::KLB) - mm1.mean_waiting_time()).abs() < 1e-12);
}

/// Little's law chains through a Jackson network: the sum of station
/// occupancies equals external rate times mean network time.
#[test]
fn network_wide_littles_law() {
    let net = JacksonNetwork::new(
        vec![Station::single(2.0, 0.5), Station::single(1.5, 0.2), Station::single(3.0, 0.0)],
        vec![vec![0.0, 0.3, 0.4], vec![0.0, 0.0, 0.5], vec![0.0, 0.0, 0.0]],
    )
    .unwrap();
    let sol = net.solve().unwrap();
    let l = sol.mean_number_in_network();
    let w = sol.mean_time_in_network();
    let lambda_total = 0.7;
    assert!((l - operational::number_in_system(lambda_total, w)).abs() < 1e-12);
}
