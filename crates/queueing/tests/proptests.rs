//! Property-based tests for the queueing-theory substrate.

use hmcs_queueing::closed::{mva, MachineRepairman, MvaStation};
use hmcs_queueing::fixed_point::{bisect, monotone_fixed_point, SolverOptions};
use hmcs_queueing::jackson::{JacksonNetwork, Station};
use hmcs_queueing::linalg::{self, Matrix};
use hmcs_queueing::mg1::{ServiceDistribution, MG1};
use hmcs_queueing::mm1::MM1;
use hmcs_queueing::mmc::{MMc, MM1K};
use proptest::prelude::*;

proptest! {
    /// Little's law L = λW holds for every stable M/M/1.
    #[test]
    fn mm1_littles_law(lambda in 0.0f64..0.99, mu in 1.0f64..10.0) {
        prop_assume!(lambda < mu);
        let q = MM1::new(lambda, mu).unwrap();
        let resid = (q.mean_number_in_system() - lambda * q.mean_sojourn_time()).abs();
        prop_assert!(resid < 1e-6 * (1.0 + q.mean_number_in_system()));
    }

    /// Sojourn time is monotone increasing in λ and decreasing in µ.
    #[test]
    fn mm1_monotonicity(lambda in 0.01f64..0.9, mu in 1.0f64..5.0, eps in 0.001f64..0.05) {
        let w = MM1::new(lambda, mu).unwrap().mean_sojourn_time();
        let w_more_load = MM1::new(lambda + eps, mu).unwrap().mean_sojourn_time();
        let w_more_capacity = MM1::new(lambda, mu + eps).unwrap().mean_sojourn_time();
        prop_assert!(w_more_load > w);
        prop_assert!(w_more_capacity < w);
    }

    /// M/M/1 state probabilities are a valid distribution.
    #[test]
    fn mm1_state_probabilities_valid(lambda in 0.0f64..0.95) {
        let q = MM1::new(lambda, 1.0).unwrap();
        let mut total = 0.0;
        for n in 0..500 {
            let p = q.prob_n_in_system(n);
            prop_assert!((0.0..=1.0).contains(&p));
            total += p;
        }
        prop_assert!(total <= 1.0 + 1e-9);
    }

    /// Erlang C is a probability and M/M/c waiting time decreases with c.
    #[test]
    fn mmc_erlang_c_and_monotone(a in 0.1f64..6.0, c1 in 1u32..6) {
        let c2 = c1 + 1;
        // Keep both stable: need a < c1.
        prop_assume!(a < c1 as f64);
        let q1 = MMc::new(a, 1.0, c1).unwrap();
        let q2 = MMc::new(a, 1.0, c2).unwrap();
        prop_assert!((0.0..=1.0).contains(&q1.erlang_c()));
        prop_assert!(q2.mean_waiting_time() <= q1.mean_waiting_time() + 1e-12);
    }

    /// M/M/1/K blocking probability rises with load and falls with buffer.
    #[test]
    fn mm1k_blocking_monotone(lambda in 0.1f64..3.0, k in 1u32..20) {
        let small = MM1K::new(lambda, 1.0, k).unwrap();
        let big = MM1K::new(lambda, 1.0, k + 5).unwrap();
        prop_assert!(big.blocking_probability() <= small.blocking_probability() + 1e-12);
        let more = MM1K::new(lambda + 0.5, 1.0, k).unwrap();
        prop_assert!(more.blocking_probability() >= small.blocking_probability() - 1e-12);
    }

    /// M/G/1 waiting time is linear in the SCV (P–K formula structure).
    #[test]
    fn mg1_scv_ordering(lambda in 0.05f64..0.9, scv_lo in 0.0f64..1.0, bump in 0.1f64..3.0) {
        let s_lo = ServiceDistribution::General { mean: 1.0, scv: scv_lo };
        let s_hi = ServiceDistribution::General { mean: 1.0, scv: scv_lo + bump };
        let w_lo = MG1::new(lambda, s_lo).unwrap().mean_waiting_time();
        let w_hi = MG1::new(lambda, s_hi).unwrap().mean_waiting_time();
        prop_assert!(w_hi > w_lo);
    }

    /// Jackson tandem of random length: every station sees the external
    /// rate; end-to-end time equals the sum of per-station M/M/1 times.
    #[test]
    fn jackson_tandem_consistency(
        gamma in 0.05f64..0.5,
        rates in prop::collection::vec(1.0f64..5.0, 1..6),
    ) {
        let n = rates.len();
        let mut stations = Vec::new();
        let mut routing = vec![vec![0.0; n]; n];
        for (i, &mu) in rates.iter().enumerate() {
            stations.push(Station::single(mu, if i == 0 { gamma } else { 0.0 }));
            if i + 1 < n {
                routing[i][i + 1] = 1.0;
            }
        }
        let net = JacksonNetwork::new(stations, routing).unwrap();
        let sol = net.solve().unwrap();
        let expect: f64 =
            rates.iter().map(|&mu| MM1::new(gamma, mu).unwrap().mean_sojourn_time()).sum();
        prop_assert!((sol.mean_time_in_network() - expect).abs() < 1e-8);
    }

    /// Traffic equations conserve flow: Σ exits = Σ external arrivals.
    #[test]
    fn jackson_flow_conservation(
        gammas in prop::collection::vec(0.0f64..0.3, 2..5),
        seed in 0u64..1000,
    ) {
        let n = gammas.len();
        // Deterministic pseudo-random substochastic routing.
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut rnd = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64)
        };
        let mut routing = vec![vec![0.0; n]; n];
        for row in routing.iter_mut() {
            let mut budget = 0.8; // keep exit probability >= 0.2
            for p in row.iter_mut() {
                let x = rnd() * budget * 0.5;
                *p = x;
                budget -= x;
            }
        }
        let stations: Vec<Station> =
            gammas.iter().map(|&g| Station::single(100.0, g)).collect();
        let net = JacksonNetwork::new(stations, routing.clone()).unwrap();
        let lambda = net.traffic_rates().unwrap();
        let external: f64 = gammas.iter().sum();
        let exits: f64 = (0..n)
            .map(|i| lambda[i] * (1.0 - routing[i].iter().sum::<f64>()))
            .sum();
        prop_assert!((external - exits).abs() < 1e-8 * (1.0 + external));
    }

    /// MVA conserves population and respects the bottleneck bound.
    #[test]
    fn mva_invariants(
        demands in prop::collection::vec(0.1f64..2.0, 1..5),
        think in 0.5f64..10.0,
        pop in 1u32..40,
    ) {
        let mut stations: Vec<MvaStation> =
            demands.iter().map(|&d| MvaStation::Queueing { demand: d }).collect();
        stations.push(MvaStation::Delay { demand: think });
        let sol = mva(&stations, pop).unwrap();
        let total: f64 = sol.queue_lengths.iter().sum();
        prop_assert!((total - pop as f64).abs() < 1e-6);
        let dmax = demands.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(sol.throughput <= 1.0 / dmax + 1e-9);
        let dsum: f64 = demands.iter().sum();
        prop_assert!(sol.throughput <= pop as f64 / (dsum + think) + 1e-9);
    }

    /// Machine repairman: utilization and throughput are monotone in the
    /// population.
    #[test]
    fn repairman_monotone_in_population(
        n in 1u32..60,
        think in 0.01f64..2.0,
        mu in 0.5f64..5.0,
    ) {
        let a = MachineRepairman::new(n, think, mu).unwrap().solve();
        let b = MachineRepairman::new(n + 1, think, mu).unwrap().solve();
        prop_assert!(b.utilization >= a.utilization - 1e-9);
        prop_assert!(b.throughput >= a.throughput - 1e-9);
    }

    /// Bisection always converges on a bracketed monotone root.
    #[test]
    fn bisect_converges(root in -5.0f64..5.0) {
        let f = move |x: f64| x - root;
        let sol = bisect(f, -10.0, 10.0, SolverOptions::default()).unwrap();
        prop_assert!((sol.value - root).abs() < 1e-8);
    }

    /// The monotone fixed-point solver returns a genuine fixed point for
    /// the effective-rate family g(x) = λ(N−L(x))/N.
    #[test]
    fn effective_rate_fixed_point(
        lambda in 0.1f64..300.0,
        mu in 1.0f64..100.0,
        n in 2.0f64..512.0,
    ) {
        let g = move |x: f64| {
            let rho = (x / mu).min(1.0 - 1e-12);
            let l = (rho / (1.0 - rho)).min(n);
            lambda * (n - l) / n
        };
        let sol = monotone_fixed_point(g, 0.0, lambda, SolverOptions::default()).unwrap();
        prop_assert!((g(sol.value) - sol.value).abs() < 1e-5 * (1.0 + sol.value));
        prop_assert!(sol.value >= 0.0 && sol.value <= lambda + 1e-9);
    }

    /// The dense solver inverts well-conditioned diagonally dominant
    /// systems to high accuracy.
    #[test]
    fn linear_solver_accuracy(
        n in 1usize..10,
        seed in 0u64..10_000,
    ) {
        let mut s = seed.wrapping_add(7);
        let mut rnd = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = rnd();
            }
            a[(i, i)] += n as f64 + 1.0;
        }
        let xtrue: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let b = a.mul_vec(&xtrue);
        let x = linalg::solve(a, b).unwrap();
        for (got, want) in x.iter().zip(&xtrue) {
            prop_assert!((got - want).abs() < 1e-8);
        }
    }
}
